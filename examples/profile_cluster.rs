//! Compare provisioning alternatives: a single front end vs a
//! load-balanced cluster.
//!
//! Section 1 of the paper suggests MFCs can be used "to perform comparative
//! evaluations of alternate application deployment configurations".  This
//! example does exactly that: it profiles the same commercial-style site
//! deployed (a) on one front-end server and (b) behind a 16-replica
//! load-balanced cluster (the QTP data-centre configuration), and prints
//! the two reports side by side so the operator can see which sub-system
//! the extra replicas actually helped.
//!
//! Run with:
//! ```text
//! cargo run --release --example profile_cluster
//! ```

use mfc_core::backend::sim::{SimBackend, SimTargetSpec};
use mfc_core::coordinator::Coordinator;
use mfc_core::types::Stage;
use mfc_sites::CoopSite;
use mfc_webserver::BackgroundTraffic;

fn profile(label: &str, spec: SimTargetSpec) -> mfc_core::report::MfcReport {
    println!("=== {label} ===");
    let mut backend = SimBackend::new(spec, 65, 11);
    let config = CoopSite::Qtnp
        .mfc_config()
        .with_max_crowd(55)
        .with_increment(5);
    let report = Coordinator::new(config)
        .with_seed(3)
        .run(&mut backend)
        .expect("enough clients");
    println!("{}", report.render_text());
    report
}

fn main() {
    // Deployment A: the commercial site's content on one machine.
    let single = CoopSite::Qtnp.target_spec();

    // Deployment B: the same server configuration replicated 16× behind a
    // load balancer, serving the same content and the same background load.
    let clustered = SimTargetSpec::cluster(single.server.clone(), single.catalog.clone(), 16)
        .with_background(BackgroundTraffic::at_rate(0.5));

    let report_single = profile("single front end", single);
    let report_cluster = profile("16-replica load-balanced cluster", clustered);

    println!("=== comparison ===");
    for stage in Stage::ALL {
        let a = report_single
            .stage(stage)
            .map(|s| s.outcome_cell())
            .unwrap_or_else(|| "-".into());
        let b = report_cluster
            .stage(stage)
            .map(|s| s.outcome_cell())
            .unwrap_or_else(|| "-".into());
        println!("{:<14} single: {:<14} cluster: {}", stage.name(), a, b);
    }
    println!(
        "\nAdding replicas moves the request-processing and back-end constraints out of reach;\n\
         the access link is shared either way, which is why the paper treats bandwidth as a\n\
         separate provisioning question."
    );
}
