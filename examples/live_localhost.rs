//! Live mode: run a real MFC, over real TCP connections, against a real
//! HTTP server on localhost.
//!
//! The simulation reproduces the paper's experiments; this example shows
//! that the same coordinator code also drives genuine HTTP clients.  It
//! starts an `mfc-httpd` instance configured with a linear load-dependent
//! delay (so there is actually something to find), lets the live crawler
//! profile it, runs a scaled-down MFC from 30 thread-backed clients, and
//! prints the report together with the server's own request counters.
//!
//! Run with:
//! ```text
//! cargo run --release --example live_localhost
//! ```

use std::time::Duration;

use mfc_core::backend::live::{LiveBackend, LiveBackendConfig};
use mfc_core::config::MfcConfig;
use mfc_core::coordinator::Coordinator;
use mfc_core::types::Stage;
use mfc_http::Url;
use mfc_httpd::{DelayModel, HttpServer, ServerOptions, SiteContent};

fn main() {
    // A validation-style site: one large object, many distinct small
    // queries, each query burning 2 ms of handler time, plus a linear
    // 4 ms-per-concurrent-request delay so the Base stage has a visible
    // knee within a 30-client crowd.
    let server = HttpServer::new(
        SiteContent::validation_site(),
        ServerOptions {
            workers: 8,
            queue_depth: 64,
            delay: DelayModel::Linear {
                per_request: Duration::from_millis(4),
            },
            io_timeout: Duration::from_secs(15),
        },
    );
    let handle = server.start().expect("bind to a loopback port");
    println!("live target: {}", handle.base_url());

    let target = Url::parse(&handle.base_url()).expect("valid URL");
    let mut backend = LiveBackend::new(
        target,
        LiveBackendConfig {
            clients: 30,
            artificial_latency: (Duration::from_millis(1), Duration::from_millis(25)),
            honor_epoch_gaps: false,
            ..LiveBackendConfig::default()
        },
        5,
    );

    // A small, quick configuration: 50 ms threshold (loopback responses are
    // fast), crowds of 5..30, only the Base and Large Object stages to keep
    // the run short.
    let config = MfcConfig::standard()
        .with_schedule_lead(mfc_simcore::SimDuration::from_millis(300))
        .with_threshold(mfc_simcore::SimDuration::from_millis(50))
        .with_min_clients(20)
        .with_max_crowd(30)
        .with_increment(5)
        .with_stages(vec![Stage::Base, Stage::LargeObject]);

    let report = Coordinator::new(config)
        .with_seed(2)
        .run(&mut backend)
        .expect("enough live clients");

    println!("{}", report.render_text());
    println!(
        "server saw {} requests total, peak concurrency {}",
        handle
            .stats()
            .requests
            .load(std::sync::atomic::Ordering::SeqCst),
        handle
            .stats()
            .peak_in_flight
            .load(std::sync::atomic::Ordering::SeqCst)
    );
    let log = handle.arrival_log();
    println!("first few arrival-log entries (offset, target):");
    for (offset, target) in log.iter().take(5) {
        println!("  {:>8.1?}  {}", offset, target);
    }
    handle.shutdown();
}
