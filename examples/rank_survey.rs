//! A miniature version of the paper's §5 large-scale measurement study.
//!
//! Generates a small population of servers for each Quantcast-rank class
//! (plus startups and phishing sites), runs the Base and Small Query MFC
//! stages against every one of them, and prints the stopping-crowd-size
//! breakdowns — the same presentation as Figures 7–8 and Tables 4–5.
//!
//! Run with (add `--release`, the survey probes dozens of simulated sites):
//! ```text
//! cargo run --release --example rank_survey
//! ```

use mfc_core::types::Stage;
use mfc_sites::{survey, SiteClass, SurveyConfig};

fn main() {
    let sites_per_class = 16;
    let classes = [
        SiteClass::Top1K,
        SiteClass::Rank1KTo10K,
        SiteClass::Rank10KTo100K,
        SiteClass::Rank100KTo1M,
        SiteClass::Startup,
        SiteClass::Phishing,
    ];

    for stage in [Stage::Base, Stage::SmallQuery] {
        println!("################ {} stage ################", stage.name());
        for class in classes {
            let config = SurveyConfig::quick(class, stage, sites_per_class);
            let result = survey::run_survey(class, &config);
            print!("{}", result.render_text());
            println!(
                "  -> {:.0}% of {} sites show a confirmed degradation within 50 simultaneous requests\n",
                result.constrained_fraction() * 100.0,
                class.label()
            );
        }
    }

    println!(
        "Expected shape (paper §5): the constrained fraction grows as popularity falls,\n\
         the Small Query stage constrains more servers than the Base stage in every class,\n\
         and phishing servers look like the least-popular rank class."
    );
}
