//! Quickstart: profile a single simulated web server with a Mini-Flash Crowd.
//!
//! This is the smallest end-to-end use of the library: build a target (the
//! paper's lab Apache box behind a 10 Mbit/s access link), point 65
//! simulated wide-area clients at it, run the three-stage MFC, and print
//! the resulting report — which stage stopped at what crowd size and what
//! that says about the server's provisioning.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use mfc_core::backend::sim::{SimBackend, SimTargetSpec};
use mfc_core::config::MfcConfig;
use mfc_core::coordinator::Coordinator;
use mfc_webserver::{ContentCatalog, ServerConfig};

fn main() {
    // 1. Describe the target: the §3.2 lab server (Apache-like worker pool,
    //    FastCGI dynamic handler, MySQL-like back end, 10 Mbit/s uplink)
    //    hosting the lab validation content (a 100 KB object and a small
    //    database query).
    let target =
        SimTargetSpec::single_server(ServerConfig::lab_apache(), ContentCatalog::lab_validation());

    // 2. Stand up the simulated wide area: 65 PlanetLab-like clients with
    //    heterogeneous RTTs and access links, a lossy UDP control plane and
    //    the server model behind it.
    let mut backend = SimBackend::new(target, 65, 42);

    // 3. Configure the MFC exactly as the paper's standard experiments:
    //    100 ms threshold, crowds growing by 5 up to 50, 10 s client
    //    timeout.
    let config = MfcConfig::standard().with_max_crowd(50).with_increment(5);

    // 4. Run it.
    let report = Coordinator::new(config)
        .with_seed(7)
        .run(&mut backend)
        .expect("at least 50 clients registered");

    // 5. Read the verdicts.
    println!("{}", report.render_text());
    println!(
        "DDoS exposure assessment: {:?}",
        report.inference.ddos_exposure
    );
    println!(
        "Sub-systems from best to worst provisioned: {:?}",
        report
            .inference
            .best_to_worst
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
    );
}
