//! §6 extension: use MFC results to assess exposure to low-volume
//! application-level denial-of-service attacks, and test how much request
//! *staggering* the site can tolerate.
//!
//! The paper argues that an operator should know (a) which resource is the
//! cheapest for an attacker to exhaust and (b) at what request volume it
//! starts to keel over; and it proposes a "staggered" MFC variant that
//! spaces request arrivals to find out whether a server that struggles with
//! a synchronized burst copes fine with the same volume spread over time.
//!
//! This example runs both analyses against a mid-tier site: a standard MFC
//! for the exposure assessment, then the same Small Query crowd with 0 ms,
//! 50 ms and 200 ms stagger, and finally a full DDoS-scale stress run —
//! 10,000 concurrent large-object transfers through the server pipeline,
//! which the virtual-time fluid core simulates in well under a second of
//! wall clock (the pre-PR progressive-filling model needed O(C²) work per
//! arrival and could not reach this crowd size).
//!
//! Run with:
//! ```text
//! cargo run --release --example ddos_assessment
//! ```

use std::time::Instant;

use mfc_core::backend::sim::{SimBackend, SimTargetSpec};
use mfc_core::config::MfcConfig;
use mfc_core::coordinator::Coordinator;
use mfc_core::types::Stage;
use mfc_dynamics::DefenseConfig;
use mfc_simcore::stats::Summary;
use mfc_simcore::{SimDuration, SimRng, SimTime};
use mfc_sites::SiteClass;
use mfc_webserver::{
    BalancePolicy, CacheState, ContentCatalog, RequestClass, ServerCluster, ServerConfig,
    ServerEngine, ServerRequest, WorkerConfig,
};

fn target() -> SimTargetSpec {
    // A representative mid-popularity site (10K-100K rank class).
    let mut rng = SimRng::seed_from(2024);
    SiteClass::Rank10KTo100K.generate_site(17, &mut rng)
}

fn main() {
    // Part 1: which sub-system keels over first, and at what volume?
    let mut backend = SimBackend::new(target(), 65, 1);
    let config = MfcConfig::standard().with_max_crowd(50).with_increment(5);
    let report = Coordinator::new(config.clone())
        .with_seed(9)
        .run(&mut backend)
        .expect("enough clients");
    println!("{}", report.render_text());
    println!("DDoS exposure: {:?}\n", report.inference.ddos_exposure);

    // Part 2: the staggered variant.  The same number of Small Query
    // requests is sent, but arrivals are spaced out; if the response-time
    // impact disappears with modest spacing, the site handles medium- and
    // low-volume flash crowds fine and only tightly synchronized bursts
    // hurt it.
    println!("staggered Small Query probes (crowd of 40):");
    for stagger_ms in [0u64, 50, 200] {
        let mut backend = SimBackend::new(target(), 65, 1);
        let mut probe_config = config.clone();
        if stagger_ms > 0 {
            probe_config = probe_config.with_stagger(SimDuration::from_millis(stagger_ms));
        }
        let coordinator = Coordinator::new(probe_config).with_seed(9);
        let (summary, _) = coordinator
            .probe_crowd(&mut backend, Stage::SmallQuery, 40)
            .expect("enough clients");
        println!(
            "  stagger {:>4} ms -> median normalized response time {:>8.1} ms",
            stagger_ms, summary.median_ms
        );
    }
    println!(
        "\nA large drop between 0 ms and 200 ms stagger means the bottleneck only binds under\n\
         synchronized bursts — request shaping would protect this site; a persistent increase\n\
         means the back end is simply under-provisioned for the volume."
    );

    // Part 3: DDoS-scale stress.  Skip the MFC protocol entirely and slam
    // the server model with 10k concurrent large-object transfers — the
    // volume an actual application-level attack (or a major flash-crowd
    // event) would produce.  This is the regime the O(log n) water-level
    // sharing core exists for.
    println!("\nDDoS-scale stress: 10,000 concurrent 100KB transfers");
    let crowd_size: u64 = 10_000;
    let config = ServerConfig {
        workers: WorkerConfig {
            max_workers: 65_536,
            listen_queue: 65_536,
            ..WorkerConfig::default()
        },
        ..ServerConfig::lab_apache()
    };
    let engine = ServerEngine::new(config, ContentCatalog::lab_validation());
    let mut cache = CacheState::new();
    let requests: Vec<ServerRequest> = (0..crowd_size)
        .map(|i| ServerRequest {
            id: i,
            // The whole crowd lands inside one second.
            arrival: SimTime::ZERO + SimDuration::from_micros(i * 100),
            class: RequestClass::Static,
            path: "/objects/large_100k.bin".to_string(),
            client_downlink: 1e8,
            client_rtt: SimDuration::from_millis(40),
            client_addr: (i % 251) as u32,
            background: false,
        })
        .collect();
    let wall = Instant::now();
    let result = engine.run(requests, &mut cache);
    let wall = wall.elapsed();
    let latencies: Vec<f64> = result
        .outcomes
        .iter()
        .filter(|o| o.is_ok())
        .map(|o| o.latency().as_secs_f64())
        .collect();
    let summary = Summary::from_values(&latencies).expect("crowd produced outcomes");
    println!(
        "  completed {} / {crowd_size} transfers ({} sim-seconds of traffic)",
        result.utilization.completed_requests,
        result.utilization.window.as_secs_f64().round(),
    );
    println!(
        "  response time p50 {:.1}s  p90 {:.1}s  p99 {:.1}s  — the link, not the CPU, is saturated",
        summary.median, summary.p90, summary.p99
    );
    println!(
        "  simulated in {:.0} ms wall clock ({:.0} flows/s through the fluid core)",
        wall.as_secs_f64() * 1e3,
        crowd_size as f64 / wall.as_secs_f64()
    );

    // Part 4: the same 10k transfers as a *ramping* flood against a server
    // that fights back.  Arrivals follow arrival_i = T·√(i/n) with
    // T = 200 s, so the request rate grows linearly from zero to 100/s —
    // the 8-replica ceiling — the canonical flash-crowd onset.  The
    // defended target autoscales between 1 and 8 replicas (3 s
    // provisioning lag, eager 1 s re-evaluation) behind a
    // least-outstanding balancer and sheds with 503s when a replica's
    // backlog grows — the de Paula-style cloud response to a flash-crowd
    // event.  The number to watch is the *degradation point*: the first
    // served transfer slower than 2 s, in arrival order, plus how many
    // transfers ever degrade.
    println!("\nDefended rerun: the same 10k transfers as a ramping flood");
    let defended_threshold = SimDuration::from_secs(2);
    let ramp_secs = 200.0;
    let burst = |crowd: u64| -> Vec<ServerRequest> {
        (0..crowd)
            .map(|i| ServerRequest {
                id: i,
                arrival: SimTime::ZERO
                    + SimDuration::from_micros(
                        (ramp_secs * 1e6 * (i as f64 / crowd as f64).sqrt()) as u64,
                    ),
                class: RequestClass::Static,
                path: "/objects/large_100k.bin".to_string(),
                client_downlink: 1e8,
                client_rtt: SimDuration::from_millis(40),
                client_addr: (i % 251) as u32,
                background: false,
            })
            .collect()
    };
    let server = ServerConfig {
        workers: WorkerConfig {
            max_workers: 65_536,
            listen_queue: 65_536,
            ..WorkerConfig::default()
        },
        ..ServerConfig::lab_apache()
    };
    let degradation_point = |outcomes: &[mfc_webserver::RequestOutcome]| {
        let mut by_arrival: Vec<_> = outcomes.iter().filter(|o| o.is_ok()).collect();
        by_arrival.sort_by_key(|o| (o.arrival, o.id));
        let first = by_arrival
            .iter()
            .position(|o| o.latency() > defended_threshold);
        let degraded = by_arrival
            .iter()
            .filter(|o| o.latency() > defended_threshold)
            .count();
        (first, degraded)
    };
    let describe = |label: &str,
                    result: &mfc_webserver::engine::RunResult,
                    wall: std::time::Duration| {
        let latencies: Vec<f64> = result
            .outcomes
            .iter()
            .filter(|o| o.is_ok())
            .map(|o| o.latency().as_secs_f64())
            .collect();
        let summary = Summary::from_values(&latencies).expect("outcomes");
        let (first, degraded) = degradation_point(&result.outcomes);
        let point = match first {
            Some(index) => format!("#{index}"),
            None => "never".to_string(),
        };
        println!(
            "  {label:<9} served {:>5}  shed {:>5}  p50 {:>6.2}s  p99 {:>7.2}s  degrades at {point:>6} ({degraded:>5} ever)  ({} ms wall)",
            result.utilization.completed_requests,
            result.utilization.shed_requests,
            summary.median,
            summary.p99,
            wall.as_millis(),
        );
    };

    let mut static_cluster =
        ServerCluster::new(server.clone(), ContentCatalog::lab_validation(), 1);
    let wall = Instant::now();
    let static_result = static_cluster.run(burst(crowd_size));
    describe("static", &static_result, wall.elapsed());

    let defenses = DefenseConfig {
        autoscaler: Some(mfc_dynamics::AutoScalerConfig {
            min_replicas: 1,
            max_replicas: 8,
            // An eager profile: a flash-crowd playbook scales on early
            // backlog and re-evaluates every second.
            scale_up_load: 6.0,
            scale_down_load: 1.0,
            provisioning_lag: SimDuration::from_secs(3),
            cooldown: SimDuration::from_secs(1),
        }),
        admission: DefenseConfig::shedding(100_000).admission,
        ..DefenseConfig::none()
    };
    let mut stack = defenses.build();
    let mut defended_cluster = ServerCluster::new(server, ContentCatalog::lab_validation(), 1)
        .with_policy(BalancePolicy::LeastOutstanding);
    let wall = Instant::now();
    let defended_result = defended_cluster.run_controlled(burst(crowd_size), &mut stack);
    describe("defended", &defended_result, wall.elapsed());
    println!(
        "  the autoscaler provisioned {} replicas as the ramp grew (admission control shed {}).\n\
         \x20 The static server degrades permanently once the ramp crosses one link's capacity;\n\
         \x20 the defended one only wobbles during the first provisioning lag, then absorbs the\n\
         \x20 entire flood — the class of scenario the static-target methodology cannot see.",
        defended_cluster.active_replicas(),
        defended_result.utilization.shed_requests,
    );

    // Part 5: where is the bottleneck, really?  The same Large Object
    // crowd is thrown at two worlds that *remote response times alone
    // cannot tell apart*: a server behind a thin access link, and a
    // well-provisioned server with one vantage group pinned behind an
    // undersized shared transit link.  The vantage-aware localization
    // must keep the verdicts honest: a server bandwidth constraint in the
    // first world, path congestion (no server constraint!) in the second.
    println!("\nBottleneck localization: target access link vs. shared transit link");
    let probe_config = MfcConfig::standard()
        .with_stages(vec![Stage::LargeObject])
        .with_max_crowd(40)
        .with_increment(10);
    let run_world = |label: &str, spec: mfc_core::backend::sim::SimTargetSpec| {
        let wall = Instant::now();
        let mut backend = SimBackend::new(spec, 65, 14);
        let report = Coordinator::new(probe_config.clone())
            .with_seed(6)
            .run(&mut backend)
            .expect("enough clients");
        let stage = &report.stages[0];
        let crowd = match stage.outcome.stopping_crowd() {
            Some(c) => format!("stops at {c}"),
            None => "NoStop".to_string(),
        };
        let cause = report
            .inference
            .cause_of(Stage::LargeObject)
            .expect("stage ran");
        println!(
            "  {label:<28} {crowd:>12}  cause {cause:?}  ({} ms wall)",
            wall.elapsed().as_millis()
        );
        if let Some(tail) = stage.epochs.last() {
            if !tail.group_median_ms.is_empty() {
                let medians: Vec<String> = tail
                    .group_median_ms
                    .iter()
                    .map(|(g, m)| format!("g{g}: {m:.0} ms"))
                    .collect();
                println!("  {:<28} per-group medians: {}", "", medians.join(", "));
            }
        }
        report
    };
    let server_world = run_world(
        "bottleneck at access link",
        mfc_core::backend::sim::SimTargetSpec::single_server(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
        ),
    );
    let path_world = run_world(
        "bottleneck on shared transit",
        mfc_core::backend::sim::SimTargetSpec::single_server(
            ServerConfig::validation_server(),
            ContentCatalog::lab_validation(),
        )
        .with_topology(mfc_topology::TopologySpec::star(&[
            mfc_simnet::mbps(1.6),
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
        ])),
    );
    assert_eq!(
        server_world.inference.cause_of(Stage::LargeObject),
        Some(mfc_core::inference::DegradationCause::ResourceConstraint),
        "the thin access link must keep its server verdict"
    );
    assert_eq!(
        path_world.inference.cause_of(Stage::LargeObject),
        Some(mfc_core::inference::DegradationCause::PathCongestion),
        "the shared transit bottleneck must be localized to the path"
    );
    println!(
        "  Both worlds \"stop\" the stage, but only the vantage-group asymmetry tells them\n\
         \x20 apart: one group's normalized medians explode while the rest stay flat, so the\n\
         \x20 inference reports path congestion instead of fabricating a server constraint\n\
         \x20 (the paper's §2.2.3 hazard, now first-class in the model)."
    );

    // Part 6: probing through an organic flash crowd.  The same Large
    // Object ladder is run three times against the thin-link lab box:
    // once at a negotiated quiet hour, once while the site's own users
    // surge (a de Paula-style organic flash crowd of downloads whose ramp
    // lands exactly on the evidence epochs), and once more under the
    // surge but with quiescence-aware scheduling enabled — the
    // coordinator detects the surge from the server-reported background
    // rate, flags the epoch, waits it out and re-runs.  The verdicts must
    // flip exactly once: quiescent = a genuine constraint, surge =
    // confounded (crowd + surge, not the crowd), rescheduled = the
    // genuine constraint again.
    println!("\nProbing through an organic flash crowd: confounded vs. rescheduled verdicts");
    let surge_workload = || {
        mfc_workload::WorkloadSpec::empty().with_source(mfc_workload::SourceSpec {
            label: "organic-surge".to_string(),
            client: mfc_workload::ClientSpec::default(),
            kind: mfc_workload::SourceKind::Open {
                arrivals: mfc_workload::ArrivalProcess::FlashCrowd {
                    base_rate: 0.2,
                    peak_rate: 40.0,
                    // Base measurements plus the first (sub-threshold)
                    // epoch take ~90 s; the surge then sits on the
                    // evidence epochs and is over by ~265 s, so a backoff
                    // can escape it.
                    onset_secs: 100.0,
                    ramp_secs: 15.0,
                    hold_secs: 120.0,
                    decay_secs: 30.0,
                },
                requests: mfc_workload::RequestModel::Mix(mfc_workload::MixWeights::downloads()),
            },
        })
    };
    let ladder = MfcConfig::standard()
        .with_stages(vec![Stage::LargeObject])
        .with_max_crowd(40)
        .with_increment(10);
    let run_ladder = |label: &str, workload: bool, config: MfcConfig| {
        let wall = Instant::now();
        let mut spec = mfc_core::backend::sim::SimTargetSpec::single_server(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
        );
        if workload {
            spec = spec.with_workload(surge_workload());
        }
        let mut backend = SimBackend::new(spec, 65, 114);
        let report = Coordinator::new(config)
            .with_seed(41)
            .run(&mut backend)
            .expect("enough clients");
        let stage = &report.stages[0];
        let crowd = match stage.outcome.stopping_crowd() {
            Some(c) => format!("stops at {c}"),
            None => "NoStop".to_string(),
        };
        let cause = report
            .inference
            .cause_of(Stage::LargeObject)
            .expect("stage ran");
        let flagged = stage.epochs.iter().filter(|e| e.surge_suspected).count();
        println!(
            "  {label:<24} {crowd:>12}  cause {cause:?}  ({} bg requests, {flagged} epochs \
             surge-flagged, {} ms wall)",
            backend.background_requests_served(),
            wall.elapsed().as_millis()
        );
        report
    };
    let quiescent = run_ladder("quiet hour", false, ladder.clone());
    let surged = run_ladder("during the surge", true, ladder.clone());
    let rescheduled = run_ladder(
        "surge + rescheduling",
        true,
        ladder.with_quiescence(mfc_core::config::QuiescencePolicy {
            backoff: SimDuration::from_secs(90),
            max_retries: 3,
            ..mfc_core::config::QuiescencePolicy::default()
        }),
    );
    assert_eq!(
        quiescent.inference.cause_of(Stage::LargeObject),
        Some(mfc_core::inference::DegradationCause::ResourceConstraint),
        "the quiet-hour ladder must report the genuine constraint"
    );
    assert_eq!(
        surged.inference.cause_of(Stage::LargeObject),
        Some(mfc_core::inference::DegradationCause::BackgroundInterference),
        "evidence epochs inside the surge must yield the confounded verdict"
    );
    assert!(surged.inference.background_interference_suspected());
    assert_eq!(
        rescheduled.inference.cause_of(Stage::LargeObject),
        Some(mfc_core::inference::DegradationCause::ResourceConstraint),
        "waiting out the surge must recover the genuine constraint"
    );
    assert!(
        rescheduled.stages[0]
            .epochs
            .iter()
            .any(|e| e.surge_suspected),
        "the rescheduled run must have flagged (and kept) the surged attempts"
    );
    println!(
        "  The surge makes the stage stop either way — but the noise-robust inference\n\
         \x20 refuses to read crowd-plus-surge as the server's capacity, and the\n\
         \x20 quiescence-aware coordinator turns the confound back into the quiet-hour\n\
         \x20 verdict by flagging, delaying and re-running the affected epochs."
    );
}
