//! Integration tests: the live backend drives real HTTP clients against a
//! real `mfc-httpd` server on localhost.
//!
//! These are the wall-clock equivalent of the §3.1 validation: the same
//! coordinator code that runs the simulation issues genuine TCP
//! connections, crawls the real base page, and finds the artificial
//! bottleneck injected into the live server.

use std::sync::atomic::Ordering;
use std::time::Duration;

use mfc_core::backend::live::{LiveBackend, LiveBackendConfig};
use mfc_core::backend::MfcBackend;
use mfc_core::config::MfcConfig;
use mfc_core::coordinator::Coordinator;
use mfc_core::types::Stage;
use mfc_http::Url;
use mfc_httpd::{DelayModel, HttpServer, ServerOptions, SiteContent};
use mfc_simcore::SimDuration;

fn start_server(delay: DelayModel) -> mfc_httpd::ServerHandle {
    HttpServer::new(
        SiteContent::validation_site(),
        ServerOptions {
            workers: 16,
            queue_depth: 256,
            delay,
            io_timeout: Duration::from_secs(10),
        },
    )
    .start()
    .expect("bind a loopback port")
}

fn live_backend(handle: &mfc_httpd::ServerHandle, clients: usize) -> LiveBackend {
    LiveBackend::new(
        Url::parse(&handle.base_url()).unwrap(),
        LiveBackendConfig {
            clients,
            artificial_latency: (Duration::from_millis(0), Duration::from_millis(5)),
            honor_epoch_gaps: false,
            ..LiveBackendConfig::default()
        },
        3,
    )
}

#[test]
fn live_crawler_discovers_large_objects_and_queries() {
    let handle = start_server(DelayModel::None);
    let mut backend = live_backend(&handle, 5);
    let profile = backend.profile_target();
    assert!(profile.supports(Stage::Base));
    assert!(
        profile.supports(Stage::LargeObject),
        "the crawler must find the 100KB/1MB objects"
    );
    assert!(
        profile.supports(Stage::SmallQuery),
        "the crawler must find the query endpoints"
    );
    handle.shutdown();
}

#[test]
fn live_probe_measures_real_requests() {
    let handle = start_server(DelayModel::None);
    let mut backend = live_backend(&handle, 12);
    let coordinator = Coordinator::new(
        MfcConfig::standard()
            .with_schedule_lead(mfc_simcore::SimDuration::from_millis(300))
            .with_min_clients(5)
            .with_threshold(SimDuration::from_millis(50)),
    );
    let (summary, observation) = coordinator
        .probe_crowd(&mut backend, Stage::Base, 10)
        .expect("enough live clients");
    assert_eq!(summary.crowd_size, 10);
    assert_eq!(observation.observations.len(), 10);
    assert!(observation
        .observations
        .iter()
        .all(|o| o.status.produced_sample()));
    // The server actually saw those requests (plus profiling traffic).
    assert!(handle.stats().requests.load(Ordering::SeqCst) >= 10);
    handle.shutdown();
}

#[test]
fn live_mfc_finds_an_injected_bottleneck() {
    // 12 ms per concurrent request: a crowd of ~10 pushes the normalized
    // response time past a 60 ms threshold, so the Base stage must stop.
    let handle = start_server(DelayModel::Linear {
        per_request: Duration::from_millis(12),
    });
    let mut backend = live_backend(&handle, 24);
    let config = MfcConfig::standard()
        .with_schedule_lead(mfc_simcore::SimDuration::from_millis(300))
        .with_min_clients(15)
        .with_threshold(SimDuration::from_millis(60))
        .with_max_crowd(20)
        .with_increment(5)
        .with_stages(vec![Stage::Base]);
    let report = Coordinator::new(config)
        .with_seed(1)
        .run(&mut backend)
        .expect("enough live clients");
    let stopped = report.stopping_crowd(Stage::Base);
    assert!(
        stopped.is_some(),
        "the injected linear delay must be detected: {:?}",
        report.stages[0]
    );
    handle.shutdown();
}

#[test]
fn live_mfc_reports_no_stop_on_an_unconstrained_server() {
    let handle = start_server(DelayModel::None);
    let mut backend = live_backend(&handle, 20);
    let config = MfcConfig::standard()
        .with_schedule_lead(mfc_simcore::SimDuration::from_millis(300))
        .with_min_clients(15)
        // Loopback responses are sub-millisecond; a generous threshold keeps
        // scheduler noise from producing false positives in CI.
        .with_threshold(SimDuration::from_millis(500))
        .with_max_crowd(15)
        .with_increment(5)
        .with_stages(vec![Stage::Base]);
    let report = Coordinator::new(config)
        .with_seed(2)
        .run(&mut backend)
        .expect("enough live clients");
    assert!(
        report.stages[0].outcome.is_no_stop(),
        "an idle loopback server must not be flagged: {:?}",
        report.stages[0].outcome
    );
    handle.shutdown();
}
