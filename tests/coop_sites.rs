//! Integration tests: the §4 cooperating-site reproductions behave the way
//! the paper's Tables 1–3 describe.
//!
//! These assert the *shape* of each result (which stage stops first, which
//! never stops, roughly where the stopping sizes land), not the authors'
//! exact numbers — our substrate is a model of their servers, not their
//! servers.

use mfc_core::backend::sim::SimBackend;
use mfc_core::coordinator::Coordinator;
use mfc_core::inference::DdosExposure;
use mfc_core::types::Stage;
use mfc_sites::CoopSite;

fn run_site(site: CoopSite, clients: usize, seed: u64) -> mfc_core::report::MfcReport {
    let config = site.mfc_config().with_increment(10);
    let mut backend = SimBackend::new(site.target_spec(), clients, seed);
    Coordinator::new(config)
        .with_seed(seed)
        .run(&mut backend)
        .expect("enough clients")
}

#[test]
fn qtnp_base_stops_before_small_query_and_bandwidth_never_stops() {
    let report = run_site(CoopSite::Qtnp, 60, 1);
    let base = report.stopping_crowd(Stage::Base);
    let query = report.stopping_crowd(Stage::SmallQuery);
    let large = report.stopping_crowd(Stage::LargeObject);

    assert!(base.is_some(), "QTNP's Base stage must show a constraint");
    assert!(
        query.is_some(),
        "QTNP's Small Query stage must show a constraint"
    );
    assert_eq!(
        large, None,
        "QTNP's access link must absorb every tested crowd"
    );
    assert!(
        base.unwrap() <= query.unwrap(),
        "the surprising QTNP result: Base ({:?}) degrades at or before Small Query ({:?})",
        base,
        query
    );
    // §6: a back end that stops below 50 while bandwidth never does means
    // high exposure to cheap application-level attacks.
    assert_eq!(
        report.inference.ddos_exposure,
        DdosExposure::HighBackendExposure
    );
}

#[test]
fn qtp_production_cluster_absorbs_every_stage() {
    let report = run_site(CoopSite::Qtp, 60, 2);
    for stage in &report.stages {
        assert!(
            stage.outcome.is_no_stop(),
            "QTP {} unexpectedly stopped: {:?}",
            stage.stage.name(),
            stage.outcome
        );
    }
    assert_eq!(report.inference.ddos_exposure, DdosExposure::LowExposure);
}

#[test]
fn univ1_is_poorly_provisioned_across_the_board() {
    let report = run_site(CoopSite::Univ1, 55, 3);
    // The small research-group box degrades on base processing and queries
    // at small crowds.
    let base = report
        .stopping_crowd(Stage::Base)
        .expect("Univ-1 Base must stop");
    let query = report
        .stopping_crowd(Stage::SmallQuery)
        .expect("Univ-1 Small Query must stop");
    assert!(
        base <= 30,
        "Univ-1 base processing is weak (stopped at {base})"
    );
    assert!(
        query <= 30,
        "Univ-1 query handling is weak (stopped at {query})"
    );
}

#[test]
fn univ3_queries_collapse_but_bandwidth_holds() {
    let report = run_site(CoopSite::Univ3, 60, 4);
    let query = report
        .stopping_crowd(Stage::SmallQuery)
        .expect("Univ-3's uncached queries must be constrained");
    assert!(
        query <= 40,
        "Univ-3's Small Query stage should collapse at a small crowd, got {query}"
    );
    assert_eq!(
        report.stopping_crowd(Stage::LargeObject),
        None,
        "Univ-3's bandwidth is well provisioned"
    );
    // The Base stage must be meaningfully healthier than the query path.
    if let Some(base) = report.stopping_crowd(Stage::Base) {
        assert!(
            base >= query,
            "base processing ({base}) should outlast queries ({query})"
        );
    }
}

#[test]
fn univ2_does_not_collapse_at_small_crowds() {
    let report = run_site(CoopSite::Univ2, 60, 5);
    // Univ-2's artifact appears only above ~100 simultaneous requests; with
    // crowds capped at 75 clients the stages either run out (NoStop) or stop
    // late.
    for stage in &report.stages {
        if let Some(stopped) = stage.outcome.stopping_crowd() {
            assert!(
                stopped >= 30,
                "Univ-2 {} stopped suspiciously early at {stopped}",
                stage.stage.name()
            );
        }
    }
}

#[test]
fn coop_runs_are_reproducible() {
    let a = run_site(CoopSite::Qtnp, 55, 11);
    let b = run_site(CoopSite::Qtnp, 55, 11);
    assert_eq!(a, b);
}
