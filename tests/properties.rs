//! Cross-crate property-based tests.
//!
//! These exercise the invariants the MFC inferences lean on: order
//! statistics, fluid fair sharing, the synchronization arithmetic, HTTP
//! message round-trips and the monotonicity of the server model under
//! load.  Each property is phrased over randomly generated inputs via
//! `proptest`.

use mfc_core::sync::{send_offset, ClientLatency, SyncScheduler};
use mfc_core::types::ClientId;
use mfc_http::{Method, Request, Response, StatusCode, Url};
use mfc_simcore::stats::{median, percentile};
use mfc_simcore::{EventQueue, SimDuration, SimTime};
use mfc_simnet::{FlowId, FluidLink, TcpModel};
use mfc_webserver::{
    CacheState, ContentCatalog, RequestClass, ServerConfig, ServerEngine, ServerRequest,
};
use proptest::prelude::*;
use std::io::BufReader;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------------------------------------------------------
    // Order statistics (the MFC detector).
    // ---------------------------------------------------------------

    #[test]
    fn percentile_is_bounded_by_min_and_max(
        values in proptest::collection::vec(0.0f64..1e6, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let p = percentile(&values, q).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
    }

    #[test]
    fn percentile_is_monotone_in_the_quantile(
        values in proptest::collection::vec(0.0f64..1e6, 1..200),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(percentile(&values, lo).unwrap() <= percentile(&values, hi).unwrap() + 1e-9);
    }

    #[test]
    fn median_is_invariant_under_permutation(
        mut values in proptest::collection::vec(0.0f64..1e6, 1..100),
    ) {
        let original = median(&values).unwrap();
        values.reverse();
        prop_assert_eq!(original, median(&values).unwrap());
    }

    // ---------------------------------------------------------------
    // Event queue ordering.
    // ---------------------------------------------------------------

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((time, _)) = queue.pop() {
            prop_assert!(time >= last);
            last = time;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    // ---------------------------------------------------------------
    // Fluid link fair sharing.
    // ---------------------------------------------------------------

    #[test]
    fn fluid_link_never_exceeds_capacity_and_conserves_bytes(
        capacity in 1_000.0f64..1e8,
        sizes in proptest::collection::vec(1.0f64..1e6, 1..40),
    ) {
        let mut link = FluidLink::new(capacity);
        for (i, &bytes) in sizes.iter().enumerate() {
            link.start_flow(FlowId(i as u64), bytes, f64::INFINITY, SimTime::ZERO);
        }
        prop_assert!(link.utilization_bytes_per_sec() <= capacity * (1.0 + 1e-9));
        // Drain the link to completion.
        let mut remaining = sizes.len();
        let mut guard = 0;
        while remaining > 0 && guard < 10_000 {
            guard += 1;
            let now = link
                .next_completion(SimTime::ZERO)
                .map(|(t, _)| t)
                .unwrap_or(SimTime::ZERO);
            if let Some((_, flow)) = link.next_completion(now) {
                link.finish_flow(flow, now);
                remaining -= 1;
            }
        }
        prop_assert_eq!(remaining, 0, "all flows must eventually finish");
        let total: f64 = sizes.iter().sum();
        prop_assert!((link.bytes_transferred() - total).abs() < total * 1e-6 + 1.0);
    }

    // ---------------------------------------------------------------
    // TCP model.
    // ---------------------------------------------------------------

    #[test]
    fn tcp_transfer_time_is_monotone_in_bytes(
        bytes_a in 0u64..50_000_000,
        bytes_b in 0u64..50_000_000,
        rtt_ms in 1u64..500,
        rate in 1_000.0f64..1e9,
    ) {
        let tcp = TcpModel::default();
        let rtt = SimDuration::from_millis(rtt_ms);
        let (small, large) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(tcp.transfer_time(small, rtt, rate) <= tcp.transfer_time(large, rtt, rate));
    }

    // ---------------------------------------------------------------
    // Synchronization scheduling arithmetic.
    // ---------------------------------------------------------------

    #[test]
    fn compensated_commands_arrive_exactly_at_the_lead_when_latencies_hold(
        coord_ms in proptest::collection::vec(1u64..400, 1..60),
        target_ms in proptest::collection::vec(1u64..400, 1..60),
        lead_secs in 2u64..60,
    ) {
        let n = coord_ms.len().min(target_ms.len());
        let latencies: Vec<ClientLatency> = (0..n)
            .map(|i| ClientLatency {
                client: ClientId(i as u32),
                coordinator_rtt: SimDuration::from_millis(coord_ms[i]),
                target_rtt: SimDuration::from_millis(target_ms[i]),
            })
            .collect();
        let lead = SimDuration::from_secs(lead_secs);
        let scheduler = SyncScheduler::simultaneous(lead);
        for command in scheduler.schedule(&latencies) {
            let latency = latencies.iter().find(|l| l.client == command.client).unwrap();
            let compensation = latency.coordinator_rtt.mul_f64(0.5)
                + latency.target_rtt.mul_f64(1.5);
            // With a lead of at least 2 s and RTTs under 400 ms the offset
            // never saturates, so send + compensation == lead exactly (up to
            // the microsecond rounding of the half-RTT terms).
            let arrival = command.send_offset + compensation;
            let diff = arrival.saturating_sub(lead).max(lead.saturating_sub(arrival));
            prop_assert!(diff <= SimDuration::from_micros(2), "diff {diff}");
        }
    }

    #[test]
    fn send_offset_never_exceeds_the_intended_arrival(
        coord_ms in 0u64..2_000,
        target_ms in 0u64..2_000,
        lead_ms in 0u64..20_000,
    ) {
        let latency = ClientLatency {
            client: ClientId(0),
            coordinator_rtt: SimDuration::from_millis(coord_ms),
            target_rtt: SimDuration::from_millis(target_ms),
        };
        let lead = SimDuration::from_millis(lead_ms);
        prop_assert!(send_offset(&latency, lead) <= lead);
    }

    // ---------------------------------------------------------------
    // HTTP wire format round trips.
    // ---------------------------------------------------------------

    #[test]
    fn http_request_head_round_trips(
        path in "/[a-z0-9/._-]{0,40}",
        query in proptest::option::of("[a-z0-9=&]{1,30}"),
        header_value in "[ -~]{0,60}",
    ) {
        let target = match &query {
            Some(q) => format!("{path}?{q}"),
            None => path.clone(),
        };
        let target = if target.is_empty() { "/".to_string() } else { target };
        let request = Request::new(Method::Get, target.clone(), "example.org")
            .with_header("x-prop", header_value.trim());
        let parsed = Request::read_from(&mut BufReader::new(&request.to_bytes()[..])).unwrap();
        prop_assert_eq!(parsed.target, target);
        prop_assert_eq!(parsed.method, Method::Get);
    }

    #[test]
    fn http_response_body_round_trips(body in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let response = Response::new(StatusCode::OK, body.clone());
        let parsed = Response::read_from(
            &mut BufReader::new(&response.to_bytes(false)[..]),
            true,
            1 << 20,
        )
        .unwrap();
        prop_assert_eq!(parsed.body, body);
        prop_assert_eq!(parsed.status, StatusCode::OK);
    }

    #[test]
    fn url_parse_display_round_trips(
        host in "[a-z][a-z0-9.-]{0,20}",
        port in 1u16..,
        path in "/[a-z0-9/._-]{0,30}",
    ) {
        let raw = format!("http://{host}:{port}{path}");
        let url = Url::parse(&raw).unwrap();
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(url, reparsed);
    }

    // ---------------------------------------------------------------
    // Server engine sanity under arbitrary crowd sizes.
    // ---------------------------------------------------------------

    #[test]
    fn engine_accounts_for_every_request(crowd in 1usize..60, stagger_us in 0u64..50_000) {
        let engine = ServerEngine::new(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
        );
        let mut cache = CacheState::new();
        let requests: Vec<ServerRequest> = (0..crowd)
            .map(|i| ServerRequest {
                id: i as u64,
                arrival: SimTime::from_micros(i as u64 * stagger_us),
                class: RequestClass::Head,
                path: "/index.html".to_string(),
                client_downlink: 1e7,
                client_rtt: SimDuration::from_millis(40),
                background: false,
            })
            .collect();
        let result = engine.run(requests, &mut cache);
        prop_assert_eq!(result.outcomes.len(), crowd);
        prop_assert_eq!(result.arrival_log.len(), crowd);
        for outcome in &result.outcomes {
            prop_assert!(outcome.completion >= outcome.arrival);
        }
    }
}
