//! Cross-crate randomized property tests.
//!
//! These exercise the invariants the MFC inferences lean on: order
//! statistics, fluid fair sharing, the synchronization arithmetic, HTTP
//! message round-trips and the monotonicity of the server model under load.
//! Each property runs over inputs generated from a seeded [`SimRng`], so the
//! cases are random-looking but fully reproducible (the offline build has no
//! `proptest`; a failing case can be replayed from its loop index alone).

use std::io::BufReader;

use mfc_core::sync::{send_offset, ClientLatency, SyncScheduler};
use mfc_core::types::ClientId;
use mfc_http::{Method, Request, Response, StatusCode, Url};
use mfc_simcore::stats::{median, percentile};
use mfc_simcore::{EventHandle, EventQueue, SimDuration, SimRng, SimTime};
use mfc_simnet::{FlowId, FluidLink, TcpModel};
use mfc_webserver::{
    CacheState, ContentCatalog, RequestClass, ServerConfig, ServerEngine, ServerRequest,
};

const CASES: usize = 64;

fn values_vec(rng: &mut SimRng, max_len: usize, high: f64) -> Vec<f64> {
    let len = rng.index(max_len) + 1;
    (0..len).map(|_| rng.uniform(0.0, high)).collect()
}

// -------------------------------------------------------------------
// Order statistics (the MFC detector).
// -------------------------------------------------------------------

#[test]
fn percentile_is_bounded_by_min_and_max() {
    let mut rng = SimRng::seed_from(0x0501);
    for _ in 0..CASES {
        let values = values_vec(&mut rng, 200, 1e6);
        let q = rng.uniform(0.0, 1.0);
        let p = percentile(&values, q).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            p >= min - 1e-9 && p <= max + 1e-9,
            "p={p} not in [{min}, {max}]"
        );
    }
}

#[test]
fn percentile_is_monotone_in_the_quantile() {
    let mut rng = SimRng::seed_from(0x0502);
    for _ in 0..CASES {
        let values = values_vec(&mut rng, 200, 1e6);
        let q1 = rng.uniform(0.0, 1.0);
        let q2 = rng.uniform(0.0, 1.0);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        assert!(percentile(&values, lo).unwrap() <= percentile(&values, hi).unwrap() + 1e-9);
    }
}

#[test]
fn median_is_invariant_under_permutation() {
    let mut rng = SimRng::seed_from(0x0503);
    for _ in 0..CASES {
        let mut values = values_vec(&mut rng, 100, 1e6);
        let original = median(&values).unwrap();
        values.reverse();
        assert_eq!(original, median(&values).unwrap());
        rng.shuffle(&mut values);
        assert_eq!(original, median(&values).unwrap());
    }
}

// -------------------------------------------------------------------
// Event queue: the slab-backed queue must behave exactly like a naive
// reference model under arbitrary schedule/pop/cancel interleavings.
// -------------------------------------------------------------------

/// The simplest possible future-event list: linear scans over a vector.
/// Deliberately naive, so its correctness is self-evident.
struct ReferenceQueue {
    entries: Vec<(u64, u64, u32, bool)>, // (time, seq, payload, pending)
    next_seq: u64,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, time: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((time, seq, payload, true));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        for entry in &mut self.entries {
            if entry.1 == seq && entry.3 {
                entry.3 = false;
                return true;
            }
        }
        false
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.3)
            .min_by_key(|(_, e)| (e.0, e.1))
            .map(|(i, _)| i)?;
        let entry = self.entries.remove(best);
        Some((entry.0, entry.2))
    }

    fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.3).count()
    }

    fn peek_time(&self) -> Option<u64> {
        self.entries
            .iter()
            .filter(|e| e.3)
            .min_by_key(|e| (e.0, e.1))
            .map(|e| e.0)
    }
}

#[test]
fn event_queue_matches_reference_model_under_random_interleavings() {
    let mut rng = SimRng::seed_from(0x0504);
    for case in 0..CASES {
        let mut queue: EventQueue<u32> = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut live_handles: Vec<(EventHandle, u64)> = Vec::new();
        let ops = rng.index(300) + 20;
        for op in 0..ops {
            match rng.index(10) {
                // Schedule with a deliberately narrow time range so ties are
                // common and FIFO ordering is actually exercised.
                0..=4 => {
                    let time = rng.uniform_u64(0, 50);
                    let payload = op as u32;
                    let handle = queue.schedule(SimTime::from_micros(time), payload);
                    let seq = reference.schedule(time, payload);
                    live_handles.push((handle, seq));
                }
                5..=6 => {
                    let popped = queue.pop().map(|(t, p)| (t.as_micros(), p));
                    assert_eq!(popped, reference.pop(), "case {case} op {op}");
                }
                7 => {
                    assert_eq!(
                        queue.peek_time().map(|t| t.as_micros()),
                        reference.peek_time(),
                        "case {case} op {op}"
                    );
                }
                _ => {
                    if !live_handles.is_empty() {
                        let idx = rng.index(live_handles.len());
                        let (handle, seq) = live_handles[idx];
                        assert_eq!(
                            queue.cancel(handle),
                            reference.cancel(seq),
                            "case {case} op {op}"
                        );
                    }
                }
            }
            assert_eq!(queue.len(), reference.len(), "case {case} op {op}");
        }
        // Drain both and compare the full remaining sequence.
        loop {
            let a = queue.pop().map(|(t, p)| (t.as_micros(), p));
            let b = reference.pop();
            assert_eq!(a, b, "case {case} drain");
            if a.is_none() {
                break;
            }
        }
    }
}

#[test]
fn event_queue_pops_in_nondecreasing_time_order() {
    let mut rng = SimRng::seed_from(0x0505);
    for _ in 0..CASES {
        let count = rng.index(300) + 1;
        let mut queue = EventQueue::new();
        for i in 0..count {
            queue.schedule(SimTime::from_micros(rng.uniform_u64(0, 1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((time, _)) = queue.pop() {
            assert!(time >= last);
            last = time;
            popped += 1;
        }
        assert_eq!(popped, count);
    }
}

#[test]
fn event_queue_ties_pop_in_schedule_order_after_cancellations() {
    let mut rng = SimRng::seed_from(0x0506);
    for _ in 0..CASES {
        let count = rng.index(100) + 10;
        let mut queue = EventQueue::new();
        let handles: Vec<EventHandle> = (0..count)
            .map(|i| queue.schedule(SimTime::from_micros(42), i))
            .collect();
        let mut expected: Vec<usize> = (0..count).collect();
        // Cancel a random subset.
        for (i, handle) in handles.iter().enumerate() {
            if rng.chance(0.3) {
                assert!(queue.cancel(*handle));
                expected.retain(|&e| e != i);
            }
        }
        let drained: Vec<usize> = std::iter::from_fn(|| queue.pop()).map(|(_, e)| e).collect();
        assert_eq!(drained, expected, "FIFO order must survive cancellation");
    }
}

// -------------------------------------------------------------------
// Fluid link fair sharing.
// -------------------------------------------------------------------

#[test]
fn fluid_link_never_exceeds_capacity_and_conserves_bytes() {
    let mut rng = SimRng::seed_from(0x0507);
    for _ in 0..CASES {
        let capacity = rng.uniform(1_000.0, 1e8);
        let sizes = values_vec(&mut rng, 40, 1e6)
            .into_iter()
            .map(|s| s.max(1.0))
            .collect::<Vec<f64>>();
        let mut link = FluidLink::new(capacity);
        for (i, &bytes) in sizes.iter().enumerate() {
            link.start_flow(FlowId(i as u64), bytes, f64::INFINITY, SimTime::ZERO);
        }
        assert!(link.utilization_bytes_per_sec() <= capacity * (1.0 + 1e-9));
        let mut remaining = sizes.len();
        let mut guard = 0;
        while remaining > 0 && guard < 10_000 {
            guard += 1;
            let now = link
                .next_completion(SimTime::ZERO)
                .map(|(t, _)| t)
                .unwrap_or(SimTime::ZERO);
            if let Some((_, flow)) = link.next_completion(now) {
                link.finish_flow(flow, now);
                remaining -= 1;
            }
        }
        assert_eq!(remaining, 0, "all flows must eventually finish");
        let total: f64 = sizes.iter().sum();
        assert!((link.bytes_transferred() - total).abs() < total * 1e-6 + 1.0);
    }
}

// -------------------------------------------------------------------
// TCP model.
// -------------------------------------------------------------------

#[test]
fn tcp_transfer_time_is_monotone_in_bytes() {
    let mut rng = SimRng::seed_from(0x0508);
    for _ in 0..CASES {
        let bytes_a = rng.uniform_u64(0, 50_000_000);
        let bytes_b = rng.uniform_u64(0, 50_000_000);
        let rtt = SimDuration::from_millis(rng.uniform_u64(1, 499));
        let rate = rng.uniform(1_000.0, 1e9);
        let tcp = TcpModel::default();
        let (small, large) = if bytes_a <= bytes_b {
            (bytes_a, bytes_b)
        } else {
            (bytes_b, bytes_a)
        };
        assert!(tcp.transfer_time(small, rtt, rate) <= tcp.transfer_time(large, rtt, rate));
    }
}

// -------------------------------------------------------------------
// Synchronization scheduling arithmetic.
// -------------------------------------------------------------------

#[test]
fn compensated_commands_arrive_exactly_at_the_lead_when_latencies_hold() {
    let mut rng = SimRng::seed_from(0x0509);
    for _ in 0..CASES {
        let n = rng.index(60) + 1;
        let latencies: Vec<ClientLatency> = (0..n)
            .map(|i| ClientLatency {
                client: ClientId(i as u32),
                coordinator_rtt: SimDuration::from_millis(rng.uniform_u64(1, 399)),
                target_rtt: SimDuration::from_millis(rng.uniform_u64(1, 399)),
            })
            .collect();
        let lead = SimDuration::from_secs(rng.uniform_u64(2, 59));
        let scheduler = SyncScheduler::simultaneous(lead);
        for command in scheduler.schedule(&latencies) {
            let latency = latencies
                .iter()
                .find(|l| l.client == command.client)
                .unwrap();
            let compensation =
                latency.coordinator_rtt.mul_f64(0.5) + latency.target_rtt.mul_f64(1.5);
            // With a lead of at least 2 s and RTTs under 400 ms the offset
            // never saturates, so send + compensation == lead exactly (up to
            // the microsecond rounding of the half-RTT terms).
            let arrival = command.send_offset + compensation;
            let diff = arrival
                .saturating_sub(lead)
                .max(lead.saturating_sub(arrival));
            assert!(diff <= SimDuration::from_micros(2), "diff {diff}");
        }
    }
}

#[test]
fn send_offset_never_exceeds_the_intended_arrival() {
    let mut rng = SimRng::seed_from(0x050a);
    for _ in 0..CASES {
        let latency = ClientLatency {
            client: ClientId(0),
            coordinator_rtt: SimDuration::from_millis(rng.uniform_u64(0, 2_000)),
            target_rtt: SimDuration::from_millis(rng.uniform_u64(0, 2_000)),
        };
        let lead = SimDuration::from_millis(rng.uniform_u64(0, 20_000));
        assert!(send_offset(&latency, lead) <= lead);
    }
}

// -------------------------------------------------------------------
// HTTP wire format round trips.
// -------------------------------------------------------------------

fn random_token(rng: &mut SimRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.index(max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.index(alphabet.len())] as char)
        .collect()
}

#[test]
fn http_request_head_round_trips() {
    let mut rng = SimRng::seed_from(0x050b);
    let path_chars = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
    let query_chars = b"abcdefghijklmnopqrstuvwxyz0123456789=&";
    for _ in 0..CASES {
        let path = format!("/{}", random_token(&mut rng, path_chars, 40));
        let target = if rng.chance(0.5) {
            let q = random_token(&mut rng, query_chars, 29);
            if q.is_empty() {
                path.clone()
            } else {
                format!("{path}?{q}")
            }
        } else {
            path.clone()
        };
        let header_value: String = (0..rng.index(61))
            .map(|_| (rng.uniform_u64(0x20, 0x7e) as u8) as char)
            .collect();
        let request = Request::new(Method::Get, target.clone(), "example.org")
            .with_header("x-prop", header_value.trim());
        let parsed = Request::read_from(&mut BufReader::new(&request.to_bytes()[..])).unwrap();
        assert_eq!(parsed.target, target);
        assert_eq!(parsed.method, Method::Get);
    }
}

#[test]
fn http_response_body_round_trips() {
    let mut rng = SimRng::seed_from(0x050c);
    for _ in 0..CASES {
        let body: Vec<u8> = (0..rng.index(4096))
            .map(|_| rng.uniform_u64(0, 255) as u8)
            .collect();
        let response = Response::new(StatusCode::OK, body.clone());
        let parsed = Response::read_from(
            &mut BufReader::new(&response.to_bytes(false)[..]),
            true,
            1 << 20,
        )
        .unwrap();
        assert_eq!(parsed.body, body);
        assert_eq!(parsed.status, StatusCode::OK);
    }
}

#[test]
fn url_parse_display_round_trips() {
    let mut rng = SimRng::seed_from(0x050d);
    let host_chars = b"abcdefghijklmnopqrstuvwxyz0123456789.-";
    let path_chars = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
    for _ in 0..CASES {
        let host = format!(
            "{}{}",
            (b'a' + rng.index(26) as u8) as char,
            random_token(&mut rng, host_chars, 20)
        );
        let port = rng.uniform_u64(1, u16::MAX as u64) as u16;
        let path = format!("/{}", random_token(&mut rng, path_chars, 30));
        let raw = format!("http://{host}:{port}{path}");
        let url = Url::parse(&raw).unwrap();
        let reparsed = Url::parse(&url.to_string()).unwrap();
        assert_eq!(url, reparsed);
    }
}

// -------------------------------------------------------------------
// Server engine sanity under arbitrary crowd sizes.
// -------------------------------------------------------------------

#[test]
fn engine_accounts_for_every_request() {
    let mut rng = SimRng::seed_from(0x050e);
    for _ in 0..CASES {
        let crowd = rng.index(59) + 1;
        let stagger_us = rng.uniform_u64(0, 49_999);
        let engine =
            ServerEngine::new(ServerConfig::lab_apache(), ContentCatalog::lab_validation());
        let mut cache = CacheState::new();
        let requests: Vec<ServerRequest> = (0..crowd)
            .map(|i| ServerRequest {
                id: i as u64,
                arrival: SimTime::from_micros(i as u64 * stagger_us),
                class: RequestClass::Head,
                path: "/index.html".to_string(),
                client_downlink: 1e7,
                client_rtt: SimDuration::from_millis(40),
                background: false,
            })
            .collect();
        let result = engine.run(requests, &mut cache);
        assert_eq!(result.outcomes.len(), crowd);
        assert_eq!(result.arrival_log.len(), crowd);
        for outcome in &result.outcomes {
            assert!(outcome.completion >= outcome.arrival);
        }
    }
}
