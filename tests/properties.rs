//! Cross-crate randomized property tests.
//!
//! These exercise the invariants the MFC inferences lean on: order
//! statistics, fluid fair sharing, the synchronization arithmetic, HTTP
//! message round-trips and the monotonicity of the server model under load.
//! Each property runs over inputs generated from a seeded [`SimRng`], so the
//! cases are random-looking but fully reproducible (the offline build has no
//! `proptest`; a failing case can be replayed from its loop index alone).

use std::io::BufReader;

use mfc_core::sync::{send_offset, ClientLatency, SyncScheduler};
use mfc_core::types::ClientId;
use mfc_http::{Method, Request, Response, StatusCode, Url};
use mfc_simcore::stats::{median, percentile};
use mfc_simcore::{EventHandle, EventQueue, SimDuration, SimRng, SimTime};
use mfc_simnet::{FlowId, FluidLink, NaiveFluidLink, PopulationProfile, TcpModel, WideAreaModel};
use mfc_topology::{LinkId, NaiveNetwork, NetworkGraph, RouteId};
use mfc_webserver::{
    CacheState, ContentCatalog, RequestClass, ServerConfig, ServerEngine, ServerRequest,
};

const CASES: usize = 64;

fn values_vec(rng: &mut SimRng, max_len: usize, high: f64) -> Vec<f64> {
    let len = rng.index(max_len) + 1;
    (0..len).map(|_| rng.uniform(0.0, high)).collect()
}

// -------------------------------------------------------------------
// Order statistics (the MFC detector).
// -------------------------------------------------------------------

#[test]
fn percentile_is_bounded_by_min_and_max() {
    let mut rng = SimRng::seed_from(0x0501);
    for _ in 0..CASES {
        let values = values_vec(&mut rng, 200, 1e6);
        let q = rng.uniform(0.0, 1.0);
        let p = percentile(&values, q).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            p >= min - 1e-9 && p <= max + 1e-9,
            "p={p} not in [{min}, {max}]"
        );
    }
}

#[test]
fn percentile_is_monotone_in_the_quantile() {
    let mut rng = SimRng::seed_from(0x0502);
    for _ in 0..CASES {
        let values = values_vec(&mut rng, 200, 1e6);
        let q1 = rng.uniform(0.0, 1.0);
        let q2 = rng.uniform(0.0, 1.0);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        assert!(percentile(&values, lo).unwrap() <= percentile(&values, hi).unwrap() + 1e-9);
    }
}

#[test]
fn median_is_invariant_under_permutation() {
    let mut rng = SimRng::seed_from(0x0503);
    for _ in 0..CASES {
        let mut values = values_vec(&mut rng, 100, 1e6);
        let original = median(&values).unwrap();
        values.reverse();
        assert_eq!(original, median(&values).unwrap());
        rng.shuffle(&mut values);
        assert_eq!(original, median(&values).unwrap());
    }
}

// -------------------------------------------------------------------
// Event queue: the slab-backed queue must behave exactly like a naive
// reference model under arbitrary schedule/pop/cancel interleavings.
// -------------------------------------------------------------------

/// The simplest possible future-event list: linear scans over a vector.
/// Deliberately naive, so its correctness is self-evident.
struct ReferenceQueue {
    entries: Vec<(u64, u64, u32, bool)>, // (time, seq, payload, pending)
    next_seq: u64,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, time: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((time, seq, payload, true));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        for entry in &mut self.entries {
            if entry.1 == seq && entry.3 {
                entry.3 = false;
                return true;
            }
        }
        false
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.3)
            .min_by_key(|(_, e)| (e.0, e.1))
            .map(|(i, _)| i)?;
        let entry = self.entries.remove(best);
        Some((entry.0, entry.2))
    }

    fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.3).count()
    }

    fn peek_time(&self) -> Option<u64> {
        self.entries
            .iter()
            .filter(|e| e.3)
            .min_by_key(|e| (e.0, e.1))
            .map(|e| e.0)
    }
}

#[test]
fn event_queue_matches_reference_model_under_random_interleavings() {
    let mut rng = SimRng::seed_from(0x0504);
    for case in 0..CASES {
        let mut queue: EventQueue<u32> = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut live_handles: Vec<(EventHandle, u64)> = Vec::new();
        let ops = rng.index(300) + 20;
        for op in 0..ops {
            match rng.index(10) {
                // Schedule with a deliberately narrow time range so ties are
                // common and FIFO ordering is actually exercised.
                0..=4 => {
                    let time = rng.uniform_u64(0, 50);
                    let payload = op as u32;
                    let handle = queue.schedule(SimTime::from_micros(time), payload);
                    let seq = reference.schedule(time, payload);
                    live_handles.push((handle, seq));
                }
                5..=6 => {
                    let popped = queue.pop().map(|(t, p)| (t.as_micros(), p));
                    assert_eq!(popped, reference.pop(), "case {case} op {op}");
                }
                7 => {
                    assert_eq!(
                        queue.peek_time().map(|t| t.as_micros()),
                        reference.peek_time(),
                        "case {case} op {op}"
                    );
                }
                _ => {
                    if !live_handles.is_empty() {
                        let idx = rng.index(live_handles.len());
                        let (handle, seq) = live_handles[idx];
                        assert_eq!(
                            queue.cancel(handle),
                            reference.cancel(seq),
                            "case {case} op {op}"
                        );
                    }
                }
            }
            assert_eq!(queue.len(), reference.len(), "case {case} op {op}");
        }
        // Drain both and compare the full remaining sequence.
        loop {
            let a = queue.pop().map(|(t, p)| (t.as_micros(), p));
            let b = reference.pop();
            assert_eq!(a, b, "case {case} drain");
            if a.is_none() {
                break;
            }
        }
    }
}

#[test]
fn event_queue_pops_in_nondecreasing_time_order() {
    let mut rng = SimRng::seed_from(0x0505);
    for _ in 0..CASES {
        let count = rng.index(300) + 1;
        let mut queue = EventQueue::new();
        for i in 0..count {
            queue.schedule(SimTime::from_micros(rng.uniform_u64(0, 1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((time, _)) = queue.pop() {
            assert!(time >= last);
            last = time;
            popped += 1;
        }
        assert_eq!(popped, count);
    }
}

#[test]
fn event_queue_ties_pop_in_schedule_order_after_cancellations() {
    let mut rng = SimRng::seed_from(0x0506);
    for _ in 0..CASES {
        let count = rng.index(100) + 10;
        let mut queue = EventQueue::new();
        let handles: Vec<EventHandle> = (0..count)
            .map(|i| queue.schedule(SimTime::from_micros(42), i))
            .collect();
        let mut expected: Vec<usize> = (0..count).collect();
        // Cancel a random subset.
        for (i, handle) in handles.iter().enumerate() {
            if rng.chance(0.3) {
                assert!(queue.cancel(*handle));
                expected.retain(|&e| e != i);
            }
        }
        let drained: Vec<usize> = std::iter::from_fn(|| queue.pop()).map(|(_, e)| e).collect();
        assert_eq!(drained, expected, "FIFO order must survive cancellation");
    }
}

// -------------------------------------------------------------------
// Fluid link fair sharing.
// -------------------------------------------------------------------

#[test]
fn fluid_link_never_exceeds_capacity_and_conserves_bytes() {
    let mut rng = SimRng::seed_from(0x0507);
    for _ in 0..CASES {
        let capacity = rng.uniform(1_000.0, 1e8);
        let sizes = values_vec(&mut rng, 40, 1e6)
            .into_iter()
            .map(|s| s.max(1.0))
            .collect::<Vec<f64>>();
        let mut link = FluidLink::new(capacity);
        for (i, &bytes) in sizes.iter().enumerate() {
            link.start_flow(FlowId(i as u64), bytes, f64::INFINITY, SimTime::ZERO);
        }
        assert!(link.utilization_bytes_per_sec() <= capacity * (1.0 + 1e-9));
        let mut remaining = sizes.len();
        let mut guard = 0;
        while remaining > 0 && guard < 10_000 {
            guard += 1;
            let now = link
                .next_completion(SimTime::ZERO)
                .map(|(t, _)| t)
                .unwrap_or(SimTime::ZERO);
            if let Some((_, flow)) = link.next_completion(now) {
                link.finish_flow(flow, now);
                remaining -= 1;
            }
        }
        assert_eq!(remaining, 0, "all flows must eventually finish");
        let total: f64 = sizes.iter().sum();
        assert!((link.bytes_transferred() - total).abs() < total * 1e-6 + 1.0);
    }
}

// -------------------------------------------------------------------
// Fluid link: the virtual-time / water-level core must match the retained
// naive progressive-filling model (the executable specification) on rates,
// completion times and completion order, across arbitrary interleavings of
// flow arrivals, departures, cap changes and partial advances.
// -------------------------------------------------------------------

/// Draws a rate cap: sometimes unlimited, sometimes a broad range, and
/// sometimes from a small palette so duplicate caps are exercised.
fn random_cap(rng: &mut SimRng) -> f64 {
    match rng.index(4) {
        0 => f64::INFINITY,
        1 => rng.uniform(5_000.0, 2e6),
        2 => rng.uniform(100.0, 50_000.0),
        _ => [50_000.0, 100_000.0, 250_000.0][rng.index(3)],
    }
}

/// Relative-tolerance float comparison for rates and byte counts.
fn assert_close(a: f64, b: f64, what: &str, ctx: &str) {
    let tol = 1e-6 * a.abs().max(b.abs()) + 1e-6;
    assert!((a - b).abs() <= tol, "{what} diverged: {a} vs {b} ({ctx})");
}

/// Completion times are ceil-rounded to microseconds by both models; allow
/// the rounding step plus float noise proportional to the magnitude.
fn times_close(a: SimTime, b: SimTime) -> bool {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let tol = 2 + hi.as_micros() / 1_000_000_000;
    (hi - lo).as_micros() <= tol
}

/// The naive model's own prediction of when `id` would finish if nothing
/// changes, computed from its reported remaining bytes and rate after it
/// has been advanced to `now`.  Used to verify that when the two models
/// disagree about *which* flow completes next, it is a genuine tie: the
/// naive model itself expects the fast model's pick to finish at the same
/// clock tick.  `None` when the flow is stalled (zero rate, bytes left).
fn naive_predicted_completion(naive: &NaiveFluidLink, id: FlowId, now: SimTime) -> Option<SimTime> {
    let remaining = naive.remaining_bytes(id)?;
    if remaining <= 0.0 {
        return Some(now);
    }
    let rate = naive.current_rate(id)?;
    if rate <= 0.0 {
        return None;
    }
    let micros = (remaining / rate * 1_000_000.0).ceil().max(0.0) as u64;
    Some(now + SimDuration::from_micros(micros))
}

/// Compares every active flow's rate and remaining bytes between the two
/// models.  Flows within a byte of completion are exempt from the rate
/// check: at that boundary the models may legitimately disagree about
/// whether the flow has already finished (one sees exactly zero, the other
/// a sub-byte sliver), and a sub-byte flow's rate has no observable effect.
fn assert_flows_match(fast: &FluidLink, naive: &NaiveFluidLink, active: &[u64], ctx: &str) {
    for &id in active {
        let flow = FlowId(id);
        let naive_left = naive.remaining_bytes(flow).expect("active in naive");
        let fast_left = fast.remaining_bytes(flow).expect("active in fast");
        assert!(
            (naive_left - fast_left).abs() <= 1e-6 * naive_left.max(fast_left) + 1.0,
            "remaining bytes diverged for flow {id}: {naive_left} vs {fast_left} ({ctx})"
        );
        if naive_left < 1.0 || fast_left < 1.0 {
            continue;
        }
        let naive_rate = naive.current_rate(flow).expect("active in naive");
        let fast_rate = fast.current_rate(flow).expect("active in fast");
        assert_close(naive_rate, fast_rate, &format!("rate of flow {id}"), ctx);
    }
}

#[test]
fn fluid_link_matches_naive_reference_under_random_ops() {
    let mut rng = SimRng::seed_from(0x0601);
    for case in 0..CASES {
        let capacity = rng.uniform(1e5, 1e7);
        let mut fast = FluidLink::new(capacity);
        let mut naive = NaiveFluidLink::new(capacity);
        let mut active: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        let mut now = SimTime::ZERO;
        let ops = rng.index(100) + 40;
        for op in 0..ops {
            let ctx = format!("case {case} op {op}");
            match rng.index(10) {
                // Arrival.
                0..=3 => {
                    let bytes = if rng.chance(0.05) {
                        0.0
                    } else {
                        rng.uniform(1_000.0, 5e6)
                    };
                    let cap = random_cap(&mut rng);
                    let id = next_id;
                    next_id += 1;
                    fast.start_flow(FlowId(id), bytes, cap, now);
                    naive.start_flow(FlowId(id), bytes, cap, now);
                    active.push(id);
                }
                // Timeout-style removal of a random flow.
                4 => {
                    if !active.is_empty() {
                        let id = active.swap_remove(rng.index(active.len()));
                        let a = naive.finish_flow(FlowId(id), now).expect("active");
                        let b = fast.finish_flow(FlowId(id), now).expect("active");
                        assert!(
                            (a - b).abs() <= 1e-6 * a.max(b) + 1.0,
                            "returned remaining diverged: {a} vs {b} ({ctx})"
                        );
                    }
                }
                // Cap change on a random flow.
                5 => {
                    if !active.is_empty() {
                        let id = active[rng.index(active.len())];
                        let cap = random_cap(&mut rng);
                        fast.set_rate_cap(FlowId(id), cap, now);
                        naive.set_rate_cap(FlowId(id), cap, now);
                    }
                }
                // Run to the next completion and retire that flow.
                6..=7 => {
                    let naive_next = naive.next_completion(now);
                    let fast_next = fast.next_completion(now);
                    match (naive_next, fast_next) {
                        (None, None) => {}
                        (Some((tn, idn)), Some((tf, idf))) => {
                            assert!(
                                times_close(tn, tf),
                                "completion times diverged: {tn:?} vs {tf:?} ({ctx})"
                            );
                            // The same flow must be next, unless two flows
                            // complete within clock resolution of each
                            // other (then the pick order may differ): the
                            // naive model must agree that the fast model's
                            // pick also finishes at this same instant.
                            if idn != idf {
                                let predicted = naive_predicted_completion(&naive, idf, now)
                                    .unwrap_or_else(|| panic!("{idf:?} stalled in naive ({ctx})"));
                                assert!(
                                    times_close(tn, predicted),
                                    "different ids without a genuine tie: naive picked {idn:?} \
                                     at {tn:?} but expects {idf:?} at {predicted:?} ({ctx})"
                                );
                            }
                            now = now.max(tn).max(tf);
                            let a = naive.finish_flow(idn, now).expect("active");
                            let b = fast.finish_flow(idn, now).expect("active");
                            assert!(
                                a.abs() < 1.0 && b.abs() < 1.0,
                                "completed flow had bytes left: {a} vs {b} ({ctx})"
                            );
                            active.retain(|&x| x != idn.0);
                        }
                        (a, b) => panic!("one model has a completion: {a:?} vs {b:?} ({ctx})"),
                    }
                }
                // Advance part-way towards the next completion.
                _ => {
                    if let Some((t, _)) = naive.next_completion(now) {
                        let span = (t - now).as_micros();
                        now += SimDuration::from_micros(rng.uniform_u64(0, span.max(1)));
                        naive.advance(now);
                        fast.advance(now);
                    }
                }
            }
            assert_flows_match(&fast, &naive, &active, &ctx);
            assert_close(
                naive.utilization_bytes_per_sec(),
                fast.utilization_bytes_per_sec(),
                "utilization",
                &ctx,
            );
        }
        // Drain everything, checking completion order as we go.
        let mut guard = 0;
        while !active.is_empty() {
            guard += 1;
            assert!(guard < 10_000, "case {case}: drain did not terminate");
            let (tn, idn) = naive
                .next_completion(now)
                .expect("active flows must complete");
            let (tf, idf) = fast.next_completion(now).expect("fast agrees");
            assert!(
                times_close(tn, tf),
                "case {case}: drain completion times diverged: {tn:?} vs {tf:?}"
            );
            if idn != idf {
                // Only simultaneous completions may be ordered differently:
                // the naive model itself must expect the fast pick to finish
                // at this same clock tick.
                let predicted = naive_predicted_completion(&naive, idf, now)
                    .unwrap_or_else(|| panic!("case {case}: {idf:?} stalled in naive"));
                assert!(
                    times_close(tn, predicted),
                    "case {case}: order broke a non-tie: naive picked {idn:?} at {tn:?} but \
                     expects {idf:?} at {predicted:?}"
                );
            }
            now = now.max(tn).max(tf);
            naive.finish_flow(idn, now);
            fast.finish_flow(idn, now);
            active.retain(|&x| x != idn.0);
        }
        assert_close(
            naive.bytes_transferred(),
            fast.bytes_transferred(),
            "total bytes transferred",
            &format!("case {case}"),
        );
    }
}

#[test]
fn fluid_link_ten_thousand_flows_are_deterministic_and_fast() {
    // A DDoS-scale crowd: 10k concurrent transfers with heterogeneous caps
    // and staggered arrivals.  Two independent runs must produce the exact
    // same completion sequence bit for bit (the BTree/treap cores never
    // iterate in address or hash order).
    let run = || {
        let mut rng = SimRng::seed_from(0x0602);
        let mut link = FluidLink::new(1e9);
        let n = 10_000u64;
        let mut now = SimTime::ZERO;
        for id in 0..n {
            now += SimDuration::from_micros(rng.uniform_u64(0, 200));
            link.start_flow(
                FlowId(id),
                rng.uniform(10_000.0, 1e6),
                random_cap(&mut rng),
                now,
            );
        }
        let mut completions: Vec<(u64, u64)> = Vec::with_capacity(n as usize);
        while let Some((t, id)) = link.next_completion(now) {
            now = now.max(t);
            link.finish_flow(id, now);
            completions.push((t.as_micros(), id.0));
        }
        (completions, link.bytes_transferred().to_bits())
    };
    let (completions_a, bytes_a) = run();
    let (completions_b, bytes_b) = run();
    assert_eq!(completions_a.len(), 10_000);
    assert_eq!(
        completions_a, completions_b,
        "completion sequence must be bit-stable"
    );
    assert_eq!(bytes_a, bytes_b, "byte accounting must be bit-stable");
    // Completions come out in nondecreasing time order.
    assert!(completions_a.windows(2).all(|w| w[0].0 <= w[1].0));
}

// -------------------------------------------------------------------
// Multi-hop network graph: the incremental water-filling core must match
// the textbook progressive-filling specification on arbitrary topologies.
// -------------------------------------------------------------------

/// The naive network's own prediction of when `id` would finish; see
/// [`naive_predicted_completion`].
fn naive_net_predicted_completion(
    naive: &NaiveNetwork,
    id: FlowId,
    now: SimTime,
) -> Option<SimTime> {
    let remaining = naive.remaining_bytes(id)?;
    if remaining <= 0.0 {
        return Some(now);
    }
    let rate = naive.current_rate(id)?;
    if rate <= 0.0 {
        return None;
    }
    let micros = (remaining / rate * 1_000_000.0).ceil().max(0.0) as u64;
    Some(now + SimDuration::from_micros(micros))
}

/// Compares every active flow's rate and remaining bytes between the graph
/// and the reference, with the same completion-boundary exemption as the
/// single-link test.
fn assert_net_flows_match(fast: &NetworkGraph, naive: &NaiveNetwork, active: &[u64], ctx: &str) {
    for &id in active {
        let flow = FlowId(id);
        let naive_left = naive.remaining_bytes(flow).expect("active in naive");
        let fast_left = fast.remaining_bytes(flow).expect("active in fast");
        assert!(
            (naive_left - fast_left).abs() <= 1e-6 * naive_left.max(fast_left) + 1.0,
            "remaining bytes diverged for flow {id}: {naive_left} vs {fast_left} ({ctx})"
        );
        if naive_left < 1.0 || fast_left < 1.0 {
            continue;
        }
        let naive_rate = naive.current_rate(flow).expect("active in naive");
        let fast_rate = fast.current_rate(flow).expect("active in fast");
        assert_close(naive_rate, fast_rate, &format!("rate of flow {id}"), ctx);
    }
}

#[test]
fn network_graph_matches_naive_progressive_filling_on_random_topologies() {
    let mut rng = SimRng::seed_from(0x0701);
    for case in 0..32 {
        // A random topology: 2–5 links, 2–5 routes over random non-empty
        // link subsets (stars, chains, diamonds, shared backbones — the
        // allocator must not care).
        let link_count = rng.index(4) + 2;
        let capacities: Vec<f64> = (0..link_count).map(|_| rng.uniform(2e5, 5e6)).collect();
        let mut fast = NetworkGraph::new();
        let mut naive = NaiveNetwork::new();
        let links: Vec<LinkId> = capacities.iter().map(|&c| fast.add_link(c)).collect();
        for &c in &capacities {
            naive.add_link(c);
        }
        let route_count = rng.index(4) + 2;
        let mut routes: Vec<(RouteId, Vec<LinkId>)> = Vec::new();
        for _ in 0..route_count {
            let mut members: Vec<LinkId> =
                links.iter().copied().filter(|_| rng.chance(0.5)).collect();
            if members.is_empty() {
                members.push(links[rng.index(links.len())]);
            }
            let id = fast.add_route(&members);
            routes.push((id, members));
        }

        let mut active: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        let mut now = SimTime::ZERO;
        let ops = rng.index(80) + 40;
        for op in 0..ops {
            let ctx = format!("case {case} op {op}");
            match rng.index(10) {
                // Arrival on a random route.
                0..=3 => {
                    let bytes = if rng.chance(0.05) {
                        0.0
                    } else {
                        rng.uniform(1_000.0, 5e6)
                    };
                    let cap = random_cap(&mut rng);
                    let (route, members) = &routes[rng.index(routes.len())];
                    let id = next_id;
                    next_id += 1;
                    fast.start_flow(FlowId(id), *route, bytes, cap, now);
                    naive.start_flow(FlowId(id), members, bytes, cap, now);
                    active.push(id);
                }
                // Timeout-style removal.
                4 => {
                    if !active.is_empty() {
                        let id = active.swap_remove(rng.index(active.len()));
                        let a = naive.finish_flow(FlowId(id), now).expect("active");
                        let b = fast.finish_flow(FlowId(id), now).expect("active");
                        assert!(
                            (a - b).abs() <= 1e-6 * a.max(b) + 1.0,
                            "returned remaining diverged: {a} vs {b} ({ctx})"
                        );
                    }
                }
                // Cap change.
                5 => {
                    if !active.is_empty() {
                        let id = active[rng.index(active.len())];
                        let cap = random_cap(&mut rng);
                        fast.set_rate_cap(FlowId(id), cap, now);
                        naive.set_rate_cap(FlowId(id), cap, now);
                    }
                }
                // Mid-run link capacity change.
                6 => {
                    let link = links[rng.index(links.len())];
                    let capacity = rng.uniform(2e5, 5e6);
                    fast.set_link_capacity(link, capacity, now);
                    naive.set_link_capacity(link, capacity, now);
                }
                // Run to the next completion and retire that flow.
                7..=8 => {
                    let naive_next = naive.next_completion(now);
                    let fast_next = fast.next_completion(now);
                    match (naive_next, fast_next) {
                        (None, None) => {}
                        (Some((tn, idn)), Some((tf, idf))) => {
                            assert!(
                                times_close(tn, tf),
                                "completion times diverged: {tn:?} vs {tf:?} ({ctx})"
                            );
                            if idn != idf {
                                let predicted = naive_net_predicted_completion(&naive, idf, now)
                                    .unwrap_or_else(|| panic!("{idf:?} stalled in naive ({ctx})"));
                                assert!(
                                    times_close(tn, predicted),
                                    "different ids without a genuine tie: naive picked {idn:?} \
                                     at {tn:?} but expects {idf:?} at {predicted:?} ({ctx})"
                                );
                            }
                            now = now.max(tn).max(tf);
                            let a = naive.finish_flow(idn, now).expect("active");
                            let b = fast.finish_flow(idn, now).expect("active");
                            assert!(
                                a.abs() < 1.0 && b.abs() < 1.0,
                                "completed flow had bytes left: {a} vs {b} ({ctx})"
                            );
                            active.retain(|&x| x != idn.0);
                        }
                        (a, b) => panic!("one model has a completion: {a:?} vs {b:?} ({ctx})"),
                    }
                }
                // Advance part-way towards the next completion.
                _ => {
                    if let Some((t, _)) = naive.next_completion(now) {
                        let span = (t - now).as_micros();
                        now += SimDuration::from_micros(rng.uniform_u64(0, span.max(1)));
                        naive.advance(now);
                        fast.advance(now);
                    }
                }
            }
            assert_net_flows_match(&fast, &naive, &active, &ctx);
            for &link in &links {
                assert_close(
                    naive.link_utilization_bytes_per_sec(link),
                    fast.link_utilization_bytes_per_sec(link),
                    &format!("utilization of {link:?}"),
                    &ctx,
                );
            }
        }
        // Drain everything, checking completion order as we go.
        let mut guard = 0;
        while !active.is_empty() {
            guard += 1;
            assert!(guard < 10_000, "case {case}: drain did not terminate");
            let (tn, idn) = naive
                .next_completion(now)
                .expect("active flows must complete");
            let (tf, idf) = fast.next_completion(now).expect("fast agrees");
            assert!(
                times_close(tn, tf),
                "case {case}: drain completion times diverged: {tn:?} vs {tf:?}"
            );
            if idn != idf {
                let predicted = naive_net_predicted_completion(&naive, idf, now)
                    .unwrap_or_else(|| panic!("case {case}: {idf:?} stalled in naive"));
                assert!(
                    times_close(tn, predicted),
                    "case {case}: order broke a non-tie: naive picked {idn:?} at {tn:?} but \
                     expects {idf:?} at {predicted:?}"
                );
            }
            now = now.max(tn).max(tf);
            naive.finish_flow(idn, now);
            fast.finish_flow(idn, now);
            active.retain(|&x| x != idn.0);
        }
        for &link in &links {
            assert_close(
                naive.link_bytes_transferred(link),
                fast.link_bytes_transferred(link),
                &format!("bytes through {link:?}"),
                &format!("case {case}"),
            );
        }
    }
}

#[test]
fn single_link_network_graph_matches_fluid_link() {
    // The degenerate graph (one link, one route) must behave exactly like
    // the single-bottleneck FluidLink every pre-topology scenario uses.
    let mut rng = SimRng::seed_from(0x0702);
    for case in 0..CASES {
        let capacity = rng.uniform(1e5, 1e7);
        let mut graph = NetworkGraph::new();
        let link = graph.add_link(capacity);
        let route = graph.add_route(&[link]);
        let mut fluid = FluidLink::new(capacity);
        let mut active: Vec<u64> = Vec::new();
        let mut now = SimTime::ZERO;
        for op in 0..60 {
            let ctx = format!("case {case} op {op}");
            match rng.index(8) {
                0..=3 => {
                    let bytes = rng.uniform(1_000.0, 5e6);
                    let cap = random_cap(&mut rng);
                    let id = op as u64 + case as u64 * 1_000;
                    graph.start_flow(FlowId(id), route, bytes, cap, now);
                    fluid.start_flow(FlowId(id), bytes, cap, now);
                    active.push(id);
                }
                4 => {
                    if !active.is_empty() {
                        let id = active.swap_remove(rng.index(active.len()));
                        let a = fluid.finish_flow(FlowId(id), now).expect("active");
                        let b = graph.finish_flow(FlowId(id), now).expect("active");
                        assert!((a - b).abs() <= 1e-6 * a.max(b) + 1.0, "{ctx}: {a} vs {b}");
                    }
                }
                5 => {
                    let capacity = rng.uniform(1e5, 1e7);
                    graph.set_link_capacity(link, capacity, now);
                    fluid.set_capacity(capacity, now);
                }
                _ => {
                    now += SimDuration::from_micros(rng.uniform_u64(0, 400_000));
                    graph.advance(now);
                    fluid.advance(now);
                }
            }
            for &id in &active {
                let a = fluid.remaining_bytes(FlowId(id)).expect("active");
                let b = graph.remaining_bytes(FlowId(id)).expect("active");
                assert!(
                    (a - b).abs() <= 1e-6 * a.max(b) + 1.0,
                    "{ctx}: remaining {a} vs {b}"
                );
                if a >= 1.0 && b >= 1.0 {
                    assert_close(
                        fluid.current_rate(FlowId(id)).expect("active"),
                        graph.current_rate(FlowId(id)).expect("active"),
                        &format!("rate of {id}"),
                        &ctx,
                    );
                }
            }
            match (fluid.peek_completion(), graph.peek_completion()) {
                (None, None) => {}
                (Some((ta, _)), Some((tb, _))) => {
                    assert!(
                        times_close(ta, tb),
                        "{ctx}: peeks diverged {ta:?} vs {tb:?}"
                    );
                }
                (a, b) => panic!("{ctx}: one model peeks a completion: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn network_graph_ten_thousand_flows_are_deterministic() {
    // The DDoS-scale determinism guarantee extended to the multi-hop
    // graph: 10k transfers from four vantage groups over a 6-link graph
    // (4 transits + backbone + access, with cross traffic) must produce a
    // bit-identical completion sequence on every run — the property that
    // keeps `MFC_THREADS` unobservable in any artifact built on top.
    let run = || {
        let mut rng = SimRng::seed_from(0x0703);
        let mut net = NetworkGraph::new();
        let access = net.add_link(1e9);
        let backbone = net.add_link(6e8);
        let groups: Vec<RouteId> = (0..4)
            .map(|g| {
                let transit = net.add_link(2e7 * (g + 1) as f64);
                net.add_route(&[transit, backbone, access])
            })
            .collect();
        // Persistent cross traffic on the first group's transit.
        let cross = net.add_route(&[LinkId(2)]);
        for k in 0..8u64 {
            net.start_flow(
                FlowId(1 << 62 | k),
                cross,
                f64::INFINITY,
                250_000.0,
                SimTime::ZERO,
            );
        }
        let n = 10_000u64;
        let mut now = SimTime::ZERO;
        for id in 0..n {
            now += SimDuration::from_micros(rng.uniform_u64(0, 200));
            net.start_flow(
                FlowId(id),
                groups[(id % 4) as usize],
                rng.uniform(10_000.0, 1e6),
                random_cap(&mut rng),
                now,
            );
        }
        let mut completions: Vec<(u64, u64)> = Vec::with_capacity(n as usize);
        while let Some((t, id)) = net.next_completion(now) {
            now = now.max(t);
            net.finish_flow(id, now);
            completions.push((t.as_micros(), id.0));
        }
        (completions, net.link_bytes_transferred(access).to_bits())
    };
    let (completions_a, bytes_a) = run();
    let (completions_b, bytes_b) = run();
    assert_eq!(completions_a.len(), 10_000, "cross traffic never completes");
    assert_eq!(
        completions_a, completions_b,
        "completion sequence must be bit-stable"
    );
    assert_eq!(bytes_a, bytes_b, "byte accounting must be bit-stable");
    assert!(completions_a.windows(2).all(|w| w[0].0 <= w[1].0));
}

// -------------------------------------------------------------------
// TCP model.
// -------------------------------------------------------------------

#[test]
fn tcp_transfer_time_is_monotone_in_bytes() {
    let mut rng = SimRng::seed_from(0x0508);
    for _ in 0..CASES {
        let bytes_a = rng.uniform_u64(0, 50_000_000);
        let bytes_b = rng.uniform_u64(0, 50_000_000);
        let rtt = SimDuration::from_millis(rng.uniform_u64(1, 499));
        let rate = rng.uniform(1_000.0, 1e9);
        let tcp = TcpModel::default();
        let (small, large) = if bytes_a <= bytes_b {
            (bytes_a, bytes_b)
        } else {
            (bytes_b, bytes_a)
        };
        assert!(tcp.transfer_time(small, rtt, rate) <= tcp.transfer_time(large, rtt, rate));
    }
}

// -------------------------------------------------------------------
// Synchronization scheduling arithmetic.
// -------------------------------------------------------------------

#[test]
fn compensated_commands_arrive_exactly_at_the_lead_when_latencies_hold() {
    let mut rng = SimRng::seed_from(0x0509);
    for _ in 0..CASES {
        let n = rng.index(60) + 1;
        let latencies: Vec<ClientLatency> = (0..n)
            .map(|i| ClientLatency {
                client: ClientId(i as u32),
                coordinator_rtt: SimDuration::from_millis(rng.uniform_u64(1, 399)),
                target_rtt: SimDuration::from_millis(rng.uniform_u64(1, 399)),
            })
            .collect();
        let lead = SimDuration::from_secs(rng.uniform_u64(2, 59));
        let scheduler = SyncScheduler::simultaneous(lead);
        for command in scheduler.schedule(&latencies) {
            let latency = latencies
                .iter()
                .find(|l| l.client == command.client)
                .unwrap();
            let compensation =
                latency.coordinator_rtt.mul_f64(0.5) + latency.target_rtt.mul_f64(1.5);
            // With a lead of at least 2 s and RTTs under 400 ms the offset
            // never saturates, so send + compensation == lead exactly (up to
            // the microsecond rounding of the half-RTT terms).
            let arrival = command.send_offset + compensation;
            let diff = arrival
                .saturating_sub(lead)
                .max(lead.saturating_sub(arrival));
            assert!(diff <= SimDuration::from_micros(2), "diff {diff}");
        }
    }
}

#[test]
fn schedule_lands_the_planetlab_crowd_within_tolerance() {
    // End-to-end synchronization property: measure each client's RTTs the
    // way the coordinator does (one jittered sample each), schedule with
    // the paper's 15 s lead, then simulate the actual jittered delivery.
    // The planetlab population jitters each leg by ±3σ = ±12%, and the
    // measurement itself carries the same error, so the worst-case arrival
    // error is 0.5·RTTc·0.24 + 1.5·RTTt·0.24 ≈ 170 ms at the 350 ms RTT
    // ceiling.  Every request must land within that tolerance of the
    // intended instant — the property the whole epoch design rests on.
    let tolerance = SimDuration::from_millis(200);
    let lead = SimDuration::from_secs(15);
    let mut rng = SimRng::seed_from(0x0704);
    for case in 0..CASES {
        let mut wan = WideAreaModel::generate(
            &PopulationProfile::planetlab(),
            40,
            &SimRng::seed_from(0x0900 + case as u64),
        );
        let crowd = rng.index(35) + 5;
        let latencies: Vec<ClientLatency> = (0..crowd)
            .map(|i| ClientLatency {
                client: ClientId(i as u32),
                coordinator_rtt: wan.measure_coordinator_rtt(i),
                target_rtt: wan.measure_target_rtt(i),
            })
            .collect();
        let scheduler = SyncScheduler::simultaneous(lead);
        for command in scheduler.schedule(&latencies) {
            let index = command.client.0 as usize;
            let profile = wan.client(index).clone();
            // Command transit plus the 1.5·RTT handshake-to-first-byte, each
            // jittered independently of the measurement samples.
            let command_delay = wan.coordinator_to_client(index);
            let handshake =
                wan.jittered_delay(profile.rtt_target.mul_f64(1.5), profile.jitter_frac);
            let actual = command.send_offset + command_delay + handshake;
            let miss = actual
                .saturating_sub(command.intended_arrival)
                .max(command.intended_arrival.saturating_sub(actual));
            assert!(
                miss <= tolerance,
                "case {case}: client {index} missed the arrival instant by {miss}"
            );
        }
    }
}

#[test]
fn staggered_schedule_preserves_spacing_and_order_under_random_latencies() {
    // The §6 staggered MFC: whatever the per-client latencies, the ladder
    // of intended arrivals must ascend in exact `spacing` steps, and when
    // the network behaves as measured the *actual* arrivals reproduce the
    // ladder — same order, same spacing (up to microsecond rounding).
    let mut rng = SimRng::seed_from(0x0705);
    for case in 0..CASES {
        let n = rng.index(40) + 2;
        let spacing = SimDuration::from_millis(rng.uniform_u64(1, 499));
        let lead = SimDuration::from_secs(15);
        let latencies: Vec<ClientLatency> = (0..n)
            .map(|i| ClientLatency {
                client: ClientId(i as u32),
                coordinator_rtt: SimDuration::from_millis(rng.uniform_u64(1, 399)),
                target_rtt: SimDuration::from_millis(rng.uniform_u64(1, 399)),
            })
            .collect();
        let commands = SyncScheduler::staggered(lead, spacing).schedule(&latencies);
        let arrivals: Vec<SimDuration> = commands
            .iter()
            .map(|command| {
                let latency = latencies
                    .iter()
                    .find(|l| l.client == command.client)
                    .unwrap();
                assert_eq!(
                    command.intended_arrival,
                    lead + spacing * (command.client.0 as u64),
                    "case {case}: ladder rung misplaced"
                );
                command.send_offset
                    + latency.coordinator_rtt.mul_f64(0.5)
                    + latency.target_rtt.mul_f64(1.5)
            })
            .collect();
        for (i, pair) in arrivals.windows(2).enumerate() {
            let gap = pair[1].saturating_sub(pair[0]);
            let error = gap.max(spacing).saturating_sub(gap.min(spacing));
            assert!(
                pair[1] > pair[0],
                "case {case}: rung {i} arrivals out of order"
            );
            assert!(
                error <= SimDuration::from_micros(2),
                "case {case}: rung {i} spacing drifted by {error}"
            );
        }
    }
}

#[test]
fn send_offset_never_exceeds_the_intended_arrival() {
    let mut rng = SimRng::seed_from(0x050a);
    for _ in 0..CASES {
        let latency = ClientLatency {
            client: ClientId(0),
            coordinator_rtt: SimDuration::from_millis(rng.uniform_u64(0, 2_000)),
            target_rtt: SimDuration::from_millis(rng.uniform_u64(0, 2_000)),
        };
        let lead = SimDuration::from_millis(rng.uniform_u64(0, 20_000));
        assert!(send_offset(&latency, lead) <= lead);
    }
}

// -------------------------------------------------------------------
// HTTP wire format round trips.
// -------------------------------------------------------------------

fn random_token(rng: &mut SimRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.index(max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.index(alphabet.len())] as char)
        .collect()
}

#[test]
fn http_request_head_round_trips() {
    let mut rng = SimRng::seed_from(0x050b);
    let path_chars = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
    let query_chars = b"abcdefghijklmnopqrstuvwxyz0123456789=&";
    for _ in 0..CASES {
        let path = format!("/{}", random_token(&mut rng, path_chars, 40));
        let target = if rng.chance(0.5) {
            let q = random_token(&mut rng, query_chars, 29);
            if q.is_empty() {
                path.clone()
            } else {
                format!("{path}?{q}")
            }
        } else {
            path.clone()
        };
        let header_value: String = (0..rng.index(61))
            .map(|_| (rng.uniform_u64(0x20, 0x7e) as u8) as char)
            .collect();
        let request = Request::new(Method::Get, target.clone(), "example.org")
            .with_header("x-prop", header_value.trim());
        let parsed = Request::read_from(&mut BufReader::new(&request.to_bytes()[..])).unwrap();
        assert_eq!(parsed.target, target);
        assert_eq!(parsed.method, Method::Get);
    }
}

#[test]
fn http_response_body_round_trips() {
    let mut rng = SimRng::seed_from(0x050c);
    for _ in 0..CASES {
        let body: Vec<u8> = (0..rng.index(4096))
            .map(|_| rng.uniform_u64(0, 255) as u8)
            .collect();
        let response = Response::new(StatusCode::OK, body.clone());
        let parsed = Response::read_from(
            &mut BufReader::new(&response.to_bytes(false)[..]),
            true,
            1 << 20,
        )
        .unwrap();
        assert_eq!(parsed.body, body);
        assert_eq!(parsed.status, StatusCode::OK);
    }
}

#[test]
fn url_parse_display_round_trips() {
    let mut rng = SimRng::seed_from(0x050d);
    let host_chars = b"abcdefghijklmnopqrstuvwxyz0123456789.-";
    let path_chars = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
    for _ in 0..CASES {
        let host = format!(
            "{}{}",
            (b'a' + rng.index(26) as u8) as char,
            random_token(&mut rng, host_chars, 20)
        );
        let port = rng.uniform_u64(1, u16::MAX as u64) as u16;
        let path = format!("/{}", random_token(&mut rng, path_chars, 30));
        let raw = format!("http://{host}:{port}{path}");
        let url = Url::parse(&raw).unwrap();
        let reparsed = Url::parse(&url.to_string()).unwrap();
        assert_eq!(url, reparsed);
    }
}

// -------------------------------------------------------------------
// Server engine sanity under arbitrary crowd sizes.
// -------------------------------------------------------------------

#[test]
fn engine_accounts_for_every_request() {
    let mut rng = SimRng::seed_from(0x050e);
    for _ in 0..CASES {
        let crowd = rng.index(59) + 1;
        let stagger_us = rng.uniform_u64(0, 49_999);
        let engine =
            ServerEngine::new(ServerConfig::lab_apache(), ContentCatalog::lab_validation());
        let mut cache = CacheState::new();
        let requests: Vec<ServerRequest> = (0..crowd)
            .map(|i| ServerRequest {
                id: i as u64,
                arrival: SimTime::from_micros(i as u64 * stagger_us),
                class: RequestClass::Head,
                path: "/index.html".to_string(),
                client_downlink: 1e7,
                client_rtt: SimDuration::from_millis(40),
                client_addr: i as u32,
                background: false,
            })
            .collect();
        let result = engine.run(requests, &mut cache);
        assert_eq!(result.outcomes.len(), crowd);
        assert_eq!(result.arrival_log.len(), crowd);
        for outcome in &result.outcomes {
            assert!(outcome.completion >= outcome.arrival);
        }
    }
}

// -------------------------------------------------------------------
// Workload generation: arrival streams hit their configured rates,
// heavy-tailed size specs are honoured, and the streamed engine entry
// points agree with the batch ones.
// -------------------------------------------------------------------

#[test]
fn workload_arrival_streams_hit_their_configured_mean_rates() {
    use mfc_workload::{
        ArrivalProcess, ClientSpec, KindSampler, MixWeights, MmppState, WorkloadSpec,
        WorkloadStream,
    };
    let processes: Vec<ArrivalProcess> = vec![
        ArrivalProcess::Poisson { rate_per_sec: 6.0 },
        ArrivalProcess::diurnal(4.0, 0.8, 300.0, 12),
        ArrivalProcess::Mmpp {
            states: vec![
                MmppState {
                    rate_per_sec: 0.5,
                    mean_dwell_secs: 12.0,
                },
                MmppState {
                    rate_per_sec: 25.0,
                    mean_dwell_secs: 2.5,
                },
            ],
        },
        ArrivalProcess::FlashCrowd {
            base_rate: 1.0,
            peak_rate: 30.0,
            onset_secs: 200.0,
            ramp_secs: 40.0,
            hold_secs: 120.0,
            decay_secs: 40.0,
        },
    ];
    let start = SimTime::ZERO;
    let end = SimTime::ZERO + SimDuration::from_secs(6_000);
    for (index, process) in processes.into_iter().enumerate() {
        let expected = process.expected_count(start, end);
        let spec = WorkloadSpec::poisson_mix(0.0, MixWeights::default(), ClientSpec::default());
        let mut spec = spec;
        // Swap the arrival process in (poisson_mix built the shell).
        if let mfc_workload::SourceKind::Open { arrivals, .. } = &mut spec.sources[0].kind {
            *arrivals = process;
        }
        let master = SimRng::seed_from(0x0601 + index as u64);
        let count = WorkloadStream::new(&spec, start, end, 0, &master, KindSampler).count() as f64;
        assert!(
            (count - expected).abs() < 0.12 * expected.max(50.0),
            "process {index}: generated {count} arrivals, expected {expected}"
        );
    }
}

#[test]
fn heavy_tailed_catalog_sizes_match_the_spec_quantiles() {
    use mfc_workload::TailDistribution;
    let specs = [
        TailDistribution::Pareto {
            x_min: 20_000.0,
            alpha: 1.3,
        },
        TailDistribution::LogNormal {
            median: 30_000.0,
            sigma: 1.4,
        },
    ];
    for (index, sizes) in specs.iter().enumerate() {
        let mut rng = SimRng::seed_from(0x0611 + index as u64);
        let catalog = ContentCatalog::heavy_tailed_site(9, 4_000, sizes, &mut rng);
        let mut drawn: Vec<f64> = catalog
            .objects()
            .iter()
            .filter(|o| !o.kind.is_dynamic())
            .map(|o| o.size_bytes as f64)
            .collect();
        assert_eq!(drawn.len(), 4_000);
        drawn.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.25, 0.5, 0.75, 0.9] {
            let empirical = drawn[((drawn.len() - 1) as f64 * q) as usize];
            let analytic = sizes.quantile(q);
            assert!(
                (empirical - analytic).abs() < 0.12 * analytic,
                "spec {index} q{q}: empirical {empirical} vs analytic {analytic}"
            );
        }
        // The tail is genuinely heavy: the max dwarfs the median.
        assert!(drawn[drawn.len() - 1] > 10.0 * sizes.quantile(0.5));
    }
}

#[test]
fn streamed_engine_run_matches_the_batch_run() {
    // Arrivals spaced so no two events ever coincide: the streamed feed
    // (push interleaved with stepping) must then reproduce the batch run
    // outcome for outcome.
    let mut rng = SimRng::seed_from(0x0621);
    for _ in 0..16 {
        let crowd = rng.index(40) + 2;
        let engine =
            ServerEngine::new(ServerConfig::lab_apache(), ContentCatalog::lab_validation());
        let requests: Vec<ServerRequest> = (0..crowd)
            .map(|i| ServerRequest {
                id: i as u64,
                arrival: SimTime::from_micros(i as u64 * 10_000 + rng.uniform_u64(0, 7_919)),
                class: RequestClass::Head,
                path: "/index.html".to_string(),
                client_downlink: 1e7,
                client_rtt: SimDuration::from_millis(40),
                client_addr: i as u32,
                background: false,
            })
            .collect();
        let mut requests = requests;
        requests.sort_by_key(|r| r.arrival);
        let mut batch_cache = CacheState::new();
        let batch = engine.run(requests.clone(), &mut batch_cache);
        let mut stream_cache = CacheState::new();
        let streamed = engine.run_streamed(requests, &mut stream_cache);
        assert_eq!(batch.outcomes, streamed.outcomes);
        assert_eq!(batch.arrival_log, streamed.arrival_log);
    }
}

#[test]
fn streamed_cluster_run_matches_the_batch_controlled_run() {
    use mfc_webserver::{NullControl, ServerCluster};
    let mut rng = SimRng::seed_from(0x0622);
    for _ in 0..8 {
        let crowd = rng.index(30) + 2;
        let requests: Vec<ServerRequest> = (0..crowd)
            .map(|i| ServerRequest {
                id: i as u64,
                arrival: SimTime::from_micros(i as u64 * 15_000 + rng.uniform_u64(0, 9_973)),
                class: RequestClass::Head,
                path: "/index.html".to_string(),
                client_downlink: 1e7,
                client_rtt: SimDuration::from_millis(40),
                client_addr: i as u32,
                background: false,
            })
            .collect();
        let mut requests = requests;
        requests.sort_by_key(|r| r.arrival);
        let make = || {
            ServerCluster::new(
                ServerConfig::commercial_frontend(),
                ContentCatalog::typical_site(1),
                3,
            )
        };
        let batch = make().run_controlled(requests.clone(), &mut NullControl);
        let streamed = make().run_controlled_streamed(requests, &mut NullControl);
        // Inputs were fed in arrival order, so both report the same order.
        assert_eq!(batch.outcomes, streamed.outcomes);
        assert_eq!(batch.arrival_log, streamed.arrival_log);
        assert_eq!(batch.utilization, streamed.utilization);
    }
}

#[test]
fn workload_stream_is_identical_across_trial_runner_thread_counts() {
    use mfc_core::runner::TrialRunner;
    use mfc_webserver::CatalogSampler;
    use mfc_workload::{ArrivalProcess, ClientSpec, SessionModel, WorkloadSpec, WorkloadStream};

    // The stream never observes thread context: generating the same spec
    // inside differently-sized trial-runner pools must be bit-identical.
    let generate = |threads: usize| -> Vec<String> {
        let runner = if threads == 1 {
            TrialRunner::serial()
        } else {
            TrialRunner::with_threads(threads)
        };
        runner.run(vec![0u8; 4], |trial, _| {
            let spec = WorkloadSpec::sessions(
                ArrivalProcess::diurnal(2.0, 0.7, 240.0, 8),
                SessionModel::browsing(),
                ClientSpec::default(),
            );
            let catalog = ContentCatalog::typical_site(3);
            let requests: Vec<ServerRequest> = WorkloadStream::new(
                &spec,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_secs(600),
                1_000,
                &SimRng::seed_from(trial as u64),
                CatalogSampler::background(&catalog),
            )
            .collect();
            format!("{requests:?}")
        })
    };
    assert_eq!(generate(1), generate(8));
}
