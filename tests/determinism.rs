//! Serial-vs-parallel reproducibility: the tentpole guarantee of the trial
//! runner is that thread count is *unobservable* in experiment output — the
//! same seed must produce byte-identical artifacts on 1 or N workers.

use mfc_core::runner::TrialRunner;
use mfc_core::types::Stage;
use mfc_sites::{survey, SiteClass, SurveyConfig};

fn survey_json(class: SiteClass, config: &SurveyConfig, runner: &TrialRunner) -> String {
    let result = survey::run_survey_with(class, config, runner);
    serde_json::to_string_pretty(&result).expect("survey serializes")
}

#[test]
fn survey_json_is_byte_identical_across_thread_counts() {
    for (class, stage) in [
        (SiteClass::Top1K, Stage::Base),
        (SiteClass::Rank100KTo1M, Stage::SmallQuery),
        (SiteClass::Phishing, Stage::LargeObject),
    ] {
        let config = SurveyConfig::quick(class, stage, 12);
        let serial = survey_json(class, &config, &TrialRunner::serial());
        for threads in [2, 8] {
            let parallel = survey_json(class, &config, &TrialRunner::with_threads(threads));
            assert_eq!(
                serial, parallel,
                "{class:?}/{stage:?} output changed with {threads} threads"
            );
        }
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Two runs with the same many-threaded runner must also agree with each
    // other (catches nondeterminism that happens to differ from serial in
    // the same way twice — e.g. completion-order dependence).
    let config = SurveyConfig::quick(SiteClass::Startup, Stage::Base, 10);
    let runner = TrialRunner::with_threads(6);
    let first = survey_json(SiteClass::Startup, &config, &runner);
    let second = survey_json(SiteClass::Startup, &config, &runner);
    assert_eq!(first, second);
}

#[test]
fn dynamics_survey_is_byte_identical_across_thread_counts() {
    // The defended path adds a control loop (ticks, per-client buckets,
    // replica scaling) on top of the engine; the guarantee must not bend:
    // a dynamics-enabled survey is byte-identical on 1 or N workers, with
    // all four policy kinds active.
    let config = SurveyConfig::quick(SiteClass::Rank10KTo100K, Stage::LargeObject, 8)
        .with_defenses(mfc_dynamics::DefenseConfig::fortress(1, 4));
    let serial = survey_json(SiteClass::Rank10KTo100K, &config, &TrialRunner::serial());
    for threads in [2, 8] {
        let parallel = survey_json(
            SiteClass::Rank10KTo100K,
            &config,
            &TrialRunner::with_threads(threads),
        );
        assert_eq!(
            serial, parallel,
            "defended survey output changed with {threads} threads"
        );
    }
}

#[test]
fn repeated_dynamics_runs_are_stable() {
    let config = SurveyConfig::quick(SiteClass::Startup, Stage::SmallQuery, 6).with_defenses(
        mfc_dynamics::DefenseConfig::rate_limited(1.0, 0.002, 16.0 * 1024.0),
    );
    let runner = TrialRunner::with_threads(6);
    let first = survey_json(SiteClass::Startup, &config, &runner);
    let second = survey_json(SiteClass::Startup, &config, &runner);
    assert_eq!(first, second);
}

#[test]
fn topology_survey_is_byte_identical_across_thread_counts() {
    // The shared-bottleneck WAN graph sits under every trial of a
    // topology-enabled survey: per-group transit links, a backbone, cross
    // traffic, plus the vantage-aware inference on top.  The guarantee is
    // unchanged — thread count must be unobservable bit for bit.
    let topology = mfc_topology::TopologySpec::star(&[
        mfc_simnet::mbps(2.0),
        mfc_simnet::mbps(1000.0),
        mfc_simnet::mbps(1000.0),
        mfc_simnet::mbps(1000.0),
    ])
    .with_backbone(mfc_simnet::mbps(800.0))
    .with_cross_traffic(0, 2, 50_000.0);
    let config =
        SurveyConfig::quick(SiteClass::Rank1KTo10K, Stage::LargeObject, 8).with_topology(topology);
    let serial = survey_json(SiteClass::Rank1KTo10K, &config, &TrialRunner::serial());
    for threads in [2, 8] {
        let parallel = survey_json(
            SiteClass::Rank1KTo10K,
            &config,
            &TrialRunner::with_threads(threads),
        );
        assert_eq!(
            serial, parallel,
            "topology survey output changed with {threads} threads"
        );
    }
}

#[test]
fn repeated_topology_runs_are_stable() {
    let topology = mfc_topology::TopologySpec::star(&[
        mfc_simnet::mbps(1.6),
        mfc_simnet::mbps(1000.0),
        mfc_simnet::mbps(1000.0),
    ]);
    let config =
        SurveyConfig::quick(SiteClass::Startup, Stage::LargeObject, 6).with_topology(topology);
    let runner = TrialRunner::with_threads(6);
    let first = survey_json(SiteClass::Startup, &config, &runner);
    let second = survey_json(SiteClass::Startup, &config, &runner);
    assert_eq!(first, second);
}

#[test]
fn runner_defaults_respect_the_env_contract() {
    // `from_env` must produce at least one worker no matter what; the
    // explicit constructors pin the count exactly.
    assert!(TrialRunner::from_env().threads() >= 1);
    assert_eq!(TrialRunner::serial().threads(), 1);
    assert_eq!(TrialRunner::with_threads(5).threads(), 5);
}

#[test]
fn workload_survey_is_byte_identical_across_thread_counts() {
    // The workload subsystem sits under every trial: diurnal browsing
    // sessions per site, streamed through the merged heap.  The guarantee
    // is unchanged — thread count must be unobservable bit for bit.
    let config = SurveyConfig::quick(SiteClass::Rank10KTo100K, Stage::LargeObject, 8)
        .with_session_background();
    let serial = survey_json(SiteClass::Rank10KTo100K, &config, &TrialRunner::serial());
    for threads in [2, 8] {
        let parallel = survey_json(
            SiteClass::Rank10KTo100K,
            &config,
            &TrialRunner::with_threads(threads),
        );
        assert_eq!(
            serial, parallel,
            "workload survey output changed with {threads} threads"
        );
    }
}

#[test]
fn repeated_workload_runs_are_stable() {
    // A fixed flash-crowd workload (the scenario-matrix shape) applied to
    // every surveyed site, on a many-threaded runner, twice.
    let workload = SiteClass::session_workload(2.0);
    let config = SurveyConfig::quick(SiteClass::Startup, Stage::Base, 6).with_workload(workload);
    let runner = TrialRunner::with_threads(6);
    let first = survey_json(SiteClass::Startup, &config, &runner);
    let second = survey_json(SiteClass::Startup, &config, &runner);
    assert_eq!(first, second);
}
