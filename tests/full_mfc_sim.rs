//! End-to-end integration tests: the full MFC pipeline over the simulated
//! wide area and server substrate.

use mfc_core::backend::sim::{SimBackend, SimTargetSpec};
use mfc_core::config::MfcConfig;
use mfc_core::coordinator::{Coordinator, MfcError};
use mfc_core::inference::Provisioning;
use mfc_core::types::{Stage, StageOutcome};
use mfc_simcore::SimDuration;
use mfc_webserver::{BackgroundTraffic, ContentCatalog, ServerConfig};

fn lab_target() -> SimTargetSpec {
    SimTargetSpec::single_server(ServerConfig::lab_apache(), ContentCatalog::lab_validation())
}

#[test]
fn full_three_stage_experiment_produces_coherent_report() {
    let mut backend = SimBackend::new(lab_target(), 60, 101);
    let config = MfcConfig::standard().with_max_crowd(40).with_increment(10);
    let report = Coordinator::new(config)
        .with_seed(1)
        .run(&mut backend)
        .unwrap();

    assert_eq!(report.stages.len(), 3);
    assert_eq!(report.clients_registered, 60);
    assert!(report.total_requests > 0);
    // Every stage report is internally consistent.
    for stage in &report.stages {
        let scheduled: usize = stage.epochs.iter().map(|e| e.requests_scheduled).sum();
        assert_eq!(stage.requests_issued, scheduled);
        for epoch in &stage.epochs {
            assert!(epoch.requests_observed <= epoch.requests_scheduled);
            assert!(epoch.crowd_size <= 60);
            assert!(epoch.detector_ms >= 0.0);
        }
        // A stopped stage must have a triggering epoch above the threshold.
        if let StageOutcome::Stopped { crowd_size } = stage.outcome {
            assert!(crowd_size >= 1);
            assert!(
                stage
                    .epochs
                    .iter()
                    .any(|e| e.detector_ms > report.threshold_ms),
                "a stopped stage must have at least one epoch above threshold"
            );
        }
    }
    // The inference covers every stage that was run.
    assert_eq!(report.inference.constraints.len(), 3);
}

#[test]
fn lab_server_bottleneck_ordering_is_bandwidth_then_backend() {
    // The lab target sits behind 10 Mbit/s with a fork-per-request dynamic
    // handler: the access link must be the tightest constraint, the back
    // end next, and plain HEAD handling the healthiest.
    let mut backend = SimBackend::new(lab_target(), 60, 7);
    let config = MfcConfig::standard().with_max_crowd(50).with_increment(5);
    let report = Coordinator::new(config)
        .with_seed(5)
        .run(&mut backend)
        .unwrap();

    let large = report.stopping_crowd(Stage::LargeObject);
    let base = report.stopping_crowd(Stage::Base);
    assert!(
        large.is_some(),
        "50 concurrent 100KB transfers over 10 Mbit/s must be detected"
    );
    if let (Some(large), Some(base)) = (large, base) {
        assert!(large <= base, "bandwidth must bind before HEAD processing");
    }
    // The inference ranks the access link at (or tied for) the bottom.
    let last = *report.inference.best_to_worst.last().unwrap();
    assert!(
        last == Stage::LargeObject || last == Stage::SmallQuery,
        "worst-provisioned sub-system should be the link or the back end, got {last:?}"
    );
}

#[test]
fn experiment_aborts_without_enough_clients() {
    let mut backend = SimBackend::new(lab_target(), 30, 3);
    let err = Coordinator::new(MfcConfig::standard())
        .run(&mut backend)
        .unwrap_err();
    assert!(matches!(
        err,
        MfcError::NotEnoughClients {
            available: 30,
            required: 50
        }
    ));
}

#[test]
fn reports_are_deterministic_for_a_fixed_seed() {
    let run = |seed| {
        let mut backend = SimBackend::new(lab_target(), 55, 77);
        Coordinator::new(MfcConfig::standard().with_max_crowd(25).with_increment(10))
            .with_seed(seed)
            .run(&mut backend)
            .unwrap()
    };
    assert_eq!(run(9), run(9));
    // Different coordinator seeds may legitimately differ (different random
    // crowds), but the overall shape — which stages stop — should be stable
    // for this clearly-constrained target.
    let a = run(9);
    let b = run(10);
    assert_eq!(
        a.stage(Stage::LargeObject).unwrap().outcome.is_no_stop(),
        b.stage(Stage::LargeObject).unwrap().outcome.is_no_stop()
    );
}

#[test]
fn well_provisioned_cluster_shows_no_constraints() {
    let spec = SimTargetSpec::cluster(
        ServerConfig::commercial_frontend(),
        ContentCatalog::typical_site(9),
        16,
    )
    .with_background(BackgroundTraffic::at_rate(50.0));
    let mut backend = SimBackend::new(spec, 60, 19);
    let config = MfcConfig::standard().with_max_crowd(40).with_increment(10);
    let report = Coordinator::new(config)
        .with_seed(2)
        .run(&mut backend)
        .unwrap();
    for stage in &report.stages {
        assert!(
            stage.outcome.is_no_stop(),
            "{} unexpectedly stopped: {:?}",
            stage.stage.name(),
            stage.outcome
        );
    }
    assert!(matches!(
        report.inference.provisioning_of(Stage::LargeObject),
        Some(Provisioning::Unconstrained { .. })
    ));
}

#[test]
fn higher_threshold_never_stops_earlier() {
    let run_with_threshold = |ms: u64| {
        let mut backend = SimBackend::new(lab_target(), 60, 23);
        let config = MfcConfig::standard()
            .with_threshold(SimDuration::from_millis(ms))
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(50)
            .with_increment(5);
        Coordinator::new(config)
            .with_seed(4)
            .run(&mut backend)
            .unwrap()
            .stopping_crowd(Stage::LargeObject)
    };
    let strict = run_with_threshold(100);
    let lenient = run_with_threshold(2_000);
    match (strict, lenient) {
        (Some(strict), Some(lenient)) => assert!(lenient >= strict),
        (None, Some(_)) => panic!("a stricter threshold must not miss what a lenient one found"),
        _ => {}
    }
}

#[test]
fn mfc_mr_amplifies_load_without_more_clients() {
    // With the same number of client hosts, MFC-mr(3) should find the
    // bandwidth constraint at a smaller *crowd* than the standard MFC.
    let run_with_mr = |requests_per_client: usize| {
        let mut backend = SimBackend::new(lab_target(), 60, 31);
        let config = MfcConfig::standard()
            .with_requests_per_client(requests_per_client)
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(50)
            .with_increment(5);
        Coordinator::new(config)
            .with_seed(6)
            .run(&mut backend)
            .unwrap()
            .stopping_crowd(Stage::LargeObject)
    };
    let standard = run_with_mr(1);
    let amplified = run_with_mr(3);
    if let (Some(standard), Some(amplified)) = (standard, amplified) {
        assert!(
            amplified <= standard,
            "tripling the per-client requests must not require a larger crowd ({amplified} vs {standard})"
        );
    } else {
        assert!(amplified.is_some(), "MFC-mr(3) must find the thin link");
    }
}

#[test]
fn background_traffic_makes_the_base_stage_stop_earlier_or_equal() {
    // The Univ-3 observation: more regular traffic leaves less headroom.
    let run_with_background = |rate: f64| {
        let spec = SimTargetSpec::single_server(
            ServerConfig {
                hardware: mfc_webserver::HardwareSpec {
                    cpu_speed: 0.4,
                    ..mfc_webserver::HardwareSpec::default()
                },
                ..ServerConfig::lab_apache()
            },
            ContentCatalog::typical_site(4),
        )
        .with_background(BackgroundTraffic::at_rate(rate));
        let mut backend = SimBackend::new(spec, 60, 47);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::Base])
            .with_max_crowd(50)
            .with_increment(5);
        Coordinator::new(config)
            .with_seed(8)
            .run(&mut backend)
            .unwrap()
            .stopping_crowd(Stage::Base)
            .unwrap_or(usize::MAX)
    };
    let quiet = run_with_background(0.0);
    let busy = run_with_background(40.0);
    assert!(
        busy <= quiet,
        "heavy background traffic must not raise the stopping crowd (quiet {quiet}, busy {busy})"
    );
}

#[test]
fn skipped_stage_when_content_class_is_missing() {
    let catalog = ContentCatalog::new(
        mfc_webserver::ObjectSpec::static_object(
            "/index.html",
            mfc_webserver::ObjectKind::Text,
            8 * 1024,
        ),
        vec![mfc_webserver::ObjectSpec::static_object(
            "/small.gif",
            mfc_webserver::ObjectKind::Image,
            2 * 1024,
        )],
    );
    let spec = SimTargetSpec::single_server(ServerConfig::lab_apache(), catalog);
    let mut backend = SimBackend::new(spec, 55, 53);
    let report = Coordinator::new(MfcConfig::standard().with_max_crowd(20))
        .run(&mut backend)
        .unwrap();
    assert_eq!(
        report.stage(Stage::LargeObject).unwrap().outcome,
        StageOutcome::Skipped
    );
    assert_eq!(
        report.stage(Stage::SmallQuery).unwrap().outcome,
        StageOutcome::Skipped
    );
}
