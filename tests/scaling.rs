//! Quick-mode scaling smoke: the virtual-time fluid core must handle a
//! thousand-flow crowd in interactive time.
//!
//! These are coarse wall-clock ceilings, not benchmarks — the real numbers
//! live in `crates/bench/benches/throughput.rs` and the `BENCH_*.json`
//! trajectory.  The ceilings are set an order of magnitude above the
//! expected debug-mode cost so they only trip on a genuine complexity
//! regression (the old progressive-filling model blows the first ceiling by
//! minutes, not milliseconds).

use std::time::{Duration, Instant};

use mfc_core::runner::TrialRunner;
use mfc_dynamics::DefenseConfig;
use mfc_simcore::{SimDuration, SimRng, SimTime};
use mfc_simnet::{FlowId, FluidLink};
use mfc_topology::{NetworkGraph, RouteId};
use mfc_webserver::{
    BalancePolicy, CacheState, ContentCatalog, RequestClass, ServerCluster, ServerConfig,
    ServerEngine, ServerRequest, WorkerConfig,
};

#[test]
fn thousand_flow_link_drains_within_wall_clock_budget() {
    let started = Instant::now();
    let mut rng = SimRng::seed_from(0x5CA1);
    let mut link = FluidLink::new(1e8);
    let n = 1_000u64;
    let mut now = SimTime::ZERO;
    for id in 0..n {
        now += SimDuration::from_micros(rng.uniform_u64(0, 500));
        let cap = if rng.chance(0.5) {
            f64::INFINITY
        } else {
            rng.uniform(10_000.0, 1e6)
        };
        link.start_flow(FlowId(id), rng.uniform(50_000.0, 2e6), cap, now);
    }
    let mut completed = 0u64;
    while let Some((t, id)) = link.next_completion(now) {
        now = now.max(t);
        link.finish_flow(id, now);
        completed += 1;
    }
    assert_eq!(completed, n);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "1k-flow drain took {elapsed:?}; the sharing core has regressed to super-logarithmic \
         per-event cost"
    );
}

#[test]
fn ten_k_flows_over_a_multi_hop_graph_drain_within_wall_clock_budget() {
    // The topology analogue of the 1k-flow FluidLink smoke: 10k transfers
    // from four vantage groups over a three-hop graph (transit → backbone
    // → access, six links total) with heterogeneous caps and staggered
    // arrivals.  Per-event cost must stay near O(L²·log C) — a regression
    // to per-flow rescans blows this ceiling by orders of magnitude.
    let started = Instant::now();
    let mut rng = SimRng::seed_from(0x70F0);
    let mut net = NetworkGraph::new();
    let access = net.add_link(2e9);
    let backbone = net.add_link(1e9);
    let groups: Vec<RouteId> = (0..4)
        .map(|g| {
            let transit = net.add_link(5e7 * (g + 1) as f64);
            net.add_route(&[transit, backbone, access])
        })
        .collect();
    let n = 10_000u64;
    let mut now = SimTime::ZERO;
    for id in 0..n {
        now += SimDuration::from_micros(rng.uniform_u64(0, 300));
        let cap = if rng.chance(0.5) {
            f64::INFINITY
        } else {
            rng.uniform(10_000.0, 1e6)
        };
        net.start_flow(
            FlowId(id),
            groups[(id % 4) as usize],
            rng.uniform(50_000.0, 2e6),
            cap,
            now,
        );
    }
    let mut completed = 0u64;
    while let Some((t, id)) = net.next_completion(now) {
        now = now.max(t);
        net.finish_flow(id, now);
        completed += 1;
    }
    assert_eq!(completed, n);
    // Every byte of every flow crossed the access link (within sub-byte
    // fluid rounding per flow).
    assert!(net.link_bytes_transferred(access) > 0.0);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(60),
        "10k-flow multi-hop drain took {elapsed:?}; the graph allocator has regressed \
         to super-logarithmic per-event cost"
    );
}

#[test]
fn thousand_request_large_object_crowd_completes_quickly() {
    let started = Instant::now();
    // Enough workers to hold the whole crowd on the access link at once —
    // this is the Large Object stage at DDoS scale, where the old model's
    // O(C²) reallocation dominated the run time.
    let config = ServerConfig {
        workers: WorkerConfig {
            max_workers: 4_096,
            listen_queue: 8_192,
            ..WorkerConfig::default()
        },
        ..ServerConfig::lab_apache()
    };
    let engine = ServerEngine::new(config, ContentCatalog::lab_validation());
    let mut cache = CacheState::new();
    // Warm the object cache so the disk stays out of the picture.
    let warm = ServerRequest {
        id: 0,
        arrival: SimTime::ZERO,
        class: RequestClass::Static,
        path: "/objects/large_100k.bin".to_string(),
        client_downlink: 1e8,
        client_rtt: SimDuration::from_millis(40),
        client_addr: 0,
        background: false,
    };
    engine.run(vec![warm.clone()], &mut cache);
    let crowd: Vec<ServerRequest> = (0..1_000)
        .map(|i| ServerRequest {
            id: i + 1,
            arrival: SimTime::ZERO + SimDuration::from_micros(i * 50),
            ..warm.clone()
        })
        .collect();
    let result = engine.run(crowd, &mut cache);
    assert_eq!(result.outcomes.len(), 1_000);
    assert!(
        result.outcomes.iter().all(|o| o.is_ok()),
        "every transfer in the crowd must complete"
    );
    // All bytes crossed the link (sub-byte fluid rounding allowed per flow).
    assert!(result.utilization.network_bytes_sent >= 1_000 * 100 * 1024 - 1_000);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "1k-request large-object crowd took {elapsed:?}"
    );
}

#[test]
fn ten_k_crowd_with_all_four_defenses_stays_under_wall_clock_budget() {
    // The dynamics layer adds a control loop on top of the engine: ticks,
    // per-client token buckets, admission windows, replica scaling and a
    // capacity schedule.  None of that may bend the scaling law — a
    // 10k-request ramp through all four policies at once must stay firmly
    // interactive.  The ceiling is an order of magnitude above the
    // expected debug-mode cost; CI additionally runs this file in release
    // where the run takes tens of milliseconds.
    let started = Instant::now();
    let config = ServerConfig {
        workers: WorkerConfig {
            max_workers: 65_536,
            listen_queue: 65_536,
            ..WorkerConfig::default()
        },
        ..ServerConfig::lab_apache()
    };
    let crowd: Vec<ServerRequest> = (0..10_000u64)
        .map(|i| ServerRequest {
            id: i,
            // A 100-second ramp, like a flash-crowd onset.
            arrival: SimTime::ZERO
                + SimDuration::from_micros((1e8 * (i as f64 / 10_000.0).sqrt()) as u64),
            class: RequestClass::Static,
            path: "/objects/large_100k.bin".to_string(),
            client_downlink: 1e8,
            client_rtt: SimDuration::from_millis(40),
            client_addr: (i % 509) as u32,
            background: false,
        })
        .collect();
    let mut stack = DefenseConfig::fortress(1, 8).build();
    let mut cluster = ServerCluster::new(config, ContentCatalog::lab_validation(), 1)
        .with_policy(BalancePolicy::LeastOutstanding);
    let result = cluster.run_controlled(crowd, &mut stack);
    assert_eq!(result.outcomes.len(), 10_000);
    // Every request was answered one way or another: served, refused or
    // deliberately shed — nobody is silently dropped.
    let answered = result.utilization.completed_requests
        + result.utilization.refused_requests
        + result.utilization.shed_requests;
    assert_eq!(answered, 10_000);
    // The defenses actually engaged.
    assert!(
        cluster.active_replicas() > 1,
        "the autoscaler must have scaled out"
    );
    assert!(
        result.utilization.shed_requests > 0 || result.utilization.throttled_requests > 0,
        "rate limiting / admission control must have touched the crowd"
    );
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(60),
        "10k-crowd dynamic scenario took {elapsed:?}; the control loop has broken the \
         engine's scaling law"
    );
}

/// One million browsing sessions as a lazily evaluated stream: the
/// workload generator must produce them in O(log S) per request with
/// memory bounded by session *concurrency*, the result must be
/// bit-identical no matter how many trial-runner threads surround the
/// generation (the `MFC_THREADS` contract), and the stream must drive an
/// `EngineSession` to completion without ever materializing the request
/// list — all inside a release-mode wall-clock ceiling.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: the 1M-session stream needs optimized code (CI runs it via \
              `cargo test --release --test scaling`)"
)]
fn million_session_workload_streams_through_the_engine() {
    use mfc_simcore::SimRng;
    use mfc_webserver::CatalogSampler;
    use mfc_workload::{
        ArrivalProcess, ClientSpec, PageSpec, RequestKind, SessionModel, TailDistribution,
        WorkloadSpec, WorkloadStream,
    };

    let started = Instant::now();
    // ~1.1 requests per session keeps the engine cost proportional to the
    // session count; a 30 s think time keeps thousands of sessions live
    // concurrently so the slab reuse actually gets exercised.
    let model = SessionModel {
        pages: vec![PageSpec::bare(RequestKind::BasePage)],
        entry_weights: vec![1.0],
        transitions: vec![vec![0.1]],
        exit_weights: vec![0.9],
        think_time: TailDistribution::Constant { value: 30.0 },
    };
    // 500 sessions/s on a diurnal cycle over 2000 s → one million sessions.
    let spec = WorkloadSpec::sessions(
        ArrivalProcess::diurnal(500.0, 0.5, 500.0, 10),
        model,
        ClientSpec::default(),
    );
    let window_end = SimTime::ZERO + SimDuration::from_secs(2_000);
    let catalog = ContentCatalog::lab_validation();

    // 1) Bit-stability across trial-runner thread counts (the
    //    MFC_THREADS=1 vs MFC_THREADS=8 contract): generate the stream
    //    inside a serial and an 8-thread pool and compare a running hash.
    let digest = |runner: &TrialRunner| -> Vec<(u64, u64, u64)> {
        runner.run(vec![(); 2], |trial, ()| {
            let mut hash = 0x9e37_79b9_7f4a_7c15u64 ^ trial as u64;
            let mut count = 0u64;
            let mut stream = WorkloadStream::new(
                &spec,
                SimTime::ZERO,
                window_end,
                0,
                &SimRng::seed_from(0x1_000_000),
                CatalogSampler::background(&catalog),
            );
            for request in stream.by_ref() {
                hash = hash
                    .rotate_left(7)
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(request.id ^ request.arrival.as_micros())
                    .wrapping_add(u64::from(request.client_addr));
                count += 1;
            }
            (hash, count, stream.sessions_started())
        })
    };
    let serial = digest(&TrialRunner::serial());
    let threaded = digest(&TrialRunner::with_threads(8));
    assert_eq!(serial, threaded, "thread count observable in the stream");
    let (_, requests, sessions) = serial[0];
    assert!(
        sessions > 900_000,
        "expected ~1M sessions, generated {sessions}"
    );
    assert!(requests >= sessions, "sessions issue at least one request");

    // 2) The same stream drives an EngineSession to completion without a
    //    materialized request list.  The gigabit validation server absorbs
    //    the load; what is under test is the engine's event loop at 1M+
    //    streamed arrivals.
    let config = ServerConfig {
        workers: WorkerConfig {
            max_workers: 65_536,
            listen_queue: 65_536,
            ..WorkerConfig::default()
        },
        ..ServerConfig::validation_server()
    };
    let engine = ServerEngine::new(config, catalog.clone());
    let mut cache = CacheState::new();
    let mut stream = WorkloadStream::new(
        &spec,
        SimTime::ZERO,
        window_end,
        0,
        &SimRng::seed_from(0x1_000_000),
        CatalogSampler::background(&catalog),
    );
    let result = engine.run_streamed(stream.by_ref(), &mut cache);
    assert_eq!(result.outcomes.len() as u64, requests);
    let ok = result.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    assert!(
        ok * 10 >= requests * 9,
        "the gigabit server must absorb the stream: {ok}/{requests} ok"
    );
    // Memory scaled with concurrency, not total sessions: the session slab
    // peaked around rate × session-duration, three orders of magnitude
    // below the million sessions that passed through it.
    assert!(
        stream.peak_active_sessions() < 50_000,
        "session slab grew to {} — concurrency bound broken",
        stream.peak_active_sessions()
    );
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(120),
        "1M-session streamed workload took {elapsed:?}; generation or the engine event \
         loop has regressed"
    );
}
