//! Integration tests for the §5 survey machinery and the reporting layer.

use mfc_core::backend::sim::{SimBackend, SimTargetSpec};
use mfc_core::config::MfcConfig;
use mfc_core::coordinator::Coordinator;
use mfc_core::types::Stage;
use mfc_simcore::SimRng;
use mfc_sites::{survey, SiteClass, StoppingBucket, SurveyConfig};
use mfc_webserver::{ContentCatalog, ServerConfig};

#[test]
fn survey_buckets_partition_the_population() {
    let config = SurveyConfig::quick(SiteClass::Rank10KTo100K, Stage::Base, 10);
    let result = survey::run_survey(SiteClass::Rank10KTo100K, &config);
    assert_eq!(result.sites, 10);
    assert_eq!(result.bucket_counts.len(), StoppingBucket::ALL.len());
    assert_eq!(result.bucket_counts.iter().sum::<usize>(), 10);
    assert_eq!(result.outcomes.len(), 10);
    // Every recorded stopping size is consistent with its bucket.
    for outcome in result.outcomes.iter().flatten() {
        assert!(*outcome <= 50, "stopping sizes cannot exceed the crowd cap");
    }
    // Fractions are a probability distribution.
    let sum: f64 = result.bucket_fractions().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn rank_correlation_shows_up_in_moderate_samples() {
    // 16 sites per class is enough for the headline monotonicity to be
    // stable with the fixed seeds used here.
    let probe = |class: SiteClass| {
        let config = SurveyConfig::quick(class, Stage::SmallQuery, 16);
        survey::run_survey(class, &config).constrained_fraction()
    };
    let top = probe(SiteClass::Top1K);
    let bottom = probe(SiteClass::Rank100KTo1M);
    assert!(
        bottom >= top,
        "back-end constraints must be at least as common among low-rank sites (top {top}, bottom {bottom})"
    );
}

#[test]
fn generated_sites_are_probeable_end_to_end() {
    // Any generated site, of any class, can be run through the full MFC
    // without panics and yields a coherent report.
    let mut rng = SimRng::seed_from(77);
    for class in [SiteClass::Top1K, SiteClass::Startup, SiteClass::Phishing] {
        let spec = class.generate_site(3, &mut rng);
        let mut backend = SimBackend::new(spec, 55, 9);
        let config = MfcConfig::standard().with_max_crowd(20).with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        assert_eq!(report.stages.len(), 3);
        assert!(report.total_requests > 0);
    }
}

#[test]
fn report_round_trips_through_json() {
    let spec =
        SimTargetSpec::single_server(ServerConfig::lab_apache(), ContentCatalog::lab_validation());
    let mut backend = SimBackend::new(spec, 55, 13);
    let config = MfcConfig::standard().with_max_crowd(25).with_increment(10);
    let report = Coordinator::new(config).run(&mut backend).unwrap();

    let json = serde_json::to_string(&report).expect("report serializes");
    let back: mfc_core::report::MfcReport =
        serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(report, back);

    let text = report.render_text();
    for stage in Stage::ALL {
        assert!(
            text.contains(stage.name()),
            "report text must mention {}",
            stage.name()
        );
    }
}
