//! Max–min fair fluid model of a shared bottleneck link.
//!
//! The Large Object stage of an MFC exists to answer one question: at what
//! number of concurrent large transfers does the *server's outbound access
//! link* start inflating response times (paper §2.2.2)?  To reproduce that
//! we need a model of many simultaneous response transfers sharing one link,
//! where each flow may additionally be capped below its fair share by the
//! client's own downlink or by TCP window limits.
//!
//! [`FluidLink`] implements max–min fairness with a **virtual-time,
//! water-level core** instead of the classic per-event progressive-filling
//! pass:
//!
//! - The fair allocation is a water level `w` with `Σ min(cᵢ, w) = C`,
//!   computed in O(log n) over a [`CapMultiset`] (a balanced tree of caps
//!   with subtree prefix sums) rather than by repeatedly redistributing
//!   excess capacity over every flow.
//! - Flows *above* the water level all progress at the common rate `w`, so
//!   their remaining bytes never need to be touched individually: one
//!   cumulative fair-share integral `V(t) = ∫ w dt` advances for all of
//!   them, and each flow finishes when `V` reaches its *virtual finish
//!   tag* (the value of `V` at admission plus its size).  They live in an
//!   ordered set keyed by that tag, so the next completion is a peek.
//! - Flows *below* the water level run at their own constant cap, so their
//!   absolute finish time is fixed while they stay capped; they live in a
//!   second ordered set keyed by wall-clock finish time.
//! - An arrival or departure moves the water level and may flip flows
//!   between the two regimes; flips are found by range queries over
//!   cap-ordered indexes, so each flip costs O(log n) instead of a full
//!   rescan.
//!
//! The result is O(log n) amortized per flow arrival/departure and an
//! O(log n) `peek_completion`, versus O(n²) per event for progressive
//! filling — the
//! difference between simulating tens and tens of thousands of concurrent
//! transfers.  The old implementation is retained verbatim as
//! [`NaiveFluidLink`], the executable specification the property tests and
//! scaling benches compare against.
//!
//! Every container involved is ordered (`BTreeMap`/`BTreeSet`/set-shaped
//! treap), so all float accumulation happens in a reproducible order and
//! repro artifacts stay byte-identical across runs and thread counts.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use mfc_simcore::{SimDuration, SimTime};

use crate::capset::CapMultiset;
use crate::Bandwidth;

/// Identifies one flow (one HTTP response transfer) on a [`FluidLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Which sharing regime a flow is currently in.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Regime {
    /// Rate = water level; finishes when the fair-share integral `V`
    /// reaches `v_finish`.
    Sharing { v_finish: f64 },
    /// Rate = own cap (constant while capped); `r_ref` bytes remained at
    /// wall-clock `t_ref_secs`, giving the fixed finish time `finish_secs`.
    Capped {
        r_ref: f64,
        t_ref_secs: f64,
        finish_secs: f64,
    },
    /// No bytes left; rate zero, waiting for [`FluidLink::finish_flow`].
    Drained,
}

#[derive(Debug, Clone)]
struct Flow {
    /// Per-flow rate ceiling in bytes/s (client downlink, TCP window, …).
    rate_cap: Bandwidth,
    regime: Regime,
}

/// A shared bottleneck link with max–min fair bandwidth allocation.
///
/// # Examples
///
/// ```
/// use mfc_simcore::SimTime;
/// use mfc_simnet::{FluidLink, FlowId, mbps};
///
/// // A 8 Mbit/s access link (1 MB/s) shared by two transfers.
/// let mut link = FluidLink::new(mbps(8.0));
/// let t0 = SimTime::ZERO;
/// link.start_flow(FlowId(1), 500_000.0, f64::INFINITY, t0);
/// link.start_flow(FlowId(2), 500_000.0, f64::INFINITY, t0);
///
/// // Each flow gets 0.5 MB/s, so both finish after one second.
/// let (t, id) = link.peek_completion().unwrap();
/// assert_eq!((t - t0).as_secs_f64(), 1.0);
/// assert_eq!(id, FlowId(1));
/// ```
#[derive(Debug, Clone)]
pub struct FluidLink {
    capacity: Bandwidth,
    flows: BTreeMap<FlowId, Flow>,
    /// Fair-share integral `V(t)`: advances at the water-level rate while
    /// any sharing flow exists.
    vtime: f64,
    /// Water level (rate of every sharing flow); `f64::INFINITY` when no
    /// flow is sharing.
    water: f64,
    /// Aggregate throughput of all active flows.
    agg_rate: f64,
    last_event: SimTime,
    bytes_transferred: f64,
    /// Finite caps of all active (non-drained) flows.
    caps: CapMultiset,
    /// Active flows with an infinite cap (always sharing).
    inf_count: u64,
    /// Sharing flows ordered by virtual finish tag: `(v_finish bits, id)`.
    sharing: BTreeSet<(u64, FlowId)>,
    /// Capped flows ordered by absolute finish time: `(finish_secs bits, id)`.
    capped: BTreeSet<(u64, FlowId)>,
    /// Capped flows ordered by cap, for water-level-drop flips.
    capped_by_cap: BTreeSet<(u64, FlowId)>,
    /// Finite-cap sharing flows ordered by cap, for water-level-rise flips.
    sharing_by_cap: BTreeSet<(u64, FlowId)>,
    /// Flows discovered to have zero bytes remaining (they complete "now").
    drained: BTreeSet<FlowId>,
}

impl FluidLink {
    /// Creates a link with the given capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn new(capacity: Bandwidth) -> Self {
        assert!(capacity > 0.0, "link capacity must be positive");
        FluidLink {
            capacity,
            flows: BTreeMap::new(),
            vtime: 0.0,
            water: f64::INFINITY,
            agg_rate: 0.0,
            last_event: SimTime::ZERO,
            bytes_transferred: 0.0,
            caps: CapMultiset::new(),
            inf_count: 0,
            sharing: BTreeSet::new(),
            capped: BTreeSet::new(),
            capped_by_cap: BTreeSet::new(),
            sharing_by_cap: BTreeSet::new(),
            drained: BTreeSet::new(),
        }
    }

    /// The configured capacity in bytes per second.
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Changes the link's capacity mid-run (a capacity schedule, an upstream
    /// throttle, an autoscaler resizing a shared uplink).  In-flight flows
    /// keep their remaining bytes; the water level is recomputed and flows
    /// flip between the sharing and capped regimes exactly as they do on an
    /// arrival or departure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn set_capacity(&mut self, capacity: Bandwidth, now: SimTime) {
        assert!(capacity > 0.0, "link capacity must be positive");
        self.advance(now);
        self.sweep_completed();
        self.capacity = capacity;
        self.rebalance();
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes drained through the link since construction.
    pub fn bytes_transferred(&self) -> f64 {
        self.bytes_transferred
    }

    /// Current aggregate throughput in bytes per second.
    pub fn utilization_bytes_per_sec(&self) -> f64 {
        self.agg_rate
    }

    /// Starts a new transfer of `bytes` bytes at time `now`, individually
    /// capped at `rate_cap` bytes/s.
    ///
    /// The caller must have advanced the link to `now` (this method does it
    /// defensively).  Adding a flow triggers a re-allocation of rates.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is already active or `bytes` is negative.
    pub fn start_flow(&mut self, id: FlowId, bytes: f64, rate_cap: Bandwidth, now: SimTime) {
        assert!(bytes >= 0.0, "flow size must be non-negative");
        self.advance(now);
        self.sweep_completed();
        assert!(
            !self.flows.contains_key(&id),
            "flow {id:?} is already active"
        );
        let rate_cap = rate_cap.max(0.0);
        if bytes <= 0.0 {
            self.flows.insert(
                id,
                Flow {
                    rate_cap,
                    regime: Regime::Drained,
                },
            );
            self.drained.insert(id);
        } else {
            let v_finish = self.vtime + bytes;
            self.flows.insert(
                id,
                Flow {
                    rate_cap,
                    regime: Regime::Sharing { v_finish },
                },
            );
            self.sharing.insert((v_finish.to_bits(), id));
            if rate_cap.is_finite() {
                self.caps.insert(rate_cap);
                self.sharing_by_cap.insert((rate_cap.to_bits(), id));
            } else {
                self.inf_count += 1;
            }
        }
        self.rebalance();
    }

    /// Removes a flow (typically after a completion reported by
    /// [`Self::peek_completion`], or because the request timed out).
    /// Returns the number of bytes that had not yet been transferred.
    pub fn finish_flow(&mut self, id: FlowId, now: SimTime) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        let remaining = match flow.regime {
            Regime::Drained => {
                self.drained.remove(&id);
                0.0
            }
            Regime::Sharing { v_finish } => {
                self.sharing.remove(&(v_finish.to_bits(), id));
                self.detach_cap(&flow, id, /*was_sharing=*/ true);
                let r = v_finish - self.vtime;
                if r < 0.0 {
                    // The caller advanced (at most a clock tick) past the
                    // exact finish; refund the over-charged bytes.
                    self.bytes_transferred += r;
                }
                r.max(0.0)
            }
            Regime::Capped {
                r_ref,
                t_ref_secs,
                finish_secs,
            } => {
                self.capped.remove(&(finish_secs.to_bits(), id));
                self.detach_cap(&flow, id, /*was_sharing=*/ false);
                let r = r_ref - flow.rate_cap * (self.last_event.as_secs_f64() - t_ref_secs);
                if r < 0.0 {
                    self.bytes_transferred += r;
                }
                r.max(0.0)
            }
        };
        self.sweep_completed();
        self.rebalance();
        Some(remaining)
    }

    /// Changes the rate cap of an active flow (e.g. a TCP window opening up
    /// as the transfer leaves slow start).  Triggers a re-allocation.
    pub fn set_rate_cap(&mut self, id: FlowId, rate_cap: Bandwidth, now: SimTime) {
        self.advance(now);
        if !self.flows.contains_key(&id) {
            // Like the naive model: an unknown id advances the clock only.
            return;
        }
        // From here on this behaves like the reference model's unconditional
        // reallocate: once the sweep has detached newly-drained flows, a
        // rebalance MUST follow on every path, or `water`/`agg_rate` keep
        // counting the share of flows the sweep just released.
        self.sweep_completed();
        let flow = self.flows.get(&id).expect("presence checked above");
        let old_cap = flow.rate_cap;
        let rate_cap = rate_cap.max(0.0);
        if old_cap.to_bits() == rate_cap.to_bits() {
            self.rebalance();
            return;
        }
        match flow.regime {
            Regime::Drained => {
                self.flows.get_mut(&id).expect("flow exists").rate_cap = rate_cap;
                self.rebalance();
                return;
            }
            Regime::Sharing { .. } => {
                if old_cap.is_finite() {
                    self.caps.remove(old_cap);
                    self.sharing_by_cap.remove(&(old_cap.to_bits(), id));
                } else {
                    self.inf_count -= 1;
                }
            }
            Regime::Capped {
                r_ref,
                t_ref_secs,
                finish_secs,
            } => {
                // Materialize the remaining bytes and re-enter as sharing;
                // the rebalance below re-freezes the flow if its new cap is
                // still under water.
                self.caps.remove(old_cap);
                self.capped.remove(&(finish_secs.to_bits(), id));
                self.capped_by_cap.remove(&(old_cap.to_bits(), id));
                let r = r_ref - old_cap * (self.last_event.as_secs_f64() - t_ref_secs);
                let v_finish = self.vtime + r.max(0.0);
                self.flows.get_mut(&id).expect("flow exists").regime = Regime::Sharing { v_finish };
                self.sharing.insert((v_finish.to_bits(), id));
            }
        }
        let flow = self.flows.get_mut(&id).expect("flow exists");
        flow.rate_cap = rate_cap;
        if rate_cap.is_finite() {
            self.caps.insert(rate_cap);
            self.sharing_by_cap.insert((rate_cap.to_bits(), id));
        } else {
            self.inf_count += 1;
        }
        self.rebalance();
    }

    /// Advances the fluid model to `now`, draining bytes in aggregate and
    /// moving the fair-share integral forward.
    ///
    /// Flows whose remaining bytes reach zero stay in the link (at zero
    /// remaining) until [`Self::finish_flow`] removes them, so completion
    /// bookkeeping stays with the caller's event loop.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_event {
            return;
        }
        let elapsed = (now - self.last_event).as_secs_f64();
        self.bytes_transferred += self.agg_rate * elapsed;
        if !self.sharing.is_empty() {
            self.vtime += self.water * elapsed;
        }
        self.last_event = now;
    }

    /// Returns the time and id of the flow that will complete first if no
    /// flows are added or removed, or `None` when no active flow has both
    /// bytes remaining and a positive rate.
    ///
    /// Pure: does not advance the model.  Completion times are absolute, so
    /// the answer is stable between mutations regardless of how far the
    /// caller's clock has moved — ideal for event-loop rescheduling.
    pub fn peek_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        let consider = |candidate: (SimTime, FlowId), best: &mut Option<(SimTime, FlowId)>| {
            *best = Some(match *best {
                Some(b) if b <= candidate => b,
                _ => candidate,
            });
        };
        if let Some(&id) = self.drained.iter().next() {
            consider((self.last_event, id), &mut best);
        }
        if let Some(&(v_bits, id)) = self.sharing.iter().next() {
            let v_finish = f64::from_bits(v_bits);
            if v_finish <= self.vtime {
                consider((self.last_event, id), &mut best);
            } else {
                let secs = (v_finish - self.vtime) / self.water;
                if secs.is_finite() {
                    consider((self.last_event + ceil_micros(secs), id), &mut best);
                }
            }
        }
        if let Some(&(f_bits, id)) = self.capped.iter().next() {
            let finish_secs = f64::from_bits(f_bits);
            if finish_secs.is_finite() {
                let t = SimTime::from_micros((finish_secs * 1_000_000.0).ceil() as u64)
                    .max(self.last_event);
                consider((t, id), &mut best);
            }
        }
        best
    }

    /// [`Self::peek_completion`] after advancing the model to `now`.
    ///
    /// Retained for callers that drive the link directly; the engine's
    /// reschedulers use the pure peek instead.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, FlowId)> {
        self.advance(now);
        self.peek_completion()
    }

    /// Remaining bytes for a flow, if it is active.
    pub fn remaining_bytes(&self, id: FlowId) -> Option<f64> {
        let flow = self.flows.get(&id)?;
        Some(match flow.regime {
            Regime::Drained => 0.0,
            Regime::Sharing { v_finish } => (v_finish - self.vtime).max(0.0),
            Regime::Capped {
                r_ref, t_ref_secs, ..
            } => (r_ref - flow.rate_cap * (self.last_event.as_secs_f64() - t_ref_secs)).max(0.0),
        })
    }

    /// The rate currently allocated to a flow in bytes/s, if it is active.
    pub fn current_rate(&self, id: FlowId) -> Option<Bandwidth> {
        let flow = self.flows.get(&id)?;
        Some(match flow.regime {
            Regime::Drained => 0.0,
            Regime::Sharing { .. } => self.water,
            Regime::Capped { .. } => flow.rate_cap,
        })
    }

    /// Removes the cap-index bookkeeping for a departing flow.
    fn detach_cap(&mut self, flow: &Flow, id: FlowId, was_sharing: bool) {
        if flow.rate_cap.is_finite() {
            self.caps.remove(flow.rate_cap);
            let entry = (flow.rate_cap.to_bits(), id);
            if was_sharing {
                self.sharing_by_cap.remove(&entry);
            } else {
                self.capped_by_cap.remove(&entry);
            }
        } else {
            self.inf_count -= 1;
        }
    }

    /// Moves flows that already finished (as of the current `vtime` /
    /// `last_event`) into the drained state, releasing their share.  This is
    /// the lazy analogue of progressive filling's `remaining > 0` filter and
    /// runs at the same points (flow add/remove), so rates match the naive
    /// model between events.
    fn sweep_completed(&mut self) {
        let now_secs = self.last_event.as_secs_f64();
        while let Some(&(v_bits, id)) = self.sharing.iter().next() {
            let v_finish = f64::from_bits(v_bits);
            if v_finish > self.vtime {
                break;
            }
            self.sharing.remove(&(v_bits, id));
            let flow = self.flows.get(&id).expect("indexed flow exists").clone();
            self.detach_cap(&flow, id, /*was_sharing=*/ true);
            let over = v_finish - self.vtime;
            if over < 0.0 {
                self.bytes_transferred += over;
            }
            self.flows.get_mut(&id).expect("flow exists").regime = Regime::Drained;
            self.drained.insert(id);
        }
        while let Some(&(f_bits, id)) = self.capped.iter().next() {
            let finish_secs = f64::from_bits(f_bits);
            if finish_secs > now_secs {
                break;
            }
            self.capped.remove(&(f_bits, id));
            let flow = self.flows.get(&id).expect("indexed flow exists").clone();
            self.detach_cap(&flow, id, /*was_sharing=*/ false);
            if let Regime::Capped {
                r_ref, t_ref_secs, ..
            } = flow.regime
            {
                let over = r_ref - flow.rate_cap * (now_secs - t_ref_secs);
                if over < 0.0 {
                    self.bytes_transferred += over;
                }
            }
            self.flows.get_mut(&id).expect("flow exists").regime = Regime::Drained;
            self.drained.insert(id);
        }
    }

    /// Recomputes the water level after a structural change and flips flows
    /// whose regime changed.  O(log n) plus O(log n) per flipped flow.
    fn rebalance(&mut self) {
        let active = self.caps.len() + self.inf_count;
        if active == 0 {
            self.water = f64::INFINITY;
            self.agg_rate = 0.0;
            return;
        }
        let wl = self.caps.water_level(self.capacity, active);
        self.water = wl.level;
        self.agg_rate = if wl.saturated_count >= active {
            wl.saturated_sum
        } else {
            wl.saturated_sum + wl.level * (active - wl.saturated_count) as f64
        };
        let now_secs = self.last_event.as_secs_f64();

        // Capped flows whose cap rose above the (lowered) water level go
        // back to sharing.
        let unfreeze_from = match wl.threshold_bits {
            Some(bits) => Bound::Excluded((bits, FlowId(u64::MAX))),
            None => Bound::Unbounded,
        };
        let to_share: Vec<(u64, FlowId)> = self
            .capped_by_cap
            .range((unfreeze_from, Bound::Unbounded))
            .copied()
            .collect();
        for (cap_bits, id) in to_share {
            self.capped_by_cap.remove(&(cap_bits, id));
            let flow = self.flows.get_mut(&id).expect("indexed flow exists");
            let Regime::Capped {
                r_ref,
                t_ref_secs,
                finish_secs,
            } = flow.regime
            else {
                unreachable!("capped index points at a non-capped flow");
            };
            let remaining = r_ref - flow.rate_cap * (now_secs - t_ref_secs);
            let v_finish = self.vtime + remaining;
            flow.regime = Regime::Sharing { v_finish };
            self.capped.remove(&(finish_secs.to_bits(), id));
            self.sharing.insert((v_finish.to_bits(), id));
            self.sharing_by_cap.insert((cap_bits, id));
        }

        // Sharing flows whose cap sank below the (raised) water level are
        // frozen at their cap.
        if let Some(bits) = wl.threshold_bits {
            let to_freeze: Vec<(u64, FlowId)> = self
                .sharing_by_cap
                .range((Bound::Unbounded, Bound::Included((bits, FlowId(u64::MAX)))))
                .copied()
                .collect();
            for (cap_bits, id) in to_freeze {
                self.sharing_by_cap.remove(&(cap_bits, id));
                let flow = self.flows.get_mut(&id).expect("indexed flow exists");
                let Regime::Sharing { v_finish } = flow.regime else {
                    unreachable!("sharing index points at a non-sharing flow");
                };
                let r_ref = v_finish - self.vtime;
                let finish_secs = now_secs + r_ref / flow.rate_cap;
                flow.regime = Regime::Capped {
                    r_ref,
                    t_ref_secs: now_secs,
                    finish_secs,
                };
                self.sharing.remove(&(v_finish.to_bits(), id));
                self.capped.insert((finish_secs.to_bits(), id));
                self.capped_by_cap.insert((cap_bits, id));
            }
        }
    }
}

/// Rounds a span of seconds *up* to the clock's microsecond resolution so
/// that advancing to the reported completion time always drains the flow
/// completely; rounding to nearest could leave a sliver of bytes behind on
/// very fast links.
fn ceil_micros(secs: f64) -> SimDuration {
    SimDuration::from_micros((secs * 1_000_000.0).ceil().max(0.0) as u64)
}

// ---------------------------------------------------------------------
// The retained naive reference model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct NaiveFlow {
    remaining_bytes: f64,
    rate_cap: Bandwidth,
    current_rate: Bandwidth,
}

/// The pre-optimization progressive-filling fluid link, retained verbatim
/// as the executable specification of max–min fairness.
///
/// Every operation is an O(n)–O(n²) scan whose correctness is self-evident;
/// the randomized property tests assert that [`FluidLink`]'s virtual-time
/// core produces the same rates, completion times and completion order, and
/// the scaling benches in `crates/bench` measure the speedup against it.
/// Do not use it outside tests and benches.
#[derive(Debug, Clone)]
pub struct NaiveFluidLink {
    capacity: Bandwidth,
    flows: BTreeMap<FlowId, NaiveFlow>,
    last_advance: SimTime,
    bytes_transferred: f64,
}

impl NaiveFluidLink {
    /// Creates a link with the given capacity in bytes per second.
    pub fn new(capacity: Bandwidth) -> Self {
        assert!(capacity > 0.0, "link capacity must be positive");
        NaiveFluidLink {
            capacity,
            flows: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            bytes_transferred: 0.0,
        }
    }

    /// Total bytes drained through the link since construction.
    pub fn bytes_transferred(&self) -> f64 {
        self.bytes_transferred
    }

    /// Current aggregate throughput in bytes per second.
    pub fn utilization_bytes_per_sec(&self) -> f64 {
        self.flows.values().map(|f| f.current_rate).sum()
    }

    /// Changes the link's capacity; see [`FluidLink::set_capacity`].
    pub fn set_capacity(&mut self, capacity: Bandwidth, now: SimTime) {
        assert!(capacity > 0.0, "link capacity must be positive");
        self.advance(now);
        self.capacity = capacity;
        self.reallocate();
    }

    /// Starts a new transfer; see [`FluidLink::start_flow`].
    pub fn start_flow(&mut self, id: FlowId, bytes: f64, rate_cap: Bandwidth, now: SimTime) {
        assert!(bytes >= 0.0, "flow size must be non-negative");
        self.advance(now);
        let previous = self.flows.insert(
            id,
            NaiveFlow {
                remaining_bytes: bytes,
                rate_cap: rate_cap.max(0.0),
                current_rate: 0.0,
            },
        );
        assert!(previous.is_none(), "flow {id:?} is already active");
        self.reallocate();
    }

    /// Removes a flow; see [`FluidLink::finish_flow`].
    pub fn finish_flow(&mut self, id: FlowId, now: SimTime) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        self.reallocate();
        Some(flow.remaining_bytes)
    }

    /// Changes the rate cap of an active flow; see [`FluidLink::set_rate_cap`].
    pub fn set_rate_cap(&mut self, id: FlowId, rate_cap: Bandwidth, now: SimTime) {
        self.advance(now);
        if let Some(flow) = self.flows.get_mut(&id) {
            flow.rate_cap = rate_cap.max(0.0);
            self.reallocate();
        }
    }

    /// Advances the fluid model to `now`, draining every flow individually.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let elapsed = (now - self.last_advance).as_secs_f64();
        for flow in self.flows.values_mut() {
            let drained = (flow.current_rate * elapsed).min(flow.remaining_bytes);
            flow.remaining_bytes -= drained;
            self.bytes_transferred += drained;
        }
        self.last_advance = now;
    }

    /// Returns the next completion by scanning every flow.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, FlowId)> {
        self.advance(now);
        let mut best: Option<(SimDuration, FlowId)> = None;
        for (&id, flow) in &self.flows {
            if flow.remaining_bytes <= 0.0 {
                let candidate = (SimDuration::ZERO, id);
                best = Some(match best {
                    Some(b) if b <= candidate => b,
                    _ => candidate,
                });
                continue;
            }
            if flow.current_rate <= 0.0 {
                continue;
            }
            let secs = flow.remaining_bytes / flow.current_rate;
            let micros = (secs * 1_000_000.0).ceil().max(0.0) as u64;
            let candidate = (SimDuration::from_micros(micros), id);
            best = Some(match best {
                Some(b) if b <= candidate => b,
                _ => candidate,
            });
        }
        best.map(|(d, id)| (self.last_advance + d, id))
    }

    /// Remaining bytes for a flow, if it is active.
    pub fn remaining_bytes(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining_bytes)
    }

    /// The rate currently allocated to a flow in bytes/s, if it is active.
    pub fn current_rate(&self, id: FlowId) -> Option<Bandwidth> {
        self.flows.get(&id).map(|f| f.current_rate)
    }

    /// Recomputes the max–min fair allocation (progressive filling).
    fn reallocate(&mut self) {
        let mut unassigned: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining_bytes > 0.0)
            .map(|(&id, _)| id)
            .collect();
        unassigned.sort_unstable();

        for flow in self.flows.values_mut() {
            flow.current_rate = 0.0;
        }

        let mut capacity_left = self.capacity;
        while !unassigned.is_empty() && capacity_left > f64::EPSILON {
            let share = capacity_left / unassigned.len() as f64;
            let mut frozen = Vec::new();
            for &id in &unassigned {
                let cap = self.flows[&id].rate_cap;
                if cap <= share {
                    frozen.push(id);
                }
            }
            if frozen.is_empty() {
                for id in &unassigned {
                    self.flows.get_mut(id).expect("flow exists").current_rate = share;
                }
                capacity_left = 0.0;
                unassigned.clear();
            } else {
                for id in &frozen {
                    let cap = self.flows[id].rate_cap;
                    self.flows.get_mut(id).expect("flow exists").current_rate = cap;
                    capacity_left -= cap;
                }
                unassigned.retain(|id| !frozen.contains(id));
                capacity_left = capacity_left.max(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_simcore::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn single_flow_uses_full_capacity() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 2_000_000.0, f64::INFINITY, t(0.0));
        let (done, id) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(id, FlowId(1));
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_split_capacity_equally() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(2), 1_000_000.0, f64::INFINITY, t(0.0));
        assert_eq!(link.current_rate(FlowId(1)), Some(500_000.0));
        assert_eq!(link.current_rate(FlowId(2)), Some(500_000.0));
        let (done, _) = link.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_leaves_capacity_to_others() {
        let mut link = FluidLink::new(1_000_000.0);
        // A slow client capped at 100 KB/s and a fast one uncapped.
        link.start_flow(FlowId(1), 100_000.0, 100_000.0, t(0.0));
        link.start_flow(FlowId(2), 900_000.0, f64::INFINITY, t(0.0));
        assert!((link.current_rate(FlowId(1)).unwrap() - 100_000.0).abs() < 1e-6);
        assert!((link.current_rate(FlowId(2)).unwrap() - 900_000.0).abs() < 1e-6);
        // Both finish at t = 1s.
        let (done, _) = link.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_is_work_conserving() {
        let mut link = FluidLink::new(1_000_000.0);
        for i in 0..10 {
            link.start_flow(FlowId(i), 1_000_000.0, 500_000.0, t(0.0));
        }
        let total: f64 = (0..10).map(|i| link.current_rate(FlowId(i)).unwrap()).sum();
        // 10 flows capped at 0.5 MB/s could use 5 MB/s but the link only has
        // 1 MB/s: the allocation must fill the link exactly.
        assert!((total - 1_000_000.0).abs() < 1e-6);
        assert!((link.utilization_bytes_per_sec() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn departure_speeds_up_remaining_flows() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 500_000.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(2), 2_000_000.0, f64::INFINITY, t(0.0));
        // Flow 1 completes at t=1s (500KB at 500KB/s).
        let (done1, id1) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(id1, FlowId(1));
        assert!((done1.as_secs_f64() - 1.0).abs() < 1e-9);
        let leftover = link.finish_flow(FlowId(1), done1).unwrap();
        assert!(leftover.abs() < 1e-6);
        // Flow 2 transferred 500KB so far, 1.5MB left now at full rate.
        assert!((link.remaining_bytes(FlowId(2)).unwrap() - 1_500_000.0).abs() < 1.0);
        let (done2, id2) = link.next_completion(done1).unwrap();
        assert_eq!(id2, FlowId(2));
        assert!((done2.as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_slows_existing_flow() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, f64::INFINITY, t(0.0));
        // Half way through, a second flow arrives.
        link.start_flow(FlowId(2), 1_000_000.0, f64::INFINITY, t(0.5));
        assert!((link.remaining_bytes(FlowId(1)).unwrap() - 500_000.0).abs() < 1.0);
        let (done1, id1) = link.next_completion(t(0.5)).unwrap();
        assert_eq!(id1, FlowId(1));
        // 500KB left at 500KB/s -> finishes at t = 1.5s.
        assert!((done1.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut link = FluidLink::new(1_000.0);
        link.start_flow(FlowId(7), 0.0, f64::INFINITY, t(1.0));
        let (done, id) = link.next_completion(t(1.0)).unwrap();
        assert_eq!(id, FlowId(7));
        assert_eq!(done, t(1.0));
    }

    #[test]
    fn bytes_transferred_accumulates() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 250_000.0, f64::INFINITY, t(0.0));
        link.advance(t(10.0));
        link.finish_flow(FlowId(1), t(10.0));
        assert!((link.bytes_transferred() - 250_000.0).abs() < 1e-6);
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn next_completion_none_when_empty() {
        let mut link = FluidLink::new(1_000.0);
        assert!(link.next_completion(t(0.0)).is_none());
        assert!(link.peek_completion().is_none());
    }

    #[test]
    fn advance_is_monotonic() {
        let mut link = FluidLink::new(1_000.0);
        link.start_flow(FlowId(1), 10_000.0, f64::INFINITY, t(5.0));
        // Going "backwards" in time is a no-op, not a panic.
        link.advance(t(1.0));
        assert!((link.remaining_bytes(FlowId(1)).unwrap() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_flow_id_panics() {
        let mut link = FluidLink::new(1_000.0);
        link.start_flow(FlowId(1), 10.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(1), 10.0, f64::INFINITY, t(0.0));
    }

    #[test]
    fn utilization_reports_aggregate_rate() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, 200_000.0, t(0.0));
        assert!((link.utilization_bytes_per_sec() - 200_000.0).abs() < 1e-6);
        link.start_flow(FlowId(2), 1_000_000.0, f64::INFINITY, t(0.0));
        assert!((link.utilization_bytes_per_sec() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn completion_survives_many_flows() {
        let mut link = FluidLink::new(10_000_000.0);
        let n = 200;
        for i in 0..n {
            link.start_flow(FlowId(i), 100_000.0, f64::INFINITY, t(0.0));
        }
        // All flows equal: each gets capacity/n, finishing together.
        let expect = 100_000.0 / (10_000_000.0 / n as f64);
        let (done, _) = link.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - expect).abs() < 1e-9);
        let _ = SimDuration::ZERO;
    }

    #[test]
    fn peek_is_pure_and_stable() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, f64::INFINITY, t(0.0));
        let first = link.peek_completion();
        // Peeking again (even "later" in caller time) gives the same answer
        // because nothing mutated the link.
        let second = link.peek_completion();
        assert_eq!(first, second);
        assert_eq!(first.unwrap().0, t(1.0));
    }

    #[test]
    fn raising_a_cap_speeds_up_the_flow() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 400_000.0, 100_000.0, t(0.0));
        assert_eq!(link.current_rate(FlowId(1)), Some(100_000.0));
        // After one second (100KB done) the window opens fully.
        link.set_rate_cap(FlowId(1), f64::INFINITY, t(1.0));
        assert_eq!(link.current_rate(FlowId(1)), Some(1_000_000.0));
        let (done, _) = link.peek_completion().unwrap();
        // 300KB left at 1MB/s.
        assert!((done.as_secs_f64() - 1.3).abs() < 1e-9);
    }

    #[test]
    fn lowering_a_cap_slows_the_flow() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 500_000.0, f64::INFINITY, t(0.0));
        link.set_rate_cap(FlowId(1), 50_000.0, t(0.0));
        assert_eq!(link.current_rate(FlowId(1)), Some(50_000.0));
        let (done, _) = link.peek_completion().unwrap();
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_cap_change_still_releases_a_drained_flows_share() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(2), 10_000_000.0, 500_000.0, t(0.0));
        // Both run at 500 kB/s; flow 1 truly finishes at t=2 but is left in
        // the link (the caller hasn't harvested the completion yet).
        link.advance(t(3.0));
        // A no-op cap change must still exclude the drained flow from the
        // allocation, exactly like the naive model's unconditional
        // reallocate — a stale aggregate here would accrue phantom bytes.
        link.set_rate_cap(FlowId(2), 500_000.0, t(3.0));
        assert!((link.utilization_bytes_per_sec() - 500_000.0).abs() < 1e-6);
        link.advance(t(4.0));
        link.finish_flow(FlowId(1), t(4.0));
        let leftover = link.finish_flow(FlowId(2), t(4.0)).unwrap();
        // Flow 2 moved 500 kB/s × 4 s = 2 MB; flow 1 moved its full 1 MB.
        assert!((leftover - 8_000_000.0).abs() < 1.0);
        assert!((link.bytes_transferred() - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    fn water_level_flips_follow_arrivals_and_departures() {
        let mut link = FluidLink::new(1_000_000.0);
        // A 300 KB/s-capped flow alone: capped (level would be 1 MB/s).
        link.start_flow(FlowId(1), 10_000_000.0, 300_000.0, t(0.0));
        assert_eq!(link.current_rate(FlowId(1)), Some(300_000.0));
        // Three more uncapped flows: level drops to ~233 KB/s, so flow 1 is
        // no longer capped and shares equally.
        for i in 2..=4 {
            link.start_flow(FlowId(i), 10_000_000.0, f64::INFINITY, t(0.0));
        }
        assert!((link.current_rate(FlowId(1)).unwrap() - 250_000.0).abs() < 1e-6);
        // Remove them again: flow 1 goes back to its cap.
        for i in 2..=4 {
            link.finish_flow(FlowId(i), t(0.0));
        }
        assert_eq!(link.current_rate(FlowId(1)), Some(300_000.0));
    }

    #[test]
    fn shrinking_capacity_slows_sharing_flows() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(2), 1_000_000.0, f64::INFINITY, t(0.0));
        // Half a second in, the link halves: 750 KB left per flow at
        // 250 KB/s each.
        link.set_capacity(500_000.0, t(0.5));
        assert_eq!(link.current_rate(FlowId(1)), Some(250_000.0));
        let (done, _) = link.peek_completion().unwrap();
        assert!((done.as_secs_f64() - 3.5).abs() < 1e-9, "{done}");
    }

    #[test]
    fn growing_capacity_freezes_capped_flows() {
        let mut link = FluidLink::new(400_000.0);
        // Both flows share 200 KB/s each, below their 300 KB/s caps.
        link.start_flow(FlowId(1), 600_000.0, 300_000.0, t(0.0));
        link.start_flow(FlowId(2), 600_000.0, 300_000.0, t(0.0));
        assert_eq!(link.current_rate(FlowId(1)), Some(200_000.0));
        // Doubling the capacity lifts the water level above the caps: both
        // flows flip into the capped regime at 300 KB/s.
        link.set_capacity(800_000.0, t(1.0));
        assert_eq!(link.current_rate(FlowId(1)), Some(300_000.0));
        // 400 KB left each at 300 KB/s.
        let (done, _) = link.peek_completion().unwrap();
        assert!(
            (done.as_secs_f64() - (1.0 + 400.0 / 300.0)).abs() < 1e-5,
            "{done}"
        );
    }

    #[test]
    fn capacity_change_matches_naive_model() {
        let mut fast = FluidLink::new(1_000_000.0);
        let mut naive = NaiveFluidLink::new(1_000_000.0);
        for i in 0..8u64 {
            let cap = if i % 2 == 0 {
                f64::INFINITY
            } else {
                150_000.0 + 40_000.0 * i as f64
            };
            fast.start_flow(
                FlowId(i),
                500_000.0 + 100_000.0 * i as f64,
                cap,
                t(0.1 * i as f64),
            );
            naive.start_flow(
                FlowId(i),
                500_000.0 + 100_000.0 * i as f64,
                cap,
                t(0.1 * i as f64),
            );
        }
        for (step, capacity) in [(1.0, 400_000.0), (2.0, 2_000_000.0), (3.0, 700_000.0)] {
            fast.set_capacity(capacity, t(step));
            naive.set_capacity(capacity, t(step));
            for i in 0..8u64 {
                let (a, b) = (
                    fast.remaining_bytes(FlowId(i)),
                    naive.remaining_bytes(FlowId(i)),
                );
                match (a, b) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1.0, "flow {i}: {a} vs {b}"),
                    (a, b) => assert_eq!(a.map(|_| ()), b.map(|_| ())),
                }
            }
        }
        // Drain both and compare the completion order.
        let mut now = t(3.0);
        while let Some((tf, idf)) = fast.next_completion(now) {
            let (tn, idn) = naive.next_completion(now).expect("naive still active");
            assert_eq!(idf, idn);
            assert!(
                (tf.as_secs_f64() - tn.as_secs_f64()).abs() < 1e-3,
                "{tf} vs {tn}"
            );
            now = now.max(tf);
            fast.finish_flow(idf, now);
            naive.finish_flow(idn, now);
        }
        assert!(naive.next_completion(now).is_none());
    }

    #[test]
    fn naive_link_still_behaves() {
        let mut link = NaiveFluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 500_000.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(2), 500_000.0, f64::INFINITY, t(0.0));
        let (done, id) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(id, FlowId(1));
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-9);
    }
}
