//! Max–min fair fluid model of a shared bottleneck link.
//!
//! The Large Object stage of an MFC exists to answer one question: at what
//! number of concurrent large transfers does the *server's outbound access
//! link* start inflating response times (paper §2.2.2)?  To reproduce that
//! we need a model of many simultaneous response transfers sharing one link,
//! where each flow may additionally be capped below its fair share by the
//! client's own downlink or by TCP window limits.
//!
//! [`FluidLink`] implements the classic progressive-filling (max–min
//! fairness) allocation: capacity is divided equally among unsaturated
//! flows, flows capped below the equal share keep their cap, and the excess
//! is redistributed.  The link is advanced explicitly by the caller's event
//! loop: [`FluidLink::next_completion`] reports when the earliest active
//! flow would finish if nothing changes, and [`FluidLink::advance`] drains
//! the appropriate number of bytes from every flow up to a given time.

use std::collections::BTreeMap;

use mfc_simcore::{SimDuration, SimTime};

use crate::Bandwidth;

/// Identifies one flow (one HTTP response transfer) on a [`FluidLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct Flow {
    remaining_bytes: f64,
    /// Per-flow rate ceiling in bytes/s (client downlink, TCP window, …).
    rate_cap: Bandwidth,
    /// Rate assigned by the most recent allocation pass.
    current_rate: Bandwidth,
}

/// A shared bottleneck link with max–min fair bandwidth allocation.
///
/// # Examples
///
/// ```
/// use mfc_simcore::SimTime;
/// use mfc_simnet::{FluidLink, FlowId, mbps};
///
/// // A 8 Mbit/s access link (1 MB/s) shared by two transfers.
/// let mut link = FluidLink::new(mbps(8.0));
/// let t0 = SimTime::ZERO;
/// link.start_flow(FlowId(1), 500_000.0, f64::INFINITY, t0);
/// link.start_flow(FlowId(2), 500_000.0, f64::INFINITY, t0);
///
/// // Each flow gets 0.5 MB/s, so both finish after one second.
/// let (t, id) = link.next_completion(t0).unwrap();
/// assert_eq!((t - t0).as_secs_f64(), 1.0);
/// assert_eq!(id, FlowId(1));
/// ```
#[derive(Debug, Clone)]
pub struct FluidLink {
    capacity: Bandwidth,
    // A BTreeMap, not a HashMap: rate sums and per-flow drains accumulate
    // floats in iteration order, and `HashMap`'s per-process random order
    // makes the last ulp of utilization numbers differ between runs of the
    // same seed.  Ordered iteration keeps every artifact byte-stable (and
    // drops sip-hashing from the per-event hot path as a bonus).
    flows: BTreeMap<FlowId, Flow>,
    last_advance: SimTime,
    bytes_transferred: f64,
}

impl FluidLink {
    /// Creates a link with the given capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn new(capacity: Bandwidth) -> Self {
        assert!(capacity > 0.0, "link capacity must be positive");
        FluidLink {
            capacity,
            flows: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            bytes_transferred: 0.0,
        }
    }

    /// The configured capacity in bytes per second.
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes drained through the link since construction.
    pub fn bytes_transferred(&self) -> f64 {
        self.bytes_transferred
    }

    /// Current aggregate throughput in bytes per second.
    pub fn utilization_bytes_per_sec(&self) -> f64 {
        self.flows.values().map(|f| f.current_rate).sum()
    }

    /// Starts a new transfer of `bytes` bytes at time `now`, individually
    /// capped at `rate_cap` bytes/s.
    ///
    /// The caller must have advanced the link to `now` (this method does it
    /// defensively).  Adding a flow triggers a re-allocation of rates.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is already active or `bytes` is negative.
    pub fn start_flow(&mut self, id: FlowId, bytes: f64, rate_cap: Bandwidth, now: SimTime) {
        assert!(bytes >= 0.0, "flow size must be non-negative");
        self.advance(now);
        let previous = self.flows.insert(
            id,
            Flow {
                remaining_bytes: bytes,
                rate_cap: rate_cap.max(0.0),
                current_rate: 0.0,
            },
        );
        assert!(previous.is_none(), "flow {id:?} is already active");
        self.reallocate();
    }

    /// Removes a flow (typically after [`Self::next_completion`] reported it
    /// finished, or because the request timed out).  Returns the number of
    /// bytes that had not yet been transferred.
    pub fn finish_flow(&mut self, id: FlowId, now: SimTime) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        self.reallocate();
        Some(flow.remaining_bytes)
    }

    /// Advances the fluid model to `now`, draining bytes from every active
    /// flow at its currently allocated rate.
    ///
    /// Flows whose remaining bytes reach zero stay in the link (at zero
    /// remaining) until [`Self::finish_flow`] removes them, so completion
    /// bookkeeping stays with the caller's event loop.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let elapsed = (now - self.last_advance).as_secs_f64();
        for flow in self.flows.values_mut() {
            let drained = (flow.current_rate * elapsed).min(flow.remaining_bytes);
            flow.remaining_bytes -= drained;
            self.bytes_transferred += drained;
        }
        self.last_advance = now;
    }

    /// Returns the time and id of the flow that will complete first if no
    /// flows are added or removed, or `None` when no active flow has bytes
    /// remaining.
    ///
    /// Ties are broken by the smaller [`FlowId`] so results are
    /// deterministic.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, FlowId)> {
        self.advance(now);
        let mut best: Option<(SimDuration, FlowId)> = None;
        for (&id, flow) in &self.flows {
            if flow.remaining_bytes <= 0.0 {
                // Already drained: completes "now".
                let candidate = (SimDuration::ZERO, id);
                best = Some(match best {
                    Some(b) if b <= candidate => b,
                    _ => candidate,
                });
                continue;
            }
            if flow.current_rate <= 0.0 {
                continue;
            }
            let secs = flow.remaining_bytes / flow.current_rate;
            // Round *up* to the clock's microsecond resolution so that
            // advancing to the reported completion time always drains the
            // flow completely; rounding to nearest could leave a sliver of
            // bytes behind on very fast links.
            let micros = (secs * 1_000_000.0).ceil().max(0.0) as u64;
            let candidate = (SimDuration::from_micros(micros), id);
            best = Some(match best {
                Some(b) if b <= candidate => b,
                _ => candidate,
            });
        }
        best.map(|(d, id)| (self.last_advance + d, id))
    }

    /// Remaining bytes for a flow, if it is active.
    pub fn remaining_bytes(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining_bytes)
    }

    /// The rate currently allocated to a flow in bytes/s, if it is active.
    pub fn current_rate(&self, id: FlowId) -> Option<Bandwidth> {
        self.flows.get(&id).map(|f| f.current_rate)
    }

    /// Recomputes the max–min fair allocation (progressive filling).
    fn reallocate(&mut self) {
        let mut unassigned: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining_bytes > 0.0)
            .map(|(&id, _)| id)
            .collect();
        // Deterministic iteration order.
        unassigned.sort_unstable();

        // Flows with no bytes left get rate zero.
        for flow in self.flows.values_mut() {
            flow.current_rate = 0.0;
        }

        let mut capacity_left = self.capacity;
        // Progressive filling: repeatedly give every unassigned flow an equal
        // share; flows whose cap is below the share are frozen at their cap
        // and the loop repeats with the leftover capacity.
        while !unassigned.is_empty() && capacity_left > f64::EPSILON {
            let share = capacity_left / unassigned.len() as f64;
            let mut frozen = Vec::new();
            for &id in &unassigned {
                let cap = self.flows[&id].rate_cap;
                if cap <= share {
                    frozen.push(id);
                }
            }
            if frozen.is_empty() {
                // Everyone can use the equal share.
                for id in &unassigned {
                    self.flows.get_mut(id).expect("flow exists").current_rate = share;
                }
                capacity_left = 0.0;
                unassigned.clear();
            } else {
                for id in &frozen {
                    let cap = self.flows[id].rate_cap;
                    self.flows.get_mut(id).expect("flow exists").current_rate = cap;
                    capacity_left -= cap;
                }
                unassigned.retain(|id| !frozen.contains(id));
                capacity_left = capacity_left.max(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_simcore::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn single_flow_uses_full_capacity() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 2_000_000.0, f64::INFINITY, t(0.0));
        let (done, id) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(id, FlowId(1));
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_split_capacity_equally() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(2), 1_000_000.0, f64::INFINITY, t(0.0));
        assert_eq!(link.current_rate(FlowId(1)), Some(500_000.0));
        assert_eq!(link.current_rate(FlowId(2)), Some(500_000.0));
        let (done, _) = link.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_leaves_capacity_to_others() {
        let mut link = FluidLink::new(1_000_000.0);
        // A slow client capped at 100 KB/s and a fast one uncapped.
        link.start_flow(FlowId(1), 100_000.0, 100_000.0, t(0.0));
        link.start_flow(FlowId(2), 900_000.0, f64::INFINITY, t(0.0));
        assert!((link.current_rate(FlowId(1)).unwrap() - 100_000.0).abs() < 1e-6);
        assert!((link.current_rate(FlowId(2)).unwrap() - 900_000.0).abs() < 1e-6);
        // Both finish at t = 1s.
        let (done, _) = link.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_is_work_conserving() {
        let mut link = FluidLink::new(1_000_000.0);
        for i in 0..10 {
            link.start_flow(FlowId(i), 1_000_000.0, 500_000.0, t(0.0));
        }
        let total: f64 = (0..10).map(|i| link.current_rate(FlowId(i)).unwrap()).sum();
        // 10 flows capped at 0.5 MB/s could use 5 MB/s but the link only has
        // 1 MB/s: the allocation must fill the link exactly.
        assert!((total - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn departure_speeds_up_remaining_flows() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 500_000.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(2), 2_000_000.0, f64::INFINITY, t(0.0));
        // Flow 1 completes at t=1s (500KB at 500KB/s).
        let (done1, id1) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(id1, FlowId(1));
        assert!((done1.as_secs_f64() - 1.0).abs() < 1e-9);
        let leftover = link.finish_flow(FlowId(1), done1).unwrap();
        assert!(leftover.abs() < 1e-6);
        // Flow 2 transferred 500KB so far, 1.5MB left now at full rate.
        assert!((link.remaining_bytes(FlowId(2)).unwrap() - 1_500_000.0).abs() < 1.0);
        let (done2, id2) = link.next_completion(done1).unwrap();
        assert_eq!(id2, FlowId(2));
        assert!((done2.as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_slows_existing_flow() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, f64::INFINITY, t(0.0));
        // Half way through, a second flow arrives.
        link.start_flow(FlowId(2), 1_000_000.0, f64::INFINITY, t(0.5));
        assert!((link.remaining_bytes(FlowId(1)).unwrap() - 500_000.0).abs() < 1.0);
        let (done1, id1) = link.next_completion(t(0.5)).unwrap();
        assert_eq!(id1, FlowId(1));
        // 500KB left at 500KB/s -> finishes at t = 1.5s.
        assert!((done1.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut link = FluidLink::new(1_000.0);
        link.start_flow(FlowId(7), 0.0, f64::INFINITY, t(1.0));
        let (done, id) = link.next_completion(t(1.0)).unwrap();
        assert_eq!(id, FlowId(7));
        assert_eq!(done, t(1.0));
    }

    #[test]
    fn bytes_transferred_accumulates() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 250_000.0, f64::INFINITY, t(0.0));
        link.advance(t(10.0));
        assert!((link.bytes_transferred() - 250_000.0).abs() < 1e-6);
        link.finish_flow(FlowId(1), t(10.0));
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn next_completion_none_when_empty() {
        let mut link = FluidLink::new(1_000.0);
        assert!(link.next_completion(t(0.0)).is_none());
    }

    #[test]
    fn advance_is_monotonic() {
        let mut link = FluidLink::new(1_000.0);
        link.start_flow(FlowId(1), 10_000.0, f64::INFINITY, t(5.0));
        // Going "backwards" in time is a no-op, not a panic.
        link.advance(t(1.0));
        assert!((link.remaining_bytes(FlowId(1)).unwrap() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_flow_id_panics() {
        let mut link = FluidLink::new(1_000.0);
        link.start_flow(FlowId(1), 10.0, f64::INFINITY, t(0.0));
        link.start_flow(FlowId(1), 10.0, f64::INFINITY, t(0.0));
    }

    #[test]
    fn utilization_reports_aggregate_rate() {
        let mut link = FluidLink::new(1_000_000.0);
        link.start_flow(FlowId(1), 1_000_000.0, 200_000.0, t(0.0));
        assert!((link.utilization_bytes_per_sec() - 200_000.0).abs() < 1e-6);
        link.start_flow(FlowId(2), 1_000_000.0, f64::INFINITY, t(0.0));
        assert!((link.utilization_bytes_per_sec() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn completion_survives_many_flows() {
        let mut link = FluidLink::new(10_000_000.0);
        let n = 200;
        for i in 0..n {
            link.start_flow(FlowId(i), 100_000.0, f64::INFINITY, t(0.0));
        }
        // All flows equal: each gets capacity/n, finishing together.
        let expect = 100_000.0 / (10_000_000.0 / n as f64);
        let (done, _) = link.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - expect).abs() < 1e-9);
        let _ = SimDuration::ZERO;
    }
}
