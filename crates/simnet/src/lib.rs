//! Flow-level wide-area network model for the MFC reproduction.
//!
//! The paper runs its Mini-Flash Crowds from ~50–85 PlanetLab hosts spread
//! across the Internet against remote production web servers.  What matters
//! to the MFC algorithm is not packet-level fidelity but four network
//! effects, all of which this crate models:
//!
//! 1. **Heterogeneous round-trip times** between coordinator ↔ client and
//!    client ↔ target, which the coordinator's synchronization scheduler
//!    compensates for ([`latency`]).
//! 2. **The target's access link** becoming the bottleneck when many large
//!    responses are in flight simultaneously — modelled as a max–min fair
//!    fluid link shared by all active flows ([`link`]).
//! 3. **TCP connection setup and slow start**, which determine when the
//!    first byte of the HTTP request reaches the server and how quickly a
//!    transfer can ramp up ([`tcp`]).
//! 4. **A lossy UDP control plane** between the coordinator and its clients,
//!    responsible for the "scheduled vs. received" gaps visible in Table 2
//!    of the paper ([`udp`]).
//!
//! The crate is deliberately independent of the web-server resource model
//! (`mfc-webserver`) and of the MFC logic (`mfc-core`); it only knows about
//! bytes, delays and flows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capset;
pub mod latency;
pub mod link;
pub mod tcp;
pub mod udp;

pub use capset::CapMultiset;
pub use latency::{ClientNetProfile, PopulationProfile, WideAreaModel};
pub use link::{FlowId, FluidLink, NaiveFluidLink};
pub use tcp::TcpModel;
pub use udp::ControlChannel;

/// Bytes-per-second bandwidth, stored as `f64` for fluid-model arithmetic.
pub type Bandwidth = f64;

/// Converts megabits per second into bytes per second.
///
/// # Examples
///
/// ```
/// assert_eq!(mfc_simnet::mbps(8.0), 1_000_000.0);
/// ```
pub fn mbps(megabits_per_second: f64) -> Bandwidth {
    megabits_per_second * 1_000_000.0 / 8.0
}

/// Converts kilobits per second into bytes per second.
///
/// # Examples
///
/// ```
/// assert_eq!(mfc_simnet::kbps(8.0), 1_000.0);
/// ```
pub fn kbps(kilobits_per_second: f64) -> Bandwidth {
    kilobits_per_second * 1_000.0 / 8.0
}
