//! Wide-area latency and client population model.
//!
//! The MFC clients in the paper are PlanetLab hosts: geographically diverse
//! machines whose round-trip times to a given target span roughly one order
//! of magnitude (tens to a couple of hundred milliseconds) and whose access
//! bandwidth varies from campus gigabit links to congested shared uplinks.
//! The coordinator compensates for the latency diversity when scheduling
//! requests; the residual *jitter* (the difference between the RTT measured
//! before the experiment and the RTT experienced when the scheduled command
//! and request actually travel) is what limits how tightly the crowd can be
//! synchronized — it is the source of the few-millisecond spread in Figure 3
//! and the sub-second spreads in Table 2.
//!
//! [`WideAreaModel`] generates a population of [`ClientNetProfile`]s from a
//! [`PopulationProfile`] and answers per-message delay queries with jitter.

use mfc_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::Bandwidth;

/// Network characteristics of one MFC client host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientNetProfile {
    /// Index of the client in the population (stable across runs).
    pub index: usize,
    /// Vantage group the client belongs to: clients of one group sit
    /// behind the same shared transit bottleneck and share a geographic
    /// neighbourhood (PlanetLab sites on one campus uplink).  Assigned
    /// round-robin (`index % vantage_groups`), matching
    /// `TopologySpec::group_of`.
    pub group: usize,
    /// Mean round-trip time between this client and the target server.
    pub rtt_target: SimDuration,
    /// Mean round-trip time between the coordinator and this client.
    pub rtt_coordinator: SimDuration,
    /// Downstream bandwidth of the client's access link in bytes/s.
    pub downlink: Bandwidth,
    /// Upstream bandwidth of the client's access link in bytes/s.
    pub uplink: Bandwidth,
    /// Standard deviation of per-message one-way latency jitter, as a
    /// fraction of the mean one-way delay.
    pub jitter_frac: f64,
}

impl ClientNetProfile {
    /// One-way delay to the target (half the RTT).
    pub fn one_way_target(&self) -> SimDuration {
        self.rtt_target.mul_f64(0.5)
    }

    /// One-way delay to the coordinator (half the RTT).
    pub fn one_way_coordinator(&self) -> SimDuration {
        self.rtt_coordinator.mul_f64(0.5)
    }
}

/// Distribution parameters for generating a client population.
///
/// The defaults approximate the PlanetLab population used in the paper:
/// RTTs to a US target mostly between 20 ms and 250 ms (log-normal-ish),
/// coordinator RTTs similar, university-grade access links of a few tens of
/// megabits per second, and a few percent of latency jitter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationProfile {
    /// Median client→target RTT.
    pub rtt_target_median: SimDuration,
    /// Sigma of the log-normal RTT distribution (in log-space).
    pub rtt_sigma: f64,
    /// Minimum RTT allowed after sampling.
    pub rtt_floor: SimDuration,
    /// Maximum RTT allowed after sampling.
    pub rtt_ceiling: SimDuration,
    /// Median client→coordinator RTT.
    pub rtt_coordinator_median: SimDuration,
    /// Median client downlink in bytes/s.
    pub downlink_median: Bandwidth,
    /// Sigma of the log-normal downlink distribution (log-space).
    pub downlink_sigma: f64,
    /// Uplink as a fraction of downlink.
    pub uplink_fraction: f64,
    /// Per-message jitter as a fraction of one-way delay.
    pub jitter_frac: f64,
    /// Number of vantage groups the clients cluster into (1 = the
    /// ungrouped population every pre-topology experiment uses).
    pub vantage_groups: usize,
    /// Multiplicative RTT skew across groups: group `g`'s RTTs are scaled
    /// by `1 + spread·(g − (G−1)/2)/G`, modelling geographic clustering
    /// (one group near the target, another far).  Zero keeps all groups
    /// statistically identical.
    pub group_rtt_spread: f64,
}

impl Default for PopulationProfile {
    fn default() -> Self {
        PopulationProfile {
            rtt_target_median: SimDuration::from_millis(80),
            rtt_sigma: 0.6,
            rtt_floor: SimDuration::from_millis(10),
            rtt_ceiling: SimDuration::from_millis(350),
            rtt_coordinator_median: SimDuration::from_millis(70),
            downlink_median: 4_000_000.0, // 32 Mbit/s
            downlink_sigma: 0.8,
            uplink_fraction: 0.5,
            jitter_frac: 0.04,
            vantage_groups: 1,
            group_rtt_spread: 0.0,
        }
    }
}

impl PopulationProfile {
    /// A population of clients close to the target (LAN-like), matching the
    /// controlled-lab validation setup of paper §3.2 where "clients [are]
    /// located on the same LAN as the server".
    pub fn lan() -> Self {
        PopulationProfile {
            rtt_target_median: SimDuration::from_millis(1),
            rtt_sigma: 0.2,
            rtt_floor: SimDuration::from_micros(200),
            rtt_ceiling: SimDuration::from_millis(3),
            rtt_coordinator_median: SimDuration::from_millis(1),
            downlink_median: 100_000_000.0, // gigabit-ish shared
            downlink_sigma: 0.1,
            uplink_fraction: 1.0,
            jitter_frac: 0.05,
            vantage_groups: 1,
            group_rtt_spread: 0.0,
        }
    }

    /// The PlanetLab-like wide-area population used for all remote
    /// experiments (the default).
    pub fn planetlab() -> Self {
        PopulationProfile::default()
    }

    /// The PlanetLab-like population clustered into `groups` vantage
    /// groups with a mild geographic RTT skew — the shape the simulation
    /// backend derives for a `TopologySpec` with one transit link per
    /// group (an explicitly grouped population matching the topology is
    /// respected as configured instead).
    pub fn grouped(groups: usize) -> Self {
        PopulationProfile {
            vantage_groups: groups.max(1),
            group_rtt_spread: 0.3,
            ..PopulationProfile::default()
        }
    }

    /// Clusters the population into `groups` vantage groups, keeping every
    /// other knob.
    pub fn with_vantage_groups(mut self, groups: usize) -> Self {
        self.vantage_groups = groups.max(1);
        self
    }
}

/// A generated wide-area client population plus jitter sampling.
#[derive(Debug, Clone)]
pub struct WideAreaModel {
    clients: Vec<ClientNetProfile>,
    rng: SimRng,
}

impl WideAreaModel {
    /// Generates `count` clients from `profile`, seeded by `rng`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mfc_simcore::SimRng;
    /// use mfc_simnet::{PopulationProfile, WideAreaModel};
    ///
    /// let rng = SimRng::seed_from(1);
    /// let wan = WideAreaModel::generate(&PopulationProfile::planetlab(), 65, &rng);
    /// assert_eq!(wan.clients().len(), 65);
    /// ```
    pub fn generate(profile: &PopulationProfile, count: usize, rng: &SimRng) -> Self {
        let mut gen_rng = rng.fork("wan-population");
        let mut clients = Vec::with_capacity(count);
        let mu_rtt = profile.rtt_target_median.as_secs_f64().max(1e-6).ln();
        let mu_coord = profile.rtt_coordinator_median.as_secs_f64().max(1e-6).ln();
        let mu_down = profile.downlink_median.max(1.0).ln();
        let groups = profile.vantage_groups.max(1);
        for index in 0..count {
            let group = index % groups;
            // Geographic clustering: each group's RTTs share a
            // deterministic multiplicative skew around the median.
            let centered = (group as f64 - (groups as f64 - 1.0) / 2.0) / groups as f64;
            let group_factor = (1.0 + profile.group_rtt_spread * centered).max(0.1);
            let rtt_target = SimDuration::from_secs_f64(
                (gen_rng.log_normal(mu_rtt, profile.rtt_sigma) * group_factor).clamp(
                    profile.rtt_floor.as_secs_f64(),
                    profile.rtt_ceiling.as_secs_f64(),
                ),
            );
            let rtt_coordinator =
                SimDuration::from_secs_f64(gen_rng.log_normal(mu_coord, profile.rtt_sigma).clamp(
                    profile.rtt_floor.as_secs_f64(),
                    profile.rtt_ceiling.as_secs_f64(),
                ));
            let downlink = gen_rng.log_normal(mu_down, profile.downlink_sigma);
            clients.push(ClientNetProfile {
                index,
                group,
                rtt_target,
                rtt_coordinator,
                downlink,
                uplink: downlink * profile.uplink_fraction,
                jitter_frac: profile.jitter_frac,
            });
        }
        WideAreaModel {
            clients,
            rng: rng.fork("wan-jitter"),
        }
    }

    /// The generated client profiles, indexed by client number.
    pub fn clients(&self) -> &[ClientNetProfile] {
        &self.clients
    }

    /// Profile of a single client.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn client(&self, index: usize) -> &ClientNetProfile {
        &self.clients[index]
    }

    /// Samples the actual one-way delay for a message whose mean one-way
    /// delay is `mean`, applying the population's jitter.
    ///
    /// Jitter is multiplicative and clamped at ±3σ, never letting the delay
    /// go below 20% of its mean (queueing can add delay but the speed of
    /// light puts a floor under it).
    pub fn jittered_delay(&mut self, mean: SimDuration, jitter_frac: f64) -> SimDuration {
        if mean.is_zero() || jitter_frac <= 0.0 {
            return mean;
        }
        let factor = self
            .rng
            .normal_clamped(
                1.0,
                jitter_frac,
                1.0 - 3.0 * jitter_frac,
                1.0 + 3.0 * jitter_frac,
            )
            .max(0.2);
        mean.mul_f64(factor)
    }

    /// Samples the one-way coordinator→client delay for `client`.
    pub fn coordinator_to_client(&mut self, client: usize) -> SimDuration {
        let profile = self.clients[client].clone();
        self.jittered_delay(profile.one_way_coordinator(), profile.jitter_frac)
    }

    /// Samples the one-way client→target delay for `client`.
    pub fn client_to_target(&mut self, client: usize) -> SimDuration {
        let profile = self.clients[client].clone();
        self.jittered_delay(profile.one_way_target(), profile.jitter_frac)
    }

    /// Measured round-trip time from the coordinator to `client`, as the
    /// coordinator would observe it during registration (one jittered sample
    /// of the full RTT).
    pub fn measure_coordinator_rtt(&mut self, client: usize) -> SimDuration {
        let profile = self.clients[client].clone();
        self.jittered_delay(profile.rtt_coordinator, profile.jitter_frac)
    }

    /// Measured round-trip time from `client` to the target, as the client
    /// would observe it during the delay-computation step.
    pub fn measure_target_rtt(&mut self, client: usize) -> SimDuration {
        let profile = self.clients[client].clone();
        self.jittered_delay(profile.rtt_target, profile.jitter_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(count: usize) -> WideAreaModel {
        WideAreaModel::generate(
            &PopulationProfile::planetlab(),
            count,
            &SimRng::seed_from(42),
        )
    }

    #[test]
    fn generates_requested_count_with_stable_indices() {
        let wan = model(65);
        assert_eq!(wan.clients().len(), 65);
        for (i, c) in wan.clients().iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn rtts_respect_floor_and_ceiling() {
        let profile = PopulationProfile::planetlab();
        let wan = model(200);
        for c in wan.clients() {
            assert!(c.rtt_target >= profile.rtt_floor);
            assert!(c.rtt_target <= profile.rtt_ceiling);
            assert!(c.rtt_coordinator >= profile.rtt_floor);
            assert!(c.rtt_coordinator <= profile.rtt_ceiling);
        }
    }

    #[test]
    fn population_is_heterogeneous() {
        let wan = model(100);
        let min = wan.clients().iter().map(|c| c.rtt_target).min().unwrap();
        let max = wan.clients().iter().map(|c| c.rtt_target).max().unwrap();
        // The wide-area population must span a meaningful RTT range — that
        // heterogeneity is exactly what the synchronization scheduler exists
        // to compensate for.
        assert!(max.as_millis_f64() > 2.0 * min.as_millis_f64());
    }

    #[test]
    fn same_seed_same_population() {
        let a = model(30);
        let b = model(30);
        assert_eq!(a.clients(), b.clients());
    }

    #[test]
    fn lan_population_is_fast_and_uniform() {
        let wan = WideAreaModel::generate(&PopulationProfile::lan(), 50, &SimRng::seed_from(7));
        for c in wan.clients() {
            assert!(c.rtt_target <= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn vantage_groups_cluster_round_robin_with_rtt_skew() {
        let profile = PopulationProfile::grouped(4);
        let wan = WideAreaModel::generate(&profile, 80, &SimRng::seed_from(11));
        for client in wan.clients() {
            assert_eq!(client.group, client.index % 4);
        }
        // The far group's mean RTT must exceed the near group's: the
        // deterministic skew separates them beyond sampling noise.
        let mean_rtt = |group: usize| {
            let rtts: Vec<f64> = wan
                .clients()
                .iter()
                .filter(|c| c.group == group)
                .map(|c| c.rtt_target.as_millis_f64())
                .collect();
            rtts.iter().sum::<f64>() / rtts.len() as f64
        };
        assert!(
            mean_rtt(3) > mean_rtt(0),
            "group RTT skew missing: {} vs {}",
            mean_rtt(0),
            mean_rtt(3)
        );
        // Ungrouped populations stay in the single implicit group.
        let flat =
            WideAreaModel::generate(&PopulationProfile::planetlab(), 10, &SimRng::seed_from(1));
        assert!(flat.clients().iter().all(|c| c.group == 0));
    }

    #[test]
    fn jitter_stays_near_mean() {
        let mut wan = model(10);
        let mean = SimDuration::from_millis(100);
        for _ in 0..1_000 {
            let d = wan.jittered_delay(mean, 0.04);
            let ratio = d.as_millis_f64() / mean.as_millis_f64();
            assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn zero_jitter_returns_mean() {
        let mut wan = model(5);
        let mean = SimDuration::from_millis(42);
        assert_eq!(wan.jittered_delay(mean, 0.0), mean);
        assert_eq!(
            wan.jittered_delay(SimDuration::ZERO, 0.5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn one_way_is_half_rtt() {
        let wan = model(3);
        let c = wan.client(0);
        // Halving rounds to the nearest microsecond, so allow 1µs of slack
        // when doubling back.
        let double_target = c.one_way_target() * 2;
        let diff = double_target
            .saturating_sub(c.rtt_target)
            .max(c.rtt_target.saturating_sub(double_target));
        assert!(diff <= SimDuration::from_micros(1));
        let double_coord = c.one_way_coordinator() * 2;
        let diff = double_coord
            .saturating_sub(c.rtt_coordinator)
            .max(c.rtt_coordinator.saturating_sub(double_coord));
        assert!(diff <= SimDuration::from_micros(1));
    }

    #[test]
    fn measured_rtts_are_positive_and_plausible() {
        let mut wan = model(20);
        for i in 0..20 {
            let coord = wan.measure_coordinator_rtt(i);
            let target = wan.measure_target_rtt(i);
            assert!(coord > SimDuration::ZERO);
            assert!(target > SimDuration::ZERO);
            // Within a factor of two of the underlying mean.
            let mean = wan.client(i).rtt_target.as_millis_f64();
            assert!((target.as_millis_f64() / mean) < 2.0);
        }
    }
}
