//! Lossy UDP control channel between the coordinator and its clients.
//!
//! The paper's implementation uses UDP for all control messages and does
//! *not* retransmit lost ones (§2.3).  The consequence is visible in
//! Table 2: the coordinator scheduled 375 requests in the last Small Query
//! epoch but only 353 showed up in the server logs — commands (or their
//! payload deliveries) occasionally vanish.  [`ControlChannel`] reproduces
//! that behaviour: a message either arrives after a jittered one-way delay
//! or is silently dropped.

use mfc_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Outcome of sending one control message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Delivery {
    /// The message arrives after the given one-way delay.
    Delivered(SimDuration),
    /// The message is lost; there is no retransmission.
    Lost,
}

impl Delivery {
    /// Returns the delay if the message was delivered.
    pub fn delay(self) -> Option<SimDuration> {
        match self {
            Delivery::Delivered(d) => Some(d),
            Delivery::Lost => None,
        }
    }

    /// Returns `true` if the message was lost.
    pub fn is_lost(self) -> bool {
        matches!(self, Delivery::Lost)
    }
}

/// Parameters and state of the UDP control plane.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{SimDuration, SimRng};
/// use mfc_simnet::ControlChannel;
///
/// // No loss, no jitter: the delay passes through unchanged.
/// let mut chan = ControlChannel::new(0.0, 0.0, SimRng::seed_from(3));
/// let d = chan.send(SimDuration::from_millis(40));
/// assert_eq!(d.delay(), Some(SimDuration::from_millis(40)));
/// ```
#[derive(Debug, Clone)]
pub struct ControlChannel {
    loss_probability: f64,
    jitter_frac: f64,
    rng: SimRng,
    sent: u64,
    lost: u64,
}

impl ControlChannel {
    /// Creates a channel with the given loss probability and multiplicative
    /// delay jitter (fraction of the mean one-way delay).
    pub fn new(loss_probability: f64, jitter_frac: f64, rng: SimRng) -> Self {
        ControlChannel {
            loss_probability: loss_probability.clamp(0.0, 1.0),
            jitter_frac: jitter_frac.max(0.0),
            rng,
            sent: 0,
            lost: 0,
        }
    }

    /// A lossless channel with the given jitter — useful for ablations that
    /// isolate the effect of command loss.
    pub fn lossless(jitter_frac: f64, rng: SimRng) -> Self {
        Self::new(0.0, jitter_frac, rng)
    }

    /// Sends one message whose mean one-way delay is `mean_delay`.
    pub fn send(&mut self, mean_delay: SimDuration) -> Delivery {
        self.sent += 1;
        if self.loss_probability > 0.0 && self.rng.chance(self.loss_probability) {
            self.lost += 1;
            return Delivery::Lost;
        }
        if self.jitter_frac <= 0.0 || mean_delay.is_zero() {
            return Delivery::Delivered(mean_delay);
        }
        let factor = self
            .rng
            .normal_clamped(
                1.0,
                self.jitter_frac,
                (1.0 - 3.0 * self.jitter_frac).max(0.1),
                1.0 + 3.0 * self.jitter_frac,
            )
            .max(0.1);
        Delivery::Delivered(mean_delay.mul_f64(factor))
    }

    /// Number of messages sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of messages lost so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Observed loss rate so far (0 if nothing was sent).
    pub fn observed_loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_never_drops() {
        let mut chan = ControlChannel::lossless(0.1, SimRng::seed_from(1));
        for _ in 0..1_000 {
            assert!(!chan.send(SimDuration::from_millis(10)).is_lost());
        }
        assert_eq!(chan.lost(), 0);
        assert_eq!(chan.sent(), 1_000);
    }

    #[test]
    fn loss_rate_is_approximately_configured() {
        let mut chan = ControlChannel::new(0.05, 0.0, SimRng::seed_from(2));
        for _ in 0..20_000 {
            chan.send(SimDuration::from_millis(10));
        }
        let observed = chan.observed_loss_rate();
        assert!((observed - 0.05).abs() < 0.01, "observed {observed}");
    }

    #[test]
    fn zero_jitter_preserves_delay() {
        let mut chan = ControlChannel::new(0.0, 0.0, SimRng::seed_from(3));
        let d = chan.send(SimDuration::from_millis(77));
        assert_eq!(d.delay(), Some(SimDuration::from_millis(77)));
    }

    #[test]
    fn jitter_keeps_delay_positive_and_bounded() {
        let mut chan = ControlChannel::new(0.0, 0.2, SimRng::seed_from(4));
        for _ in 0..1_000 {
            let d = chan.send(SimDuration::from_millis(50)).delay().unwrap();
            assert!(d > SimDuration::ZERO);
            assert!(d < SimDuration::from_millis(50 * 2));
        }
    }

    #[test]
    fn probability_is_clamped() {
        let mut always = ControlChannel::new(5.0, 0.0, SimRng::seed_from(5));
        assert!(always.send(SimDuration::from_millis(1)).is_lost());
        let mut never = ControlChannel::new(-1.0, 0.0, SimRng::seed_from(6));
        assert!(!never.send(SimDuration::from_millis(1)).is_lost());
    }

    #[test]
    fn delivery_helpers() {
        assert!(Delivery::Lost.is_lost());
        assert_eq!(Delivery::Lost.delay(), None);
        let d = Delivery::Delivered(SimDuration::from_millis(9));
        assert!(!d.is_lost());
        assert_eq!(d.delay(), Some(SimDuration::from_millis(9)));
    }
}
