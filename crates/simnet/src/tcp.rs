//! Coarse TCP behaviour: connection setup and slow-start ramp-up.
//!
//! The MFC synchronization scheduler assumes the first byte of the HTTP
//! request reaches the target roughly when the three-way handshake
//! completes, i.e. `1.5 × RTT` after the client initiates the connection
//! (paper §2.2.4).  The Large Object stage additionally relies on responses
//! being big enough (> 100 KB) "to allow TCP to exit slow start and fully
//! utilize the available network bandwidth" (paper §2.2.2) — so short
//! transfers must be window-limited while long transfers approach the fluid
//! fair-share rate.  [`TcpModel`] captures exactly these two effects and
//! nothing more.

use mfc_simcore::SimDuration;
use serde::{Deserialize, Serialize};

use crate::Bandwidth;

/// Parameters of the simplified TCP model.
///
/// # Examples
///
/// ```
/// use mfc_simcore::SimDuration;
/// use mfc_simnet::TcpModel;
///
/// let tcp = TcpModel::default();
/// let rtt = SimDuration::from_millis(100);
///
/// // Request arrival: SYN + SYN/ACK + first data segment = 1.5 RTT.
/// assert_eq!(tcp.request_arrival_delay(rtt), SimDuration::from_millis(150));
///
/// // A tiny response is dominated by round trips, not bandwidth.
/// let small = tcp.slow_start_delay(10_000, rtt);
/// let large = tcp.slow_start_delay(1_000_000, rtt);
/// assert!(small < large);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpModel {
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Initial congestion window in segments.
    pub initial_cwnd_segments: u64,
    /// Maximum window in bytes (receiver window / send buffer): caps the
    /// throughput of a single connection at `max_window / RTT`.
    pub max_window_bytes: u64,
}

impl Default for TcpModel {
    fn default() -> Self {
        // 1460-byte segments, IW = 3 segments (per RFC 3390, the common
        // setting in 2007-era stacks), 64 KB default socket buffers.
        TcpModel {
            mss: 1460,
            initial_cwnd_segments: 3,
            max_window_bytes: 64 * 1024,
        }
    }
}

impl TcpModel {
    /// A model tuned for modern well-configured servers (larger initial
    /// window and auto-tuned buffers); used for the "well provisioned"
    /// cooperating sites.
    pub fn well_tuned() -> Self {
        TcpModel {
            mss: 1460,
            initial_cwnd_segments: 10,
            max_window_bytes: 1024 * 1024,
        }
    }

    /// Delay from the client initiating a connection until the first byte of
    /// the HTTP request arrives at the server: SYN, SYN-ACK, then the ACK
    /// carrying (or immediately followed by) the request — 1.5 RTT.
    pub fn request_arrival_delay(&self, rtt: SimDuration) -> SimDuration {
        rtt.mul_f64(1.5)
    }

    /// Extra latency incurred because the transfer starts with a small
    /// congestion window rather than immediately running at the bottleneck
    /// rate.
    ///
    /// The model counts the number of slow-start rounds needed to cover
    /// `bytes` when the window doubles each RTT starting from the initial
    /// window, capped at [`TcpModel::max_window_bytes`].  The returned value
    /// is the *additional* delay on top of `bytes / rate`, i.e. roughly
    /// `rounds × RTT − bytes/rate_unbounded`; we approximate it as the round
    /// count times RTT for the portion of the transfer sent before the
    /// window saturates.  For transfers much larger than the window this
    /// converges to a constant, matching the paper's observation that
    /// objects over 100 KB are bandwidth- rather than window-dominated.
    pub fn slow_start_delay(&self, bytes: u64, rtt: SimDuration) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let init = self.mss * self.initial_cwnd_segments;
        let max_window = self.max_window_bytes.max(init);
        let mut window = init;
        let mut sent = 0u64;
        let mut rounds = 0u32;
        while sent < bytes && window < max_window && rounds < 32 {
            sent += window;
            window = (window * 2).min(max_window);
            rounds += 1;
        }
        // Each slow-start round costs one RTT of serialization that a fully
        // open window would not pay.  Subtract one round because the first
        // window is sent immediately after the handshake.
        let penalised_rounds = rounds.saturating_sub(1);
        rtt.mul_f64(f64::from(penalised_rounds))
    }

    /// Maximum steady-state throughput of one connection given the window
    /// cap: `max_window / RTT`, in bytes per second.
    pub fn window_limited_rate(&self, rtt: SimDuration) -> Bandwidth {
        let rtt_s = rtt.as_secs_f64();
        if rtt_s <= 0.0 {
            return f64::INFINITY;
        }
        self.max_window_bytes as f64 / rtt_s
    }

    /// Total time to transfer `bytes` over an otherwise idle path with
    /// bottleneck rate `rate` (bytes/s): slow-start penalty plus the fluid
    /// transfer time at the window-limited rate.
    ///
    /// Used for the *base response time* measurements each MFC client makes
    /// sequentially before the epochs start — those transfers see no
    /// competing MFC traffic.
    pub fn transfer_time(&self, bytes: u64, rtt: SimDuration, rate: Bandwidth) -> SimDuration {
        let effective = rate.min(self.window_limited_rate(rtt));
        let fluid = if effective <= 0.0 || !effective.is_finite() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / effective)
        };
        self.slow_start_delay(bytes, rtt) + fluid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn request_arrival_is_one_and_a_half_rtt() {
        let tcp = TcpModel::default();
        assert_eq!(tcp.request_arrival_delay(ms(80)), ms(120));
        assert_eq!(tcp.request_arrival_delay(ms(0)), ms(0));
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let tcp = TcpModel::default();
        assert_eq!(tcp.slow_start_delay(0, ms(100)), SimDuration::ZERO);
        assert_eq!(tcp.transfer_time(0, ms(100), 1e6), SimDuration::ZERO);
    }

    #[test]
    fn slow_start_delay_grows_then_saturates() {
        let tcp = TcpModel::default();
        let rtt = ms(100);
        let d_small = tcp.slow_start_delay(5_000, rtt);
        let d_medium = tcp.slow_start_delay(50_000, rtt);
        let d_large = tcp.slow_start_delay(500_000, rtt);
        let d_huge = tcp.slow_start_delay(50_000_000, rtt);
        assert!(d_small <= d_medium);
        assert!(d_medium <= d_large);
        // Once the window is fully open the penalty stops growing.
        assert_eq!(d_large, d_huge);
    }

    #[test]
    fn fits_in_initial_window_has_no_penalty() {
        let tcp = TcpModel::default();
        // 3 * 1460 = 4380 bytes fit in the initial window: a single round.
        assert_eq!(tcp.slow_start_delay(4_000, ms(200)), SimDuration::ZERO);
    }

    #[test]
    fn window_limited_rate_scales_with_rtt() {
        let tcp = TcpModel::default();
        let fast = tcp.window_limited_rate(ms(10));
        let slow = tcp.window_limited_rate(ms(200));
        assert!(fast > slow);
        assert!((slow - 64.0 * 1024.0 / 0.2).abs() < 1e-6);
        assert!(tcp.window_limited_rate(SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn transfer_time_respects_window_cap() {
        let tcp = TcpModel::default();
        let rtt = ms(200);
        // A very fat pipe does not help when the 64KB window over 200ms RTT
        // caps the connection at ~320 KB/s.
        let capped = tcp.transfer_time(1_000_000, rtt, 1e9);
        let window_rate = tcp.window_limited_rate(rtt);
        let floor = SimDuration::from_secs_f64(1_000_000.0 / window_rate);
        assert!(capped >= floor);
    }

    #[test]
    fn well_tuned_is_faster_than_default() {
        let def = TcpModel::default();
        let tuned = TcpModel::well_tuned();
        let rtt = ms(100);
        assert!(tuned.transfer_time(500_000, rtt, 1e8) < def.transfer_time(500_000, rtt, 1e8));
    }
}
