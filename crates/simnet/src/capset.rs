//! Order-statistics multiset of per-flow rate caps.
//!
//! The max–min fair allocation over a shared link reduces to finding the
//! *water level* `w` with `Σ min(cᵢ, w) = C`: flows whose cap is below the
//! level are frozen at their cap, everyone else shares the rest equally.
//! The progressive-filling formulation recomputes that from scratch in
//! O(n²); this structure answers it in O(log n) by keeping the caps of all
//! active flows in a balanced search tree whose nodes carry subtree counts
//! and subtree cap-sums, so prefix sums `S(≤ c)` and prefix counts
//! `cnt(≤ c)` are available along any root-to-leaf path.
//!
//! The tree is a treap whose priorities are a hash of the key itself, which
//! makes the shape a pure function of the *set* of caps — independent of
//! insertion order — so every float accumulation over the tree is
//! bit-reproducible across runs, thread counts and op interleavings.
//!
//! Caps are keyed by their IEEE-754 bit pattern.  All stored caps are
//! finite and non-negative, for which the bit order coincides with the
//! numeric order; callers keep infinite caps (flows that can never be
//! individually limited) out of the tree and pass their count to
//! [`CapMultiset::water_level`] instead.

/// Sentinel for "no child".
const NIL: u32 = u32::MAX;

/// Deterministic 64-bit mix (splitmix64 finalizer) used for treap
/// priorities.  Depends only on the key, never on insertion history.
fn priority_of(key_bits: u64) -> u64 {
    let mut x = key_bits.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Debug, Clone)]
struct Node {
    /// Cap value as non-negative finite f64 bits (bit order == numeric order).
    key_bits: u64,
    priority: u64,
    /// Multiplicity of this exact cap value.
    count: u64,
    left: u32,
    right: u32,
    /// Number of caps in this subtree (with multiplicity).
    total_count: u64,
    /// Sum of cap values in this subtree (with multiplicity).
    total_sum: f64,
}

/// Result of a [`CapMultiset::water_level`] query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterLevel {
    /// Largest *saturated* cap (bit pattern): every flow whose cap is
    /// `<= threshold` is frozen at its own cap; `None` when no cap is
    /// saturated (the equal share is below even the smallest cap).
    pub threshold_bits: Option<u64>,
    /// Number of saturated flows.
    pub saturated_count: u64,
    /// Sum of the saturated flows' caps.
    pub saturated_sum: f64,
    /// Rate of every unsaturated flow; `f64::INFINITY` when every flow is
    /// saturated (the link has spare capacity and nobody can use it).
    pub level: f64,
}

/// A multiset of finite non-negative caps with O(log n) insert, remove and
/// water-level queries.
///
/// # Examples
///
/// ```
/// use mfc_simnet::capset::CapMultiset;
///
/// let mut caps = CapMultiset::new();
/// caps.insert(100.0);
/// caps.insert(100.0);
/// caps.insert(900.0);
/// // 1000 B/s split over the three flows: the two 100 B/s caps saturate,
/// // the third flow takes the remaining 800 B/s (its cap exceeds that).
/// let wl = caps.water_level(1_000.0, 3);
/// assert_eq!(wl.saturated_count, 2);
/// assert_eq!(wl.saturated_sum, 200.0);
/// assert_eq!(wl.level, 800.0);
/// ```
#[derive(Debug, Clone)]
pub struct CapMultiset {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
}

impl Default for CapMultiset {
    // Not derivable: an empty tree's root is the NIL sentinel, not 0.
    fn default() -> Self {
        CapMultiset::new()
    }
}

impl CapMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        CapMultiset {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Number of caps stored (with multiplicity).
    pub fn len(&self) -> u64 {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].total_count
        }
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Sum of all stored caps (with multiplicity).
    pub fn sum(&self) -> f64 {
        if self.root == NIL {
            0.0
        } else {
            self.nodes[self.root as usize].total_sum
        }
    }

    /// Inserts one instance of `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not finite or is negative (infinite caps belong in
    /// the caller's uncapped count, not in the tree).
    pub fn insert(&mut self, cap: f64) {
        assert!(
            cap.is_finite() && cap >= 0.0,
            "cap must be finite and non-negative, got {cap}"
        );
        self.root = self.insert_at(self.root, cap.to_bits());
    }

    /// Removes one instance of `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not present.
    pub fn remove(&mut self, cap: f64) {
        self.root = self.remove_at(self.root, cap.to_bits());
    }

    /// Computes the max–min water level for a link of `capacity` bytes/s
    /// shared by `flow_count` flows: the caps in this multiset plus
    /// `flow_count - len()` flows with no individual cap.
    ///
    /// # Panics
    ///
    /// Panics if `flow_count` is smaller than the number of stored caps.
    pub fn water_level(&self, capacity: f64, flow_count: u64) -> WaterLevel {
        assert!(
            flow_count >= self.len(),
            "flow_count {flow_count} below stored cap count {}",
            self.len()
        );
        // Descend for the largest cap c with F(c) = S(<c) + c·(n − cnt(<c))
        // ≤ capacity, i.e. the largest cap that stays saturated.  F is
        // monotone in c, so this is a standard partition-point walk; the
        // (count, sum) prefixes accumulate along the path in a fixed order,
        // which keeps the float results deterministic.
        let n = flow_count;
        let mut node = self.root;
        let mut prefix_count = 0u64;
        let mut prefix_sum = 0.0f64;
        let mut best: Option<(u64, u64, f64)> = None; // (key_bits, cnt≤, sum≤)
        while node != NIL {
            let nd = &self.nodes[node as usize];
            let (lc, ls) = self.child_aggregates(nd.left);
            let count_below = prefix_count + lc;
            let sum_below = prefix_sum + ls;
            let c = f64::from_bits(nd.key_bits);
            let f = sum_below + c * (n - count_below) as f64;
            if f <= capacity {
                let cnt_le = count_below + nd.count;
                let sum_le = sum_below + c * nd.count as f64;
                best = Some((nd.key_bits, cnt_le, sum_le));
                prefix_count = cnt_le;
                prefix_sum = sum_le;
                node = nd.right;
            } else {
                node = nd.left;
            }
        }
        let (threshold_bits, saturated_count, saturated_sum) = match best {
            Some((bits, k, s)) => (Some(bits), k, s),
            None => (None, 0, 0.0),
        };
        let level = if saturated_count >= n {
            f64::INFINITY
        } else {
            (capacity - saturated_sum) / (n - saturated_count) as f64
        };
        WaterLevel {
            threshold_bits,
            saturated_count,
            saturated_sum,
            level,
        }
    }

    /// Count and sum of all caps `<=` the cap encoded by `cap_bits`
    /// (IEEE-754 bit pattern of a finite non-negative f64).  O(log n), with
    /// the same fixed root-to-leaf accumulation order as
    /// [`CapMultiset::water_level`], so the float result is reproducible.
    ///
    /// This is the building block the multi-link network allocator uses: a
    /// link's *demand* at a candidate water level `w` is
    /// `sum(<=w) + w·(flows − count(<=w))`, and the allocator evaluates it
    /// across every route sharing the link.
    pub fn prefix(&self, cap_bits: u64) -> (u64, f64) {
        let mut node = self.root;
        let mut count = 0u64;
        let mut sum = 0.0f64;
        while node != NIL {
            let nd = &self.nodes[node as usize];
            if nd.key_bits <= cap_bits {
                let (lc, ls) = self.child_aggregates(nd.left);
                count += lc + nd.count;
                sum += ls + f64::from_bits(nd.key_bits) * nd.count as f64;
                node = nd.right;
            } else {
                node = nd.left;
            }
        }
        (count, sum)
    }

    /// Largest stored cap (bit pattern) for which the monotone predicate
    /// holds, or `None` when it holds for no stored cap.  `pred` must be
    /// monotone decreasing in the cap (true for small caps, false beyond
    /// some threshold) — exactly the shape of "is this cap still saturated
    /// at the link's water level".  O(log n) predicate evaluations.
    pub fn partition_max(&self, mut pred: impl FnMut(f64) -> bool) -> Option<u64> {
        let mut node = self.root;
        let mut best = None;
        while node != NIL {
            let nd = &self.nodes[node as usize];
            if pred(f64::from_bits(nd.key_bits)) {
                best = Some(nd.key_bits);
                node = nd.right;
            } else {
                node = nd.left;
            }
        }
        best
    }

    fn child_aggregates(&self, node: u32) -> (u64, f64) {
        if node == NIL {
            (0, 0.0)
        } else {
            let nd = &self.nodes[node as usize];
            (nd.total_count, nd.total_sum)
        }
    }

    fn alloc(&mut self, key_bits: u64) -> u32 {
        let node = Node {
            key_bits,
            priority: priority_of(key_bits),
            count: 1,
            left: NIL,
            right: NIL,
            total_count: 1,
            total_sum: f64::from_bits(key_bits),
        };
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn update(&mut self, node: u32) {
        let (left, right, key_bits, count) = {
            let nd = &self.nodes[node as usize];
            (nd.left, nd.right, nd.key_bits, nd.count)
        };
        let (lc, ls) = self.child_aggregates(left);
        let (rc, rs) = self.child_aggregates(right);
        let nd = &mut self.nodes[node as usize];
        nd.total_count = lc + count + rc;
        // Fixed left-to-right accumulation order: the tree shape is a pure
        // function of the key set, so this sum is reproducible.
        nd.total_sum = ls + f64::from_bits(key_bits) * count as f64 + rs;
    }

    fn rotate_right(&mut self, node: u32) -> u32 {
        let pivot = self.nodes[node as usize].left;
        self.nodes[node as usize].left = self.nodes[pivot as usize].right;
        self.nodes[pivot as usize].right = node;
        self.update(node);
        self.update(pivot);
        pivot
    }

    fn rotate_left(&mut self, node: u32) -> u32 {
        let pivot = self.nodes[node as usize].right;
        self.nodes[node as usize].right = self.nodes[pivot as usize].left;
        self.nodes[pivot as usize].left = node;
        self.update(node);
        self.update(pivot);
        pivot
    }

    fn insert_at(&mut self, node: u32, key_bits: u64) -> u32 {
        if node == NIL {
            return self.alloc(key_bits);
        }
        let node_key = self.nodes[node as usize].key_bits;
        let mut node = node;
        if key_bits == node_key {
            self.nodes[node as usize].count += 1;
        } else if key_bits < node_key {
            let child = self.insert_at(self.nodes[node as usize].left, key_bits);
            self.nodes[node as usize].left = child;
            if self.nodes[child as usize].priority > self.nodes[node as usize].priority {
                node = self.rotate_right(node);
                self.update(node);
                return node;
            }
        } else {
            let child = self.insert_at(self.nodes[node as usize].right, key_bits);
            self.nodes[node as usize].right = child;
            if self.nodes[child as usize].priority > self.nodes[node as usize].priority {
                node = self.rotate_left(node);
                self.update(node);
                return node;
            }
        }
        self.update(node);
        node
    }

    fn remove_at(&mut self, node: u32, key_bits: u64) -> u32 {
        assert!(node != NIL, "cap not present in multiset");
        let node_key = self.nodes[node as usize].key_bits;
        if key_bits < node_key {
            let child = self.remove_at(self.nodes[node as usize].left, key_bits);
            self.nodes[node as usize].left = child;
        } else if key_bits > node_key {
            let child = self.remove_at(self.nodes[node as usize].right, key_bits);
            self.nodes[node as usize].right = child;
        } else {
            if self.nodes[node as usize].count > 1 {
                self.nodes[node as usize].count -= 1;
                self.update(node);
                return node;
            }
            let (left, right) = {
                let nd = &self.nodes[node as usize];
                (nd.left, nd.right)
            };
            self.free.push(node);
            return self.merge(left, right);
        }
        self.update(node);
        node
    }

    /// Merges two subtrees where every key in `a` is below every key in `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].priority > self.nodes[b as usize].priority {
            let merged = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = merged;
            self.update(a);
            a
        } else {
            let merged = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = merged;
            self.update(b);
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force water level over a plain sorted Vec, for cross-checking.
    fn naive_water(caps: &[f64], capacity: f64, flow_count: u64) -> (u64, f64, f64) {
        let mut sorted = caps.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = flow_count;
        let mut k = 0u64;
        let mut s = 0.0;
        for &c in &sorted {
            // c saturated iff Σ min(cᵢ, c) ≤ capacity.
            let f: f64 = sorted.iter().map(|&x| x.min(c)).sum::<f64>()
                + c * (n - sorted.len() as u64) as f64;
            if f <= capacity {
                k += 1;
                s += c;
            } else {
                break;
            }
        }
        let level = if k >= n {
            f64::INFINITY
        } else {
            (capacity - s) / (n - k) as f64
        };
        (k, s, level)
    }

    #[test]
    fn empty_set_has_equal_shares() {
        let caps = CapMultiset::new();
        let wl = caps.water_level(1_000.0, 4);
        assert_eq!(wl.saturated_count, 0);
        assert_eq!(wl.threshold_bits, None);
        assert_eq!(wl.level, 250.0);
    }

    #[test]
    fn all_caps_saturated_leaves_infinite_level() {
        let mut caps = CapMultiset::new();
        caps.insert(10.0);
        caps.insert(20.0);
        let wl = caps.water_level(1_000.0, 2);
        assert_eq!(wl.saturated_count, 2);
        assert_eq!(wl.saturated_sum, 30.0);
        assert_eq!(wl.level, f64::INFINITY);
    }

    #[test]
    fn no_cap_saturated_when_share_is_tiny() {
        let mut caps = CapMultiset::new();
        caps.insert(500.0);
        caps.insert(600.0);
        // 100 B/s over two flows: share 50 each, below both caps.
        let wl = caps.water_level(100.0, 2);
        assert_eq!(wl.saturated_count, 0);
        assert_eq!(wl.level, 50.0);
    }

    #[test]
    fn duplicates_count_with_multiplicity() {
        let mut caps = CapMultiset::new();
        for _ in 0..5 {
            caps.insert(100.0);
        }
        assert_eq!(caps.len(), 5);
        assert_eq!(caps.sum(), 500.0);
        caps.remove(100.0);
        assert_eq!(caps.len(), 4);
        let wl = caps.water_level(1_000.0, 6);
        // Four capped flows at 100, two uncapped sharing 600.
        assert_eq!(wl.saturated_count, 4);
        assert_eq!(wl.level, 300.0);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn removing_missing_cap_panics() {
        let mut caps = CapMultiset::new();
        caps.insert(1.0);
        caps.remove(2.0);
    }

    #[test]
    fn matches_naive_water_level_on_random_sets() {
        // Deterministic LCG; no external rand in this workspace.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..200 {
            let mut caps = CapMultiset::new();
            let mut mirror = Vec::new();
            let len = (next() * 40.0) as usize;
            for _ in 0..len {
                // Quantize so duplicates occur.
                let cap = (next() * 20.0).floor() * 50.0;
                caps.insert(cap);
                mirror.push(cap);
            }
            let extra = (next() * 5.0) as u64;
            let capacity = next() * 10_000.0 + 1.0;
            let n = mirror.len() as u64 + extra;
            let wl = caps.water_level(capacity, n);
            let (k, s, level) = naive_water(&mirror, capacity, n);
            assert_eq!(wl.saturated_count, k, "case {case}");
            assert!((wl.saturated_sum - s).abs() < 1e-6, "case {case}");
            if level.is_finite() {
                assert!((wl.level - level).abs() < 1e-6, "case {case}");
            } else {
                assert_eq!(wl.level, f64::INFINITY, "case {case}");
            }
            // Remove half and re-check internal consistency.
            for cap in mirror.iter().step_by(2) {
                caps.remove(*cap);
            }
            let remaining: Vec<f64> = mirror.iter().skip(1).step_by(2).copied().collect();
            assert_eq!(caps.len(), remaining.len() as u64);
            let sum: f64 = remaining.iter().sum();
            assert!((caps.sum() - sum).abs() < 1e-6);
        }
    }

    #[test]
    fn prefix_matches_linear_scan() {
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..100 {
            let mut caps = CapMultiset::new();
            let mut mirror = Vec::new();
            for _ in 0..(next() * 50.0) as usize {
                let cap = (next() * 12.0).floor() * 25.0;
                caps.insert(cap);
                mirror.push(cap);
            }
            for _ in 0..8 {
                let probe = next() * 400.0;
                let (count, sum) = caps.prefix(probe.to_bits());
                let expect_count = mirror.iter().filter(|&&c| c <= probe).count() as u64;
                let expect_sum: f64 = mirror.iter().filter(|&&c| c <= probe).sum();
                assert_eq!(count, expect_count, "case {case}");
                assert!((sum - expect_sum).abs() < 1e-6, "case {case}");
            }
        }
    }

    #[test]
    fn partition_max_finds_the_monotone_threshold() {
        let mut caps = CapMultiset::new();
        for c in [10.0, 20.0, 30.0, 40.0, 50.0] {
            caps.insert(c);
        }
        assert_eq!(
            caps.partition_max(|c| c <= 35.0),
            Some(30.0f64.to_bits()),
            "largest stored cap at or below the threshold"
        );
        assert_eq!(caps.partition_max(|c| c <= 5.0), None);
        assert_eq!(caps.partition_max(|_| true), Some(50.0f64.to_bits()));
        assert_eq!(CapMultiset::new().partition_max(|_| true), None);
    }

    #[test]
    fn shape_is_independent_of_insertion_order() {
        let mut a = CapMultiset::new();
        let mut b = CapMultiset::new();
        let values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0];
        for &v in &values {
            a.insert(v);
        }
        for &v in values.iter().rev() {
            b.insert(v);
        }
        // Same set => same deterministic shape => bit-identical aggregates.
        assert_eq!(a.sum().to_bits(), b.sum().to_bits());
        let wa = a.water_level(20.0, 7);
        let wb = b.water_level(20.0, 7);
        assert_eq!(wa.level.to_bits(), wb.level.to_bits());
        assert_eq!(wa.saturated_sum.to_bits(), wb.saturated_sum.to_bits());
    }
}
