//! The live backend: MFC over real HTTP connections.
//!
//! Instead of PlanetLab hosts, the live backend runs a configurable number
//! of *virtual clients* as local threads, each optionally delayed by an
//! artificial latency so the population is not perfectly homogeneous.  The
//! target is any plain-HTTP URL — in this repository's examples and tests
//! it is an [`mfc-httpd`](../../../mfc_httpd/index.html) instance on
//! localhost, which also exposes the arrival log the paper obtained from
//! cooperating operators.
//!
//! The live backend demonstrates that the coordinator logic is not tied to
//! the simulation; it is *not* how the paper-scale experiments are
//! reproduced (those need hundreds of distinct servers, which only the
//! simulation can provide).

use std::thread;
use std::time::{Duration, Instant};

use mfc_http::{Client, ClientConfig, Method, Url};
use mfc_simcore::{SimDuration, SimRng};

use crate::backend::{BaseMeasurement, MfcBackend};
use crate::profile::{LiveCrawler, TargetProfile};
use crate::types::{
    ClientId, ClientObservation, EpochObservation, EpochPlan, ProbeMethod, ProbeStatus, RequestSpec,
};

/// Configuration of the live client pool.
#[derive(Debug, Clone)]
pub struct LiveBackendConfig {
    /// Number of virtual clients (threads) available to the coordinator.
    pub clients: usize,
    /// Artificial extra one-way latency injected before each virtual
    /// client's requests, to emulate geographic spread on a loopback
    /// target.  Sampled uniformly between the two bounds per client.
    pub artificial_latency: (Duration, Duration),
    /// HTTP client settings (timeouts).
    pub http: ClientConfig,
    /// Whether to actually sleep for inter-epoch gaps (`false` keeps test
    /// runs fast; `true` matches the paper's pacing).
    pub honor_epoch_gaps: bool,
}

impl Default for LiveBackendConfig {
    fn default() -> Self {
        LiveBackendConfig {
            clients: 50,
            artificial_latency: (Duration::from_millis(0), Duration::from_millis(30)),
            http: ClientConfig::default(),
            honor_epoch_gaps: false,
        }
    }
}

/// One virtual client.
#[derive(Debug, Clone)]
struct VirtualClient {
    /// Extra one-way latency applied before this client's requests.
    extra_latency: Duration,
    /// Base response times keyed by path.
    base_times: Vec<(String, SimDuration)>,
}

/// The live execution environment.
#[derive(Debug)]
pub struct LiveBackend {
    target: Url,
    config: LiveBackendConfig,
    clients: Vec<VirtualClient>,
    crawler: LiveCrawler,
}

impl LiveBackend {
    /// Creates a live backend probing `target` with the given pool
    /// configuration; `seed` controls the artificial latency assignment.
    pub fn new(target: Url, config: LiveBackendConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let (low, high) = config.artificial_latency;
        let clients = (0..config.clients)
            .map(|_| VirtualClient {
                extra_latency: Duration::from_micros(rng.uniform_u64(
                    low.as_micros() as u64,
                    high.as_micros().max(low.as_micros()) as u64,
                )),
                base_times: Vec::new(),
            })
            .collect();
        let crawler = LiveCrawler::new(Client::new(config.http.clone()), 256);
        LiveBackend {
            target,
            config,
            clients,
            crawler,
        }
    }

    /// The target URL being probed.
    pub fn target(&self) -> &Url {
        &self.target
    }

    fn url_for(&self, request: &RequestSpec) -> Url {
        self.target.join(&request.path)
    }

    fn method_for(request: &RequestSpec) -> Method {
        match request.method {
            ProbeMethod::Get => Method::Get,
            ProbeMethod::Head => Method::Head,
        }
    }

    fn to_sim(duration: Duration) -> SimDuration {
        SimDuration::from_micros(duration.as_micros() as u64)
    }
}

impl MfcBackend for LiveBackend {
    fn registered_clients(&mut self) -> Vec<ClientId> {
        (0..self.clients.len())
            .map(|i| ClientId(i as u32))
            .collect()
    }

    fn ping(&mut self, client: ClientId) -> Option<SimDuration> {
        let index = client.0 as usize;
        let virtual_client = self.clients.get(index)?;
        // Coordinator and clients share a process: the coordinator RTT is
        // just the artificial latency both ways.
        Some(Self::to_sim(virtual_client.extra_latency * 2))
    }

    fn measure_base(&mut self, client: ClientId, request: &RequestSpec) -> BaseMeasurement {
        let index = client.0 as usize;
        let url = self.url_for(request);
        let method = Self::method_for(request);
        let extra = self.clients[index].extra_latency;

        // RTT estimate: a HEAD of the base URL (connection + headers only).
        let rtt_probe = self
            .crawler
            .client()
            .fetch_timed(Method::Head, &self.target);
        let rtt = Self::to_sim(rtt_probe.elapsed + extra * 2);

        let result = self.crawler.fetch(method, &url);
        let base_response = Self::to_sim(result.elapsed + extra * 2);
        let status = if result.is_success() {
            ProbeStatus::Ok
        } else if result.error.as_deref() == Some("timed out") {
            ProbeStatus::TimedOut
        } else if let Some(code) = result.status {
            ProbeStatus::HttpError(code.0)
        } else {
            ProbeStatus::Failed
        };
        self.clients[index]
            .base_times
            .push((request.path.clone(), base_response));
        BaseMeasurement {
            target_rtt: rtt,
            base_response_time: base_response,
            status,
            bytes: result.body_bytes as u64,
        }
    }

    fn run_epoch(&mut self, plan: &EpochPlan) -> EpochObservation {
        let origin = Instant::now();
        let mut handles = Vec::with_capacity(plan.commands.len());
        for command in &plan.commands {
            let index = command.client.0 as usize;
            let Some(virtual_client) = self.clients.get(index) else {
                continue;
            };
            let extra = virtual_client.extra_latency;
            let base = virtual_client
                .base_times
                .iter()
                .find(|(path, _)| *path == command.request.path)
                .map(|(_, t)| *t)
                .unwrap_or(SimDuration::ZERO);
            let url = self.url_for(&command.request);
            let method = Self::method_for(&command.request);
            let client_id = command.client;
            let send_after = Duration::from_micros(command.send_offset.as_micros());
            let timeout = Duration::from_micros(plan.timeout.as_micros());
            let http = Client::new(ClientConfig {
                request_timeout: timeout,
                ..self.config.http.clone()
            });
            handles.push(thread::spawn(move || {
                // Wait until this client's scheduled command time, then add
                // its artificial one-way latency (command travel), fire, and
                // add the artificial latency again on the way back.
                let elapsed = origin.elapsed();
                if send_after > elapsed {
                    thread::sleep(send_after - elapsed);
                }
                thread::sleep(extra);
                let result = http.fetch_timed(method, &url);
                let status = if result.is_success() {
                    ProbeStatus::Ok
                } else if result.error.as_deref() == Some("timed out") {
                    ProbeStatus::TimedOut
                } else if let Some(code) = result.status {
                    ProbeStatus::HttpError(code.0)
                } else {
                    ProbeStatus::Failed
                };
                ClientObservation {
                    client: client_id,
                    group: 0,
                    status,
                    bytes: result.body_bytes as u64,
                    response_time: LiveBackend::to_sim(result.elapsed + extra * 2),
                    base_response_time: base,
                }
            }));
        }

        let observations: Vec<ClientObservation> =
            handles.into_iter().filter_map(|h| h.join().ok()).collect();
        EpochObservation {
            observations,
            target_arrivals: Vec::new(),
            lost_commands: 0,
            background_requests: 0,
            server_utilization: None,
        }
    }

    fn profile_target(&mut self) -> TargetProfile {
        self.crawler
            .crawl(&self.target)
            .unwrap_or_else(|_| TargetProfile::from_objects(self.target.path_and_query(), vec![]))
    }

    fn wait(&mut self, gap: SimDuration) {
        if self.config.honor_epoch_gaps {
            thread::sleep(Duration::from_micros(gap.as_micros()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Socket-level behaviour is covered by the integration tests in
    // `tests/live_mode.rs`, which stand up a real `mfc-httpd`; the unit
    // tests here cover the pure parts.

    #[test]
    fn client_pool_has_requested_size_and_latencies_in_range() {
        let config = LiveBackendConfig {
            clients: 12,
            artificial_latency: (Duration::from_millis(5), Duration::from_millis(20)),
            ..LiveBackendConfig::default()
        };
        let mut backend = LiveBackend::new(Url::parse("http://127.0.0.1:1/").unwrap(), config, 3);
        assert_eq!(backend.registered_clients().len(), 12);
        for client in backend.registered_clients() {
            let rtt = backend.ping(client).unwrap();
            assert!(rtt >= SimDuration::from_millis(10));
            assert!(rtt <= SimDuration::from_millis(40));
        }
        assert!(backend.ping(ClientId(99)).is_none());
    }

    #[test]
    fn url_and_method_mapping() {
        let backend = LiveBackend::new(
            Url::parse("http://127.0.0.1:8123/").unwrap(),
            LiveBackendConfig::default(),
            1,
        );
        let spec = RequestSpec {
            method: ProbeMethod::Head,
            path: "/x/y?q=1".to_string(),
            stage: crate::types::Stage::SmallQuery,
            expected_bytes: 100,
        };
        let url = backend.url_for(&spec);
        assert_eq!(url.to_string(), "http://127.0.0.1:8123/x/y?q=1");
        assert_eq!(LiveBackend::method_for(&spec), Method::Head);
    }

    #[test]
    fn duration_conversion_is_microsecond_accurate() {
        let d = Duration::from_micros(123_456);
        assert_eq!(LiveBackend::to_sim(d), SimDuration::from_micros(123_456));
    }
}
