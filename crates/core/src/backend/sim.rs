//! The simulation backend: MFC over the modelled wide-area network and
//! server substrate.
//!
//! This is the reproduction's stand-in for "65 PlanetLab hosts plus a
//! production web server on the other side of the Internet".  Client
//! network characteristics come from [`mfc_simnet::WideAreaModel`], control
//! messages travel over a lossy [`mfc_simnet::ControlChannel`], and the
//! target is either a single [`mfc_webserver::ServerEngine`] or a
//! load-balanced [`mfc_webserver::ServerCluster`], optionally serving
//! background traffic while the MFC runs.

use std::collections::HashMap;

use mfc_dynamics::{DefenseConfig, DefenseStack};
use mfc_simcore::{SimDuration, SimRng, SimTime};
use mfc_simnet::{ControlChannel, PopulationProfile, WideAreaModel};
use mfc_topology::TopologySpec;
use mfc_webserver::{
    BackgroundTraffic, CacheState, ContentCatalog, RequestClass, RequestStatus, ServerCluster,
    ServerConfig, ServerEngine, ServerRequest,
};
use serde::{Deserialize, Serialize};

use crate::backend::{BaseMeasurement, MfcBackend};
use crate::profile::TargetProfile;
use crate::types::{
    ClientId, ClientObservation, EpochObservation, EpochPlan, ProbeMethod, ProbeStatus,
    RequestSpec, Stage,
};

/// Describes the simulated target a [`SimBackend`] probes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTargetSpec {
    /// Server (replica) configuration.
    pub server: ServerConfig,
    /// Content hosted by the target.
    pub catalog: ContentCatalog,
    /// Number of load-balanced replicas behind the single IP address the
    /// MFC probes (1 = a single machine, 16 = the QTP data centre).
    pub replicas: usize,
    /// Regular user traffic competing with the MFC: the degenerate
    /// flat-Poisson model, used whenever `workload` is `None`.
    pub background: BackgroundTraffic,
    /// A full workload specification for the background traffic — session
    /// models, diurnal/MMPP/flash-crowd arrival processes, trace replay.
    /// When set it *replaces* the flat `background` model (which is just
    /// its degenerate single-source case).
    pub workload: Option<mfc_workload::WorkloadSpec>,
    /// Probability that a coordinator→client UDP command is lost.
    pub control_loss: f64,
    /// Wide-area population the MFC clients are drawn from.
    pub population: PopulationProfile,
    /// Reactive defenses the target runs (autoscaling, admission control,
    /// rate limiting, capacity schedules).  Static by default — the
    /// paper's assumption.
    pub defenses: DefenseConfig,
    /// Shared wide-area bottlenecks between the vantage groups and the
    /// target: per-group transit links, an optional backbone, cross
    /// traffic.  Direct (access link only) by default — the pre-topology
    /// model, where every bandwidth bottleneck is at the server.
    pub topology: TopologySpec,
}

impl SimTargetSpec {
    /// A single server with no background traffic, probed from the default
    /// PlanetLab-like population.
    pub fn single_server(server: ServerConfig, catalog: ContentCatalog) -> Self {
        SimTargetSpec {
            server,
            catalog,
            replicas: 1,
            background: BackgroundTraffic::idle(),
            workload: None,
            control_loss: 0.01,
            population: PopulationProfile::planetlab(),
            defenses: DefenseConfig::none(),
            topology: TopologySpec::direct(),
        }
    }

    /// A load-balanced cluster of `replicas` identical servers.
    pub fn cluster(server: ServerConfig, catalog: ContentCatalog, replicas: usize) -> Self {
        SimTargetSpec {
            replicas: replicas.max(1),
            ..SimTargetSpec::single_server(server, catalog)
        }
    }

    /// Sets the background traffic level.
    pub fn with_background(mut self, background: BackgroundTraffic) -> Self {
        self.background = background;
        self
    }

    /// Replaces the flat background model with a full workload spec:
    /// session-structured, nonstationary, trace-replayed — whatever the
    /// spec describes streams against the target during every epoch.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    pub fn with_workload(mut self, workload: mfc_workload::WorkloadSpec) -> Self {
        workload.validate().expect("invalid workload spec");
        self.workload = Some(workload);
        self
    }

    /// Sets the UDP control-message loss probability.
    pub fn with_control_loss(mut self, loss: f64) -> Self {
        self.control_loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Sets the client population profile (e.g. [`PopulationProfile::lan`]
    /// for the §3.2 lab experiments).
    pub fn with_population(mut self, population: PopulationProfile) -> Self {
        self.population = population;
        self
    }

    /// Arms the target with reactive defenses.  When an autoscaler is part
    /// of the stack, the serving cluster starts at its replica floor
    /// (overriding `replicas`); the defense state — bucket fill levels,
    /// provisioned replicas, fired schedule steps — persists across the
    /// epochs of an MFC run, exactly like a real deployment's.
    pub fn with_defenses(mut self, defenses: DefenseConfig) -> Self {
        self.defenses = defenses;
        self
    }

    /// True when no defense policy is enabled.
    pub fn is_static_target(&self) -> bool {
        self.defenses.is_static()
    }

    /// Places shared wide-area bottlenecks between the clients and the
    /// target.  The population's vantage grouping is *derived* from the
    /// topology when the backend is built (one group per transit link,
    /// round-robin), so the WAN model and the topology always agree on who
    /// sits behind which bottleneck regardless of the order the spec's
    /// fields are assigned in.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        topology.validate().expect("invalid topology spec");
        self.topology = topology;
        self
    }
}

enum Target {
    Single {
        engine: ServerEngine,
        cache: CacheState,
    },
    Cluster(ServerCluster),
}

/// Interned identifier of a request path within one [`SimBackend`].
///
/// Base-time bookkeeping is on the per-request hot path: every epoch command
/// needs the issuing client's base response time for the same path.  Keying
/// that map on `(ClientId, PathId)` — two `u32`s — instead of
/// `(ClientId, String)` removes a `String` allocation *per lookup* (the
/// `HashMap` borrow rules forced a `path.clone()` for every `get`) and makes
/// hashing constant-time instead of O(path length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

/// Path → [`PathId`] interner.  A target serves a handful of distinct probe
/// paths, so this stays tiny; only the *first* sighting of a path allocates.
#[derive(Debug, Default)]
struct PathInterner {
    ids: HashMap<String, PathId>,
}

impl PathInterner {
    /// Returns the id for `path`, interning it on first sight.
    fn intern(&mut self, path: &str) -> PathId {
        if let Some(id) = self.ids.get(path) {
            return *id;
        }
        let id = PathId(u32::try_from(self.ids.len()).expect("more than u32::MAX paths"));
        self.ids.insert(path.to_string(), id);
        id
    }

    /// The id for `path`, if it has been interned (no allocation).
    fn get(&self, path: &str) -> Option<PathId> {
        self.ids.get(path).copied()
    }
}

/// The simulated execution environment.
pub struct SimBackend {
    spec: SimTargetSpec,
    wan: WideAreaModel,
    control: ControlChannel,
    target: Target,
    /// The runtime defense stack, kept across epochs; `None` for static
    /// targets.
    defense: Option<DefenseStack>,
    clock: SimTime,
    rng: SimRng,
    /// Base response times recorded by each client during the sequential
    /// measurement step, keyed by (client, interned path): the client itself
    /// computes its normalized response time from these, as in the paper.
    base_times: HashMap<(ClientId, PathId), SimDuration>,
    paths: PathInterner,
    next_request_id: u64,
    background_served: u64,
}

impl SimBackend {
    /// Creates a backend probing `spec` from `client_count` simulated
    /// wide-area clients, fully determined by `seed`.
    pub fn new(spec: SimTargetSpec, client_count: usize, seed: u64) -> Self {
        let rng = SimRng::seed_from(seed);
        // The vantage grouping is derived from the topology — a single
        // source of truth, immune to the order the spec's public fields
        // were assigned in.  A population the caller already clustered to
        // match the topology is respected as configured (including its
        // RTT skew); otherwise the grouping is derived with the default
        // geographic skew of [`PopulationProfile::grouped`].
        let population = if spec.topology.is_direct()
            || spec.population.vantage_groups == spec.topology.group_count()
        {
            spec.population.clone()
        } else {
            PopulationProfile {
                group_rtt_spread: 0.3,
                ..spec.population.clone()
            }
            .with_vantage_groups(spec.topology.group_count())
        };
        let wan = WideAreaModel::generate(&population, client_count, &rng);
        let control = ControlChannel::new(spec.control_loss, 0.05, rng.fork("control"));
        let defended = !spec.defenses.is_static();
        let replicas = if defended {
            spec.defenses.initial_replicas(spec.replicas)
        } else {
            spec.replicas
        };
        // Shared transit links are instantiated per serving replica, so a
        // fixed-size cluster divides the spec'd capacities to keep the
        // aggregate contention right; a replica count that *changes*
        // mid-run (an autoscaler) would silently dissolve the shared
        // bottleneck and is rejected.
        assert!(
            spec.topology.is_direct() || spec.defenses.autoscaler.is_none(),
            "autoscaling behind a shared-path topology is not modelled: transit links are \
             instantiated per replica, so scaling out would multiply the shared capacity"
        );
        let topology = spec.topology.share_across(replicas);
        // A defended target always runs through the cluster's controlled
        // sweep (an autoscaler needs replica routing even when it starts
        // from one machine).
        let target = if replicas > 1 || defended {
            Target::Cluster(
                ServerCluster::new(spec.server.clone(), spec.catalog.clone(), replicas)
                    .with_topology(topology),
            )
        } else {
            Target::Single {
                engine: ServerEngine::new(spec.server.clone(), spec.catalog.clone())
                    .with_topology(topology),
                cache: CacheState::new(),
            }
        };
        let defense = if defended {
            Some(spec.defenses.build())
        } else {
            None
        };
        SimBackend {
            spec,
            wan,
            control,
            target,
            defense,
            clock: SimTime::ZERO,
            rng,
            base_times: HashMap::new(),
            paths: PathInterner::default(),
            next_request_id: 0,
            background_served: 0,
        }
    }

    /// The current virtual time of the backend.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total control messages lost so far (across all epochs).
    pub fn control_messages_lost(&self) -> u64 {
        self.control.lost()
    }

    /// Total background (non-MFC) requests the target served across every
    /// epoch run so far — the "Other Traffic" column of the paper's
    /// cooperating-site tables.
    pub fn background_requests_served(&self) -> u64 {
        self.background_served
    }

    fn class_for(stage: Stage, method: ProbeMethod) -> RequestClass {
        match (stage, method) {
            (Stage::Base, _) | (_, ProbeMethod::Head) => RequestClass::Head,
            (Stage::SmallQuery, _) => RequestClass::Dynamic,
            (Stage::LargeObject, _) => RequestClass::Static,
        }
    }

    fn run_target(&mut self, requests: Vec<ServerRequest>) -> mfc_webserver::engine::RunResult {
        match (&mut self.target, &mut self.defense) {
            (Target::Single { engine, cache }, None) => engine.run(requests, cache),
            (Target::Single { engine, cache }, Some(stack)) => {
                engine.run_controlled(requests, cache, stack)
            }
            (Target::Cluster(cluster), None) => cluster.run(requests),
            (Target::Cluster(cluster), Some(stack)) => cluster.run_controlled(requests, stack),
        }
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    /// Maps a server-side outcome status to the client-visible probe status.
    fn probe_status(status: RequestStatus) -> ProbeStatus {
        match status {
            RequestStatus::Ok => ProbeStatus::Ok,
            // A refused connection never gets an HTTP response: the client
            // sees a TCP-level failure, not a status code.
            RequestStatus::Refused => ProbeStatus::ConnectionRefused,
            RequestStatus::NotFound => ProbeStatus::HttpError(404),
            RequestStatus::Shed => ProbeStatus::HttpError(503),
        }
    }
}

impl MfcBackend for SimBackend {
    fn registered_clients(&mut self) -> Vec<ClientId> {
        (0..self.wan.clients().len())
            .map(|i| ClientId(i as u32))
            .collect()
    }

    fn ping(&mut self, client: ClientId) -> Option<SimDuration> {
        let index = client.0 as usize;
        if index >= self.wan.clients().len() {
            return None;
        }
        Some(self.wan.measure_coordinator_rtt(index))
    }

    fn measure_base(&mut self, client: ClientId, request: &RequestSpec) -> BaseMeasurement {
        let index = client.0 as usize;
        let profile = self.wan.client(index).clone();
        let rtt_sample = self.wan.measure_target_rtt(index);

        // The client issues the request alone: TCP handshake, then the
        // server model with only this request (plus whatever background
        // traffic happens to overlap, which we approximate as none for the
        // sequential measurement step — the paper performs these
        // measurements one client at a time precisely to avoid interference).
        let send_time = self.clock;
        let arrival = send_time + rtt_sample.mul_f64(1.5);
        let id = self.alloc_id();
        let server_request = ServerRequest {
            id,
            arrival,
            class: Self::class_for(request.stage, request.method),
            path: request.path.clone(),
            client_downlink: profile.downlink,
            client_rtt: profile.rtt_target,
            client_addr: client.0,
            background: false,
        };
        let result = self.run_target(vec![server_request]);
        let outcome = &result.outcomes[0];
        let response_time = outcome.completion.saturating_since(send_time);
        let path_id = self.paths.intern(&request.path);
        self.base_times.insert((client, path_id), response_time);
        // Sequential measurements advance time a little.
        self.clock = self.clock.max(outcome.completion) + SimDuration::from_millis(200);
        BaseMeasurement {
            target_rtt: rtt_sample,
            base_response_time: response_time,
            status: Self::probe_status(outcome.status),
            bytes: outcome.body_bytes,
        }
    }

    fn run_epoch(&mut self, plan: &EpochPlan) -> EpochObservation {
        let origin = self.clock;
        let mut lost_commands = 0u32;
        let mut mfc_requests: Vec<ServerRequest> = Vec::new();
        // (request id, client, interned path, client send time); the path id
        // is `None` when no base measurement ever interned the path.
        let mut issued: Vec<(u64, ClientId, Option<PathId>, SimTime)> = Vec::new();

        let mut last_arrival = origin;
        for command in &plan.commands {
            let index = command.client.0 as usize;
            let profile = self.wan.client(index).clone();
            // Coordinator → client UDP command.
            let delivery = self.control.send(profile.one_way_coordinator());
            let Some(command_delay) = delivery.delay() else {
                lost_commands += 1;
                continue;
            };
            let client_receives = origin + command.send_offset + command_delay;
            // The client fires immediately: handshake then request arrival.
            let handshake = self
                .wan
                .jittered_delay(profile.rtt_target.mul_f64(1.5), profile.jitter_frac);
            let arrival = client_receives + handshake;
            last_arrival = last_arrival.max(arrival);
            let id = self.alloc_id();
            mfc_requests.push(ServerRequest {
                id,
                arrival,
                class: Self::class_for(command.request.stage, command.request.method),
                path: command.request.path.clone(),
                client_downlink: profile.downlink,
                client_rtt: profile.rtt_target,
                client_addr: command.client.0,
                background: false,
            });
            issued.push((
                id,
                command.client,
                self.paths.get(&command.request.path),
                client_receives,
            ));
        }

        // Background traffic competes over the whole epoch window.  A full
        // workload spec (sessions, diurnal/MMPP/flash-crowd arrivals,
        // traces) streams through the shared merged-heap generator; the
        // flat `background` model keeps its original draw stream.
        let window_end = last_arrival + plan.timeout;
        let mut bg_rng = self.rng.fork_indexed("background", origin.as_micros());
        let background: Vec<ServerRequest> = match &self.spec.workload {
            Some(workload) if !workload.is_empty() => mfc_workload::WorkloadStream::new(
                workload,
                origin,
                window_end,
                1_000_000_000 + self.next_request_id,
                &bg_rng,
                mfc_webserver::CatalogSampler::background(&self.spec.catalog),
            )
            .collect(),
            _ => self.spec.background.generate(
                &self.spec.catalog,
                origin,
                window_end,
                1_000_000_000 + self.next_request_id,
                &mut bg_rng,
            ),
        };
        let background_requests = background.len() as u64;
        self.background_served += background_requests;

        let mut all_requests = mfc_requests;
        all_requests.extend(background);
        let result = self.run_target(all_requests);

        // Index outcomes by request id.
        let outcome_by_id: HashMap<u64, &mfc_webserver::RequestOutcome> =
            result.outcomes.iter().map(|o| (o.id, o)).collect();

        let mut observations = Vec::with_capacity(issued.len());
        for (id, client, path_id, send_time) in &issued {
            let Some(outcome) = outcome_by_id.get(id) else {
                continue;
            };
            let raw_response = outcome.completion.saturating_since(*send_time);
            let (status, response_time) = if raw_response > plan.timeout {
                // The client kills the request at the timeout and records
                // exactly the timeout as its response time (Figure 2(b)).
                (ProbeStatus::TimedOut, plan.timeout)
            } else {
                (Self::probe_status(outcome.status), raw_response)
            };
            let base = path_id
                .and_then(|path_id| self.base_times.get(&(*client, path_id)))
                .copied()
                .unwrap_or(SimDuration::ZERO);
            observations.push(ClientObservation {
                client: *client,
                group: self.wan.client(client.0 as usize).group as u32,
                status,
                bytes: outcome.body_bytes,
                response_time,
                base_response_time: base,
            });
        }

        let target_arrivals: Vec<SimTime> = result
            .arrival_log
            .iter()
            .filter(|r| !r.background)
            .map(|r| r.arrival)
            .collect();

        // Advance the clock past the epoch.
        self.clock = window_end.max(origin + plan.timeout);

        EpochObservation {
            observations,
            target_arrivals,
            lost_commands,
            background_requests,
            server_utilization: Some(result.utilization),
        }
    }

    fn profile_target(&mut self) -> TargetProfile {
        TargetProfile::from_catalog(&self.spec.catalog)
    }

    fn wait(&mut self, gap: SimDuration) {
        self.clock += gap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RequestCommand;

    fn backend() -> SimBackend {
        SimBackend::new(
            SimTargetSpec::single_server(
                ServerConfig::lab_apache(),
                ContentCatalog::lab_validation(),
            ),
            60,
            11,
        )
    }

    fn base_spec() -> RequestSpec {
        RequestSpec {
            method: ProbeMethod::Head,
            path: "/index.html".to_string(),
            stage: Stage::Base,
            expected_bytes: 0,
        }
    }

    fn large_spec() -> RequestSpec {
        RequestSpec {
            method: ProbeMethod::Get,
            path: "/objects/large_100k.bin".to_string(),
            stage: Stage::LargeObject,
            expected_bytes: 100 * 1024,
        }
    }

    fn plan(spec: RequestSpec, clients: &[u32], lead_ms: u64) -> EpochPlan {
        EpochPlan {
            stage: spec.stage,
            index: 1,
            commands: clients
                .iter()
                .map(|&c| RequestCommand {
                    client: ClientId(c),
                    request: spec.clone(),
                    send_offset: SimDuration::ZERO,
                    intended_arrival: SimDuration::from_millis(lead_ms),
                })
                .collect(),
            timeout: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn registration_returns_all_clients() {
        let mut backend = backend();
        assert_eq!(backend.registered_clients().len(), 60);
        assert!(backend.ping(ClientId(5)).is_some());
        assert!(backend.ping(ClientId(1000)).is_none());
    }

    #[test]
    fn base_measurement_is_recorded_and_plausible() {
        let mut backend = backend();
        let m = backend.measure_base(ClientId(0), &base_spec());
        assert_eq!(m.status, ProbeStatus::Ok);
        assert!(m.base_response_time > SimDuration::ZERO);
        assert!(m.base_response_time < SimDuration::from_secs(2));
        assert!(m.target_rtt > SimDuration::ZERO);
    }

    #[test]
    fn epoch_produces_observations_for_most_clients() {
        let mut backend = backend();
        let spec = base_spec();
        for c in 0..20u32 {
            backend.measure_base(ClientId(c), &spec);
        }
        let clients: Vec<u32> = (0..20).collect();
        let obs = backend.run_epoch(&plan(spec, &clients, 15_000));
        assert!(obs.observations.len() + obs.lost_commands as usize == 20);
        assert!(
            obs.observations.len() >= 15,
            "only a few commands may be lost"
        );
        assert_eq!(obs.target_arrivals.len(), obs.observations.len());
        for o in &obs.observations {
            assert!(o.status.produced_sample());
            assert!(o.base_response_time > SimDuration::ZERO);
        }
    }

    #[test]
    fn large_object_epoch_shows_contention_on_thin_link() {
        let mut backend = backend();
        let spec = large_spec();
        for c in 0..50u32 {
            backend.measure_base(ClientId(c), &spec);
        }
        let few = backend.run_epoch(&plan(spec.clone(), &(0..5u32).collect::<Vec<_>>(), 15_000));
        let many = backend.run_epoch(&plan(spec, &(0..50u32).collect::<Vec<_>>(), 15_000));
        let median = |obs: &EpochObservation| {
            mfc_simcore::stats::median(&obs.normalized_ms()).unwrap_or(0.0)
        };
        assert!(
            median(&many) > median(&few) + 50.0,
            "50 concurrent 100KB transfers over 10 Mbit/s must visibly contend: {} vs {}",
            median(&few),
            median(&many)
        );
    }

    #[test]
    fn background_traffic_is_generated_when_configured() {
        let spec = SimTargetSpec::single_server(
            ServerConfig::lab_apache(),
            ContentCatalog::typical_site(1),
        )
        .with_background(BackgroundTraffic::at_rate(20.0));
        let mut backend = SimBackend::new(spec, 60, 3);
        let probe = RequestSpec {
            method: ProbeMethod::Head,
            path: "/index.html".to_string(),
            stage: Stage::Base,
            expected_bytes: 0,
        };
        backend.measure_base(ClientId(0), &probe);
        let obs = backend.run_epoch(&plan(probe, &[0, 1, 2], 15_000));
        assert!(obs.background_requests > 0);
    }

    #[test]
    fn workload_spec_replaces_the_flat_background() {
        // A session-structured workload streams against the target during
        // the epoch instead of the flat Poisson process.
        let workload = mfc_workload::WorkloadSpec::sessions(
            mfc_workload::ArrivalProcess::Poisson { rate_per_sec: 2.0 },
            mfc_workload::SessionModel::browsing(),
            mfc_workload::ClientSpec::default(),
        );
        let spec = SimTargetSpec::single_server(
            ServerConfig::lab_apache(),
            ContentCatalog::typical_site(1),
        )
        .with_workload(workload);
        let mut backend = SimBackend::new(spec, 60, 3);
        let probe = RequestSpec {
            method: ProbeMethod::Head,
            path: "/index.html".to_string(),
            stage: Stage::Base,
            expected_bytes: 0,
        };
        backend.measure_base(ClientId(0), &probe);
        let obs = backend.run_epoch(&plan(probe, &[0, 1, 2], 15_000));
        assert!(obs.background_requests > 0);
        assert!(backend.background_requests_served() > 0);
    }

    #[test]
    fn workload_backed_epochs_are_deterministic() {
        let run = || {
            let workload = mfc_workload::WorkloadSpec::sessions(
                mfc_workload::ArrivalProcess::diurnal(1.0, 0.8, 120.0, 8),
                mfc_workload::SessionModel::browsing(),
                mfc_workload::ClientSpec::default(),
            );
            let spec = SimTargetSpec::single_server(
                ServerConfig::lab_apache(),
                ContentCatalog::lab_validation(),
            )
            .with_workload(workload);
            let mut backend = SimBackend::new(spec, 60, 8);
            let spec = base_spec();
            for c in 0..10u32 {
                backend.measure_base(ClientId(c), &spec);
            }
            backend.run_epoch(&plan(spec, &(0..10u32).collect::<Vec<_>>(), 15_000))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn control_loss_drops_commands() {
        let spec = SimTargetSpec::single_server(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
        )
        .with_control_loss(1.0);
        let mut backend = SimBackend::new(spec, 60, 3);
        let obs = backend.run_epoch(&plan(base_spec(), &(0..10u32).collect::<Vec<_>>(), 15_000));
        assert_eq!(obs.lost_commands, 10);
        assert!(obs.observations.is_empty());
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = |seed| {
            let mut backend = SimBackend::new(
                SimTargetSpec::single_server(
                    ServerConfig::lab_apache(),
                    ContentCatalog::lab_validation(),
                ),
                60,
                seed,
            );
            let spec = base_spec();
            for c in 0..10u32 {
                backend.measure_base(ClientId(c), &spec);
            }
            backend.run_epoch(&plan(spec, &(0..10u32).collect::<Vec<_>>(), 15_000))
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn wait_advances_the_clock() {
        let mut backend = backend();
        let before = backend.now();
        backend.wait(SimDuration::from_secs(10));
        assert_eq!(backend.now(), before + SimDuration::from_secs(10));
    }

    #[test]
    fn cluster_target_spreads_load() {
        let single_spec = SimTargetSpec::single_server(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
        );
        let cluster_spec = SimTargetSpec::cluster(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
            16,
        );
        let probe = large_spec();
        let run = |spec: SimTargetSpec| {
            let mut backend = SimBackend::new(spec, 60, 5);
            for c in 0..40u32 {
                backend.measure_base(ClientId(c), &probe);
            }
            let obs = backend.run_epoch(&plan(
                probe.clone(),
                &(0..40u32).collect::<Vec<_>>(),
                15_000,
            ));
            mfc_simcore::stats::median(&obs.normalized_ms()).unwrap_or(0.0)
        };
        let single = run(single_spec);
        let cluster = run(cluster_spec);
        assert!(
            cluster < single,
            "a 16-replica cluster must absorb the crowd better ({cluster} vs {single})"
        );
    }
}
