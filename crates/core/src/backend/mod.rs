//! Backends: how the coordinator, clients and target actually communicate.
//!
//! The MFC algorithm (registration, profiling, latency measurement, epoch
//! scheduling, check phases, inference) is identical whether the "world" is
//! the discrete-event simulation built from `mfc-simnet` + `mfc-webserver`
//! or a set of real HTTP clients hammering a real server.  [`MfcBackend`]
//! is the seam between the two:
//!
//! * [`sim::SimBackend`] — the default: deterministic, fast, and the only
//!   way to reproduce the paper's §4–§5 experiments without the authors'
//!   access to production sites;
//! * [`live::LiveBackend`] — drives real `mfc-http` clients from threads
//!   against any HTTP URL (typically an `mfc-httpd` instance on localhost),
//!   demonstrating that the same coordinator logic works over real sockets.

pub mod live;
pub mod sim;

use mfc_simcore::SimDuration;
use serde::{Deserialize, Serialize};

use crate::profile::TargetProfile;
use crate::types::{ClientId, EpochObservation, EpochPlan, ProbeStatus, RequestSpec};

/// What a client reports after its pre-epoch sequential measurement of an
/// object: its RTT to the target and the unloaded ("base") response time
/// for that object (paper §2.2.3 and Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaseMeasurement {
    /// Round-trip time between the client and the target.
    pub target_rtt: SimDuration,
    /// Response time for the object with no MFC load present.
    pub base_response_time: SimDuration,
    /// Status of the measurement request.
    pub status: ProbeStatus,
    /// Bytes received.
    pub bytes: u64,
}

/// The execution environment an MFC experiment runs in.
pub trait MfcBackend {
    /// Clients that answered the registration probe quickly enough to
    /// participate (the paper requires a 1-second response to a probe
    /// message).
    fn registered_clients(&mut self) -> Vec<ClientId>;

    /// Measures the coordinator↔client round-trip time used by the
    /// synchronization scheduler.  `None` means the client stopped
    /// responding and must be dropped.
    fn ping(&mut self, client: ClientId) -> Option<SimDuration>;

    /// Has `client` measure its RTT to the target and the base response
    /// time for `request`, sequentially and without any MFC load.
    fn measure_base(&mut self, client: ClientId, request: &RequestSpec) -> BaseMeasurement;

    /// Executes one epoch: delivers the commands, lets the clients fire
    /// their requests, and collects their reports.
    fn run_epoch(&mut self, plan: &EpochPlan) -> EpochObservation;

    /// Profiles the target's content (the crawl step of §2.2.1).
    fn profile_target(&mut self) -> TargetProfile;

    /// Lets the backend account for idle time between epochs (the ~10 s
    /// gap); simulation backends advance their virtual clock, live backends
    /// may simply sleep or ignore it.
    fn wait(&mut self, gap: SimDuration) {
        let _ = gap;
    }
}
