//! Experiment reports.
//!
//! [`MfcReport`] is what an operator (or the experiment harness in
//! `mfc-bench`) receives after an MFC run: per-stage stopping crowd sizes
//! and epoch traces, plus the interpretation from [`crate::inference`].
//! The text rendering mirrors the layout of the paper's Tables 1 and 3
//! (one row per stage with the stopping crowd size or "NoStop").

use serde::{Deserialize, Serialize};

use crate::inference::InferenceReport;
use crate::types::{EpochSummary, Stage, StageOutcome};

/// Everything recorded about one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// The stage.
    pub stage: Stage,
    /// How it ended.
    pub outcome: StageOutcome,
    /// Every epoch that was executed, including check-phase epochs.
    pub epochs: Vec<EpochSummary>,
    /// Total requests the coordinator scheduled during the stage.
    pub requests_issued: usize,
}

impl StageReport {
    /// A report for a stage that could not be run.
    pub fn skipped(stage: Stage) -> StageReport {
        StageReport {
            stage,
            outcome: StageOutcome::Skipped,
            epochs: Vec::new(),
            requests_issued: 0,
        }
    }

    /// The paper's table cell for this stage: the stopping crowd size, or
    /// `NoStop (N)` where `N` is the largest crowd tested.
    pub fn outcome_cell(&self) -> String {
        match self.outcome {
            StageOutcome::Stopped { crowd_size } => crowd_size.to_string(),
            StageOutcome::NoStop { max_crowd_tested } => {
                format!("NoStop ({max_crowd_tested})")
            }
            StageOutcome::Skipped => "skipped".to_string(),
        }
    }

    /// Control commands lost during this stage (Table 2's "scheduled vs.
    /// received" gap, summed over the stage's epochs).
    pub fn commands_lost(&self) -> u32 {
        self.epochs.iter().map(|e| e.commands_lost).sum()
    }

    /// Requests the coordinator scheduled vs. samples actually observed
    /// over the stage — the auditable coverage of the stage's evidence.
    pub fn scheduled_vs_observed(&self) -> (usize, usize) {
        (
            self.epochs.iter().map(|e| e.requests_scheduled).sum(),
            self.epochs.iter().map(|e| e.requests_observed).sum(),
        )
    }

    /// The series `(crowd size, detector milliseconds)` over the stage's
    /// non-check epochs — the data behind Figure 4/5/6-style plots.
    pub fn detector_series(&self) -> Vec<(usize, f64)> {
        self.epochs
            .iter()
            .filter(|e| !e.check_phase)
            .map(|e| (e.crowd_size, e.detector_ms))
            .collect()
    }
}

/// The complete result of one MFC experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfcReport {
    /// The degradation threshold θ used, in milliseconds.
    pub threshold_ms: f64,
    /// Parallel requests per client (1 = standard MFC, >1 = MFC-mr).
    pub requests_per_client: usize,
    /// Clients that registered and participated.
    pub clients_registered: usize,
    /// Total MFC requests issued across all stages.
    pub total_requests: usize,
    /// Per-stage results in execution order.
    pub stages: Vec<StageReport>,
    /// The interpretation layered on top.
    pub inference: InferenceReport,
}

impl MfcReport {
    /// Finds the report for a given stage, if that stage was run.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// The stopping crowd size of a stage, if it stopped.
    pub fn stopping_crowd(&self, stage: Stage) -> Option<usize> {
        self.stage(stage).and_then(|s| s.outcome.stopping_crowd())
    }

    /// Total control commands lost in transit across the whole run — the
    /// aggregate "scheduled vs. received" gap of Table 2, auditable from
    /// the report instead of only from backend counters.
    pub fn total_commands_lost(&self) -> u32 {
        self.stages.iter().map(|s| s.commands_lost()).sum()
    }

    /// Renders a compact, paper-style text table plus the inference notes.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "MFC report — threshold {:.0} ms, {} request(s) per client, {} clients, {} total requests\n",
            self.threshold_ms, self.requests_per_client, self.clients_registered, self.total_requests
        ));
        out.push_str(&format!(
            "{:<14} {:>18} {:>8} {:>14} {:>16}\n",
            "Stage", "Stopping crowd", "Epochs", "Requests", "Sched/Observed"
        ));
        for stage in &self.stages {
            let (scheduled, observed) = stage.scheduled_vs_observed();
            out.push_str(&format!(
                "{:<14} {:>18} {:>8} {:>14} {:>16}\n",
                stage.stage.name(),
                stage.outcome_cell(),
                stage.epochs.len(),
                stage.requests_issued,
                format!("{scheduled}/{observed}")
            ));
        }
        let lost = self.total_commands_lost();
        if lost > 0 {
            out.push_str(&format!(
                "Control plane: {lost} command(s) lost in transit (Table 2's scheduled vs. \
                 received gap).\n"
            ));
        }
        if !self.inference.notes.is_empty() {
            out.push_str("Inferences:\n");
            for note in &self.inference.notes {
                out.push_str(&format!("  - {note}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MfcConfig;
    use crate::inference::InferenceReport;
    use mfc_simcore::SimDuration;

    fn epoch(crowd: usize, detector: f64, check: bool) -> EpochSummary {
        EpochSummary {
            index: 1,
            crowd_size: crowd,
            requests_scheduled: crowd,
            requests_observed: crowd,
            detector_ms: detector,
            median_ms: detector,
            check_phase: check,
            commands_lost: 1,
            arrival_spread_90: Some(SimDuration::from_millis(200)),
            group_median_ms: Vec::new(),
            error_rate: 0.0,
            client_goodput_median: None,
            client_goodput_cov: None,
            aggregate_goodput: None,
            link_capacity: None,
            background_rate: None,
            baseline_drift_ms: None,
            surge_suspected: false,
        }
    }

    fn sample_report() -> MfcReport {
        let stages = vec![
            StageReport {
                stage: Stage::Base,
                outcome: StageOutcome::Stopped { crowd_size: 25 },
                epochs: vec![
                    epoch(10, 20.0, false),
                    epoch(25, 140.0, false),
                    epoch(25, 150.0, true),
                ],
                requests_issued: 60,
            },
            StageReport {
                stage: Stage::SmallQuery,
                outcome: StageOutcome::NoStop {
                    max_crowd_tested: 55,
                },
                epochs: vec![epoch(10, 5.0, false), epoch(55, 30.0, false)],
                requests_issued: 65,
            },
            StageReport::skipped(Stage::LargeObject),
        ];
        let inference = InferenceReport::from_stages(&stages, &MfcConfig::standard());
        MfcReport {
            threshold_ms: 100.0,
            requests_per_client: 1,
            clients_registered: 55,
            total_requests: 125,
            stages,
            inference,
        }
    }

    #[test]
    fn accessors_find_stages() {
        let report = sample_report();
        assert_eq!(report.stopping_crowd(Stage::Base), Some(25));
        assert_eq!(report.stopping_crowd(Stage::SmallQuery), None);
        assert!(report.stage(Stage::LargeObject).is_some());
        assert_eq!(
            report.stage(Stage::LargeObject).unwrap().outcome,
            StageOutcome::Skipped
        );
    }

    #[test]
    fn outcome_cells_match_paper_notation() {
        let report = sample_report();
        assert_eq!(report.stages[0].outcome_cell(), "25");
        assert_eq!(report.stages[1].outcome_cell(), "NoStop (55)");
        assert_eq!(report.stages[2].outcome_cell(), "skipped");
    }

    #[test]
    fn detector_series_excludes_check_epochs() {
        let report = sample_report();
        let series = report.stages[0].detector_series();
        assert_eq!(series, vec![(10, 20.0), (25, 140.0)]);
    }

    #[test]
    fn text_rendering_contains_all_stages_and_notes() {
        let report = sample_report();
        let text = report.render_text();
        assert!(text.contains("Base"));
        assert!(text.contains("Small Query"));
        assert!(text.contains("NoStop (55)"));
        assert!(text.contains("Inferences:"));
        assert!(text.contains("threshold 100 ms"));
        // The control-plane gap is auditable from the report text.
        assert!(text.contains("Sched/Observed"));
        assert!(text.contains("5 command(s) lost"));
    }

    #[test]
    fn commands_lost_aggregate_across_stages_and_epochs() {
        let report = sample_report();
        // Five epochs across the two run stages, one lost command each.
        assert_eq!(report.total_commands_lost(), 5);
        assert_eq!(report.stages[0].commands_lost(), 3);
        let (scheduled, observed) = report.stages[0].scheduled_vs_observed();
        assert_eq!(scheduled, 60);
        assert_eq!(observed, 60);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = sample_report();
        let json = serde_json::to_string(&report);
        // serde_json is only a dev/bench dependency elsewhere; here we only
        // check that the Serialize impls are wired up, so accept either.
        assert!(json.is_ok());
    }
}
