//! Target content profiling and classification.
//!
//! Before probing a non-cooperating server, the MFC coordinator crawls the
//! target site and classifies the objects it discovers by content type
//! (text, binaries, images, queries — using file-name extensions and the
//! presence of a `?`) and by size into two groups (paper §2.2.1):
//!
//! * **Large Objects** — static files of at least 100 KB, big enough for
//!   TCP to exit slow start and saturate the path, used by the Large Object
//!   stage;
//! * **Small Queries** — dynamically generated URLs whose responses are
//!   under 15 KB, cheap to transfer but expensive to produce, used by the
//!   Small Query stage.
//!
//! The Base stage needs no profiling: it issues HEAD requests for the base
//! page.
//!
//! Two sources feed the classifier: the simulated server's
//! [`ContentCatalog`] (the stand-in for a crawl of a modelled site), and a
//! [`LiveCrawler`] that fetches a real base page over HTTP, follows its
//! links and sizes each object with HEAD/GET requests.

use mfc_http::{Client, Method, Url};
use mfc_webserver::{ContentCatalog, ObjectKind};
use serde::{Deserialize, Serialize};

use crate::types::{ProbeMethod, RequestSpec, Stage};

/// Lower bound for the Large Objects group (paper §2.2.1).
pub const LARGE_OBJECT_MIN_BYTES: u64 = 100 * 1024;

/// Upper bound for the Small Queries group (paper §2.2.1).
pub const SMALL_QUERY_MAX_BYTES: u64 = 15 * 1024;

/// Content classes used by the profiler's heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentClass {
    /// Regular text content (`.html`, `.txt`, `.php` without a query, …).
    Text,
    /// Binary downloads (`.pdf`, `.exe`, `.tar.gz`, `.zip`, `.iso`, media).
    Binary,
    /// Images (`.gif`, `.jpg`, `.jpeg`, `.png`).
    Image,
    /// Dynamically generated content (URL contains a `?`).
    Query,
    /// Anything else.
    Other,
}

/// Classifies a URL path with the paper's file-extension + `?` heuristics.
///
/// # Examples
///
/// ```
/// use mfc_core::profile::{classify_path, ContentClass};
///
/// assert_eq!(classify_path("/docs/report.pdf"), ContentClass::Binary);
/// assert_eq!(classify_path("/index.html"), ContentClass::Text);
/// assert_eq!(classify_path("/banner.jpg"), ContentClass::Image);
/// assert_eq!(classify_path("/search?q=x"), ContentClass::Query);
/// assert_eq!(classify_path("/weird.xyz"), ContentClass::Other);
/// ```
pub fn classify_path(path: &str) -> ContentClass {
    if path.contains('?') {
        return ContentClass::Query;
    }
    let lower = path.to_ascii_lowercase();
    let extension = lower.rsplit('/').next().and_then(|name| {
        // `.tar.gz`-style double extensions: match on the longest suffix we
        // know about first.
        if name.ends_with(".tar.gz") || name.ends_with(".tar.bz2") {
            Some("tar.gz")
        } else {
            name.rsplit_once('.').map(|(_, ext)| ext)
        }
    });
    match extension {
        Some("html") | Some("htm") | Some("txt") | Some("css") | Some("js") | Some("xml")
        | Some("php") | Some("asp") | Some("jsp") => ContentClass::Text,
        Some("pdf") | Some("exe") | Some("zip") | Some("gz") | Some("tar.gz") | Some("bz2")
        | Some("iso") | Some("dmg") | Some("bin") | Some("msi") | Some("rpm") | Some("deb")
        | Some("mp3") | Some("mp4") | Some("avi") | Some("mov") | Some("wmv") => {
            ContentClass::Binary
        }
        Some("gif") | Some("jpg") | Some("jpeg") | Some("png") | Some("bmp") | Some("ico") => {
            ContentClass::Image
        }
        _ => ContentClass::Other,
    }
}

/// One discovered object: its path, classification and reported size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// Site-relative path, including any query string.
    pub path: String,
    /// Classification from [`classify_path`].
    pub class: ContentClass,
    /// Response size in bytes, from a HEAD request (files) or a GET
    /// (queries), as the paper's profiler does.
    pub size_bytes: u64,
}

impl ObjectInfo {
    /// Whether this object belongs in the Large Objects group.
    pub fn is_large_object(&self) -> bool {
        self.class != ContentClass::Query && self.size_bytes >= LARGE_OBJECT_MIN_BYTES
    }

    /// Whether this object belongs in the Small Queries group.
    pub fn is_small_query(&self) -> bool {
        self.class == ContentClass::Query && self.size_bytes <= SMALL_QUERY_MAX_BYTES
    }
}

/// The result of profiling a target: everything the coordinator needs to
/// build per-stage request assignments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetProfile {
    /// Path of the base page (HEAD target for the Base stage).
    pub base_page: String,
    /// Large Objects, largest first.
    pub large_objects: Vec<ObjectInfo>,
    /// Small Queries, in discovery order.
    pub small_queries: Vec<ObjectInfo>,
    /// Everything discovered, for reporting.
    pub all_objects: Vec<ObjectInfo>,
}

impl TargetProfile {
    /// Builds a profile from a list of discovered objects.
    pub fn from_objects(base_page: impl Into<String>, objects: Vec<ObjectInfo>) -> Self {
        let mut large_objects: Vec<ObjectInfo> = objects
            .iter()
            .filter(|o| o.is_large_object())
            .cloned()
            .collect();
        // Prefer the largest object: the paper wants transfers long enough
        // to exit slow start and hold the link busy.
        large_objects.sort_by_key(|o| std::cmp::Reverse(o.size_bytes));
        let small_queries: Vec<ObjectInfo> = objects
            .iter()
            .filter(|o| o.is_small_query())
            .cloned()
            .collect();
        TargetProfile {
            base_page: base_page.into(),
            large_objects,
            small_queries,
            all_objects: objects,
        }
    }

    /// Profiles a simulated server's content catalog — the equivalent of
    /// crawling a modelled site (also the path cooperating operators take
    /// when they hand the coordinator a content listing directly).
    pub fn from_catalog(catalog: &ContentCatalog) -> Self {
        let objects: Vec<ObjectInfo> = catalog
            .objects()
            .iter()
            .map(|o| ObjectInfo {
                path: o.path.clone(),
                class: match o.kind {
                    ObjectKind::Text => ContentClass::Text,
                    ObjectKind::Binary => ContentClass::Binary,
                    ObjectKind::Image => ContentClass::Image,
                    ObjectKind::Query => ContentClass::Query,
                },
                size_bytes: o.size_bytes,
            })
            .collect();
        TargetProfile::from_objects(catalog.base_page().path.clone(), objects)
    }

    /// Whether the given stage can be run against this target at all.
    pub fn supports(&self, stage: Stage) -> bool {
        match stage {
            Stage::Base => true,
            Stage::SmallQuery => !self.small_queries.is_empty(),
            Stage::LargeObject => !self.large_objects.is_empty(),
        }
    }

    /// The request the `k`-th participant of an epoch should issue for the
    /// given stage (paper §2.2.2):
    ///
    /// * Base — everyone HEADs the base page;
    /// * Small Query — each client gets a *unique* query when enough
    ///   distinct queries were discovered, otherwise everyone issues the
    ///   same one;
    /// * Large Object — everyone GETs the *same* (largest) object, so the
    ///   response is served from cache and only the link is exercised.
    pub fn request_for(&self, stage: Stage, participant_index: usize) -> Option<RequestSpec> {
        match stage {
            Stage::Base => Some(RequestSpec {
                method: ProbeMethod::Head,
                path: self.base_page.clone(),
                stage,
                expected_bytes: 0,
            }),
            Stage::SmallQuery => {
                if self.small_queries.is_empty() {
                    return None;
                }
                let object = &self.small_queries[participant_index % self.small_queries.len()];
                Some(RequestSpec {
                    method: ProbeMethod::Get,
                    path: object.path.clone(),
                    stage,
                    expected_bytes: object.size_bytes,
                })
            }
            Stage::LargeObject => {
                let object = self.large_objects.first()?;
                Some(RequestSpec {
                    method: ProbeMethod::Get,
                    path: object.path.clone(),
                    stage,
                    expected_bytes: object.size_bytes,
                })
            }
        }
    }
}

/// A crawler that profiles a *live* HTTP target.
///
/// It fetches the base page, extracts `href="…"` references, keeps
/// same-site ones, and sizes each discovered object with a HEAD request
/// (static content) or a GET (queries), mirroring the paper's profiler.
#[derive(Debug, Clone)]
pub struct LiveCrawler {
    client: Client,
    /// Upper bound on the number of links that will be sized.
    pub max_objects: usize,
}

impl Default for LiveCrawler {
    fn default() -> Self {
        LiveCrawler {
            client: Client::default(),
            max_objects: 256,
        }
    }
}

impl LiveCrawler {
    /// Creates a crawler using the given HTTP client.
    pub fn new(client: Client, max_objects: usize) -> Self {
        LiveCrawler {
            client,
            max_objects,
        }
    }

    /// Crawls the target rooted at `base_url` and builds its profile.
    pub fn crawl(&self, base_url: &Url) -> Result<TargetProfile, mfc_http::HttpError> {
        let base_response = self.client.get(base_url)?;
        let body = String::from_utf8_lossy(&base_response.body);
        let mut objects = Vec::new();
        for reference in extract_hrefs(&body).into_iter().take(self.max_objects) {
            // Only same-site, site-relative references are considered; the
            // MFC must not be aimed at third-party hosts.
            if !reference.starts_with('/') {
                continue;
            }
            let url = base_url.join(&reference);
            let class = classify_path(&reference);
            let size = if class == ContentClass::Query {
                self.client
                    .get(&url)
                    .map(|r| r.body.len() as u64)
                    .unwrap_or(0)
            } else {
                self.client
                    .head(&url)
                    .ok()
                    .and_then(|r| r.content_length())
                    .map(|n| n as u64)
                    .unwrap_or(0)
            };
            objects.push(ObjectInfo {
                path: reference,
                class,
                size_bytes: size,
            });
        }
        Ok(TargetProfile::from_objects(
            base_url.path_and_query(),
            objects,
        ))
    }

    /// The underlying client (exposed so callers can reuse its timeouts).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Issues a single timed fetch — a convenience passthrough used by the
    /// live backend.
    pub fn fetch(&self, method: Method, url: &Url) -> mfc_http::FetchResult {
        self.client.fetch_timed(method, url)
    }
}

/// Extracts the values of `href="…"` attributes from an HTML document.
///
/// A full HTML parser is unnecessary: the profiler only needs anchor
/// targets, and both the real sites of 2007 and our `mfc-httpd` emit plain
/// double-quoted attributes.
pub fn extract_hrefs(html: &str) -> Vec<String> {
    let mut refs = Vec::new();
    let mut rest = html;
    while let Some(pos) = rest.find("href=\"") {
        rest = &rest[pos + 6..];
        if let Some(end) = rest.find('"') {
            let target = &rest[..end];
            if !target.is_empty() {
                refs.push(target.to_string());
            }
            rest = &rest[end..];
        } else {
            break;
        }
    }
    refs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_heuristics() {
        assert_eq!(classify_path("/a/b/index.html"), ContentClass::Text);
        assert_eq!(classify_path("/a/readme.txt"), ContentClass::Text);
        assert_eq!(classify_path("/dl/setup.exe"), ContentClass::Binary);
        assert_eq!(classify_path("/dl/data.tar.gz"), ContentClass::Binary);
        assert_eq!(classify_path("/img/logo.PNG"), ContentClass::Image);
        assert_eq!(classify_path("/cgi-bin/search?q=1"), ContentClass::Query);
        assert_eq!(classify_path("/noextension"), ContentClass::Other);
    }

    #[test]
    fn query_beats_extension() {
        // A URL with a query string is dynamic even if it ends in .html.
        assert_eq!(classify_path("/page.html?id=3"), ContentClass::Query);
    }

    #[test]
    fn size_thresholds() {
        let big = ObjectInfo {
            path: "/a.bin".into(),
            class: ContentClass::Binary,
            size_bytes: LARGE_OBJECT_MIN_BYTES,
        };
        assert!(big.is_large_object());
        let small_query = ObjectInfo {
            path: "/q?x=1".into(),
            class: ContentClass::Query,
            size_bytes: SMALL_QUERY_MAX_BYTES,
        };
        assert!(small_query.is_small_query());
        let big_query = ObjectInfo {
            path: "/q?x=2".into(),
            class: ContentClass::Query,
            size_bytes: SMALL_QUERY_MAX_BYTES + 1,
        };
        assert!(!big_query.is_small_query());
        assert!(
            !big_query.is_large_object(),
            "queries are never Large Objects"
        );
    }

    #[test]
    fn profile_from_catalog_finds_both_groups() {
        let catalog = ContentCatalog::typical_site(5);
        let profile = TargetProfile::from_catalog(&catalog);
        assert!(profile.supports(Stage::Base));
        assert!(profile.supports(Stage::SmallQuery));
        assert!(profile.supports(Stage::LargeObject));
        // Large objects are sorted largest-first.
        for pair in profile.large_objects.windows(2) {
            assert!(pair[0].size_bytes >= pair[1].size_bytes);
        }
    }

    #[test]
    fn request_assignment_rules() {
        let catalog = ContentCatalog::typical_site(6);
        let profile = TargetProfile::from_catalog(&catalog);

        // Base: HEAD of the base page for everyone.
        let base0 = profile.request_for(Stage::Base, 0).unwrap();
        let base9 = profile.request_for(Stage::Base, 9).unwrap();
        assert_eq!(base0, base9);
        assert_eq!(base0.method, ProbeMethod::Head);

        // Large Object: the same (largest) object for everyone.
        let lo0 = profile.request_for(Stage::LargeObject, 0).unwrap();
        let lo7 = profile.request_for(Stage::LargeObject, 7).unwrap();
        assert_eq!(lo0.path, lo7.path);
        assert_eq!(lo0.expected_bytes, profile.large_objects[0].size_bytes);

        // Small Query: distinct queries for distinct participants while
        // enough are available.
        let q0 = profile.request_for(Stage::SmallQuery, 0).unwrap();
        let q1 = profile.request_for(Stage::SmallQuery, 1).unwrap();
        assert_ne!(q0.path, q1.path);
        // Wraps around when the crowd exceeds the number of queries.
        let wrap = profile.request_for(Stage::SmallQuery, profile.small_queries.len());
        assert_eq!(wrap.unwrap().path, q0.path);
    }

    #[test]
    fn unsupported_stages_return_none() {
        let profile = TargetProfile::from_objects(
            "/index.html",
            vec![ObjectInfo {
                path: "/only.html".into(),
                class: ContentClass::Text,
                size_bytes: 2_000,
            }],
        );
        assert!(!profile.supports(Stage::LargeObject));
        assert!(!profile.supports(Stage::SmallQuery));
        assert!(profile.request_for(Stage::LargeObject, 0).is_none());
        assert!(profile.request_for(Stage::SmallQuery, 0).is_none());
        assert!(profile.request_for(Stage::Base, 0).is_some());
    }

    #[test]
    fn href_extraction() {
        let html = r#"
            <html><body>
            <a href="/a.html">a</a>
            <a href="/big.tar.gz">big</a>
            <a href="http://elsewhere.example/x">external</a>
            <a href="">empty</a>
            <a href="/q?x=1">query</a>
            </body></html>
        "#;
        let refs = extract_hrefs(html);
        assert_eq!(
            refs,
            vec![
                "/a.html",
                "/big.tar.gz",
                "http://elsewhere.example/x",
                "/q?x=1"
            ]
        );
    }

    #[test]
    fn href_extraction_handles_unterminated_attribute() {
        let html = r#"<a href="/ok"><a href="/broken"#;
        assert_eq!(extract_hrefs(html), vec!["/ok"]);
    }
}
