//! Core vocabulary types shared by the coordinator, backends and reports.

use mfc_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies one participating MFC client (a PlanetLab host in the paper,
/// a simulated or thread-backed client here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u32);

/// The three probing stages of an MFC experiment (paper §2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// HEAD requests for the base page: basic HTTP request processing.
    Base,
    /// GETs of small dynamically generated objects: the back-end data
    /// processing sub-system.
    SmallQuery,
    /// GETs of the same large static object: the outbound access link.
    LargeObject,
}

impl Stage {
    /// All stages in the order the paper runs them.
    pub const ALL: [Stage; 3] = [Stage::Base, Stage::SmallQuery, Stage::LargeObject];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Base => "Base",
            Stage::SmallQuery => "Small Query",
            Stage::LargeObject => "Large Object",
        }
    }

    /// The server sub-system this stage is designed to exercise.
    pub fn target_subsystem(self) -> &'static str {
        match self {
            Stage::Base => "HTTP request processing",
            Stage::SmallQuery => "back-end data processing (database / dynamic handler)",
            Stage::LargeObject => "outbound access bandwidth",
        }
    }

    /// The detection quantile the coordinator applies to normalized response
    /// times in this stage: the median for Base and Small Query, the 90th
    /// percentile for Large Object (paper §2.2.3, to avoid mistaking shared
    /// wide-area bottlenecks for the server's own access link).
    pub fn detection_quantile(self) -> f64 {
        match self {
            Stage::Base | Stage::SmallQuery => 0.5,
            Stage::LargeObject => 0.9,
        }
    }
}

/// The HTTP method of an MFC request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeMethod {
    /// `GET` — used by the Small Query and Large Object stages.
    Get,
    /// `HEAD` — used by the Base stage.
    Head,
}

/// One concrete request an MFC client can be commanded to make.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Method to use.
    pub method: ProbeMethod,
    /// Site-relative path (possibly with a query string).
    pub path: String,
    /// Stage this request belongs to (decides how the server model treats
    /// it and which detector the coordinator applies).
    pub stage: Stage,
    /// Expected response size in bytes, from the profiling step; used for
    /// sanity checks and reporting only.
    pub expected_bytes: u64,
}

/// A command for one client in one epoch: which request to fire and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestCommand {
    /// The client being commanded.
    pub client: ClientId,
    /// The request it should issue.
    pub request: RequestSpec,
    /// When the coordinator transmits the command, relative to the epoch
    /// origin (already compensated for coordinator→client and
    /// client→target delays by the scheduler).
    pub send_offset: SimDuration,
    /// The instant (relative to the epoch origin) at which the request's
    /// first byte is intended to arrive at the target.
    pub intended_arrival: SimDuration,
}

/// Everything a backend needs to execute one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochPlan {
    /// Stage the epoch belongs to.
    pub stage: Stage,
    /// Monotonically increasing epoch number within the stage (check-phase
    /// epochs reuse the number of the epoch that triggered them).
    pub index: u32,
    /// Per-client commands.
    pub commands: Vec<RequestCommand>,
    /// Client-side timeout: a request not fully answered within this time is
    /// killed and reported as an error with this response time.
    pub timeout: SimDuration,
}

impl EpochPlan {
    /// Number of participating clients (the crowd size), counting each
    /// client once even under MFC-mr (which issues several requests per
    /// client).
    pub fn crowd_size(&self) -> usize {
        let mut clients: Vec<ClientId> = self.commands.iter().map(|c| c.client).collect();
        clients.sort_unstable();
        clients.dedup();
        clients.len()
    }

    /// Total number of requests the epoch will fire at the target.
    pub fn request_count(&self) -> usize {
        self.commands.len()
    }
}

/// Completion status of one client's request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeStatus {
    /// A complete response with a success status was received.
    Ok,
    /// A complete response with an error status (4xx/5xx) was received.
    HttpError(u16),
    /// The TCP connection was refused or reset before any HTTP response —
    /// a listen-queue overflow at the target.  Remotely distinguishable
    /// from an HTTP error (no status line ever arrives), and kept distinct
    /// so that genuine connection-capacity exhaustion is not mistaken for
    /// a 503-shedding *defense* by the inference layer.
    ConnectionRefused,
    /// The request was killed by the client-side timeout.
    TimedOut,
    /// The command never reached the client (lost control message) or the
    /// connection failed outright.
    Failed,
}

impl ProbeStatus {
    /// Whether a usable response-time sample was produced.  Timed-out
    /// requests still contribute a (pessimistic) sample, as in the paper;
    /// lost commands do not.
    pub fn produced_sample(self) -> bool {
        !matches!(self, ProbeStatus::Failed)
    }
}

/// One client's report for one request in one epoch — the
/// `(client ID, HTTP code, numbytes, response time)` tuple of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientObservation {
    /// Reporting client.
    pub client: ClientId,
    /// The client's vantage group (clients behind one shared transit
    /// bottleneck).  Zero when the backend has no topology information —
    /// live clients know their own group no better than the paper's
    /// PlanetLab hosts did, but the coordinator can cluster by RTT there.
    pub group: u32,
    /// Completion status.
    pub status: ProbeStatus,
    /// Body bytes received.
    pub bytes: u64,
    /// Observed response time for this request.
    pub response_time: SimDuration,
    /// The same client's base (unloaded) response time for the same
    /// request, measured before the epochs started.
    pub base_response_time: SimDuration,
}

impl ClientObservation {
    /// The normalized response time: observed minus base, floored at zero
    /// (paper §2.2.3).
    pub fn normalized(&self) -> SimDuration {
        self.response_time.saturating_sub(self.base_response_time)
    }
}

/// What a backend reports after executing an [`EpochPlan`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpochObservation {
    /// One entry per issued request that produced any result.
    pub observations: Vec<ClientObservation>,
    /// Arrival times of the epoch's requests at the target, when the target
    /// (or its operator) makes logs available: always in simulation, and in
    /// live mode when the target is an instrumented `mfc-httpd`.
    pub target_arrivals: Vec<SimTime>,
    /// Number of commands whose control message was lost before reaching a
    /// client.
    pub lost_commands: u32,
    /// Number of non-MFC (background) requests the target served while the
    /// epoch ran, when known.
    pub background_requests: u64,
    /// Server-side resource usage during the epoch, when the target is
    /// instrumented (always available in simulation; the paper obtained the
    /// equivalent from `atop` on cooperating servers, §3.2).
    pub server_utilization: Option<mfc_webserver::UtilizationReport>,
}

impl EpochObservation {
    /// Normalized response times of every observation that produced a
    /// sample, in milliseconds (the unit the detector thresholds use).
    pub fn normalized_ms(&self) -> Vec<f64> {
        self.observations
            .iter()
            .filter(|o| o.status.produced_sample())
            .map(|o| o.normalized().as_millis_f64())
            .collect()
    }
}

/// Summary of one executed epoch kept in the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSummary {
    /// Epoch number within the stage.
    pub index: u32,
    /// Crowd size (distinct clients).
    pub crowd_size: usize,
    /// Requests scheduled by the coordinator.
    pub requests_scheduled: usize,
    /// Requests that produced a response-time sample.
    pub requests_observed: usize,
    /// The detector statistic (median or 90th percentile of normalized
    /// response times) in milliseconds.
    pub detector_ms: f64,
    /// Median normalized response time in milliseconds (reported for every
    /// stage regardless of the detector used).
    pub median_ms: f64,
    /// Whether this epoch was part of a check phase.
    pub check_phase: bool,
    /// Commands whose control message never reached a client (the
    /// "scheduled vs. received" gap of Table 2) — `requests_scheduled −
    /// requests_observed` also counts client-side failures, so the lost
    /// control messages are recorded separately to keep lossy-control runs
    /// auditable from the report alone.
    pub commands_lost: u32,
    /// Spread of the middle 90% of target arrival times, when logs were
    /// available (Table 2's synchronization metric).
    pub arrival_spread_90: Option<SimDuration>,
    /// Median normalized response time per vantage group, as `(group,
    /// median ms)` pairs for every group that produced samples.  Empty
    /// when the population has a single (or unknown) group.  The
    /// inference layer reads a *skewed* profile — one group far above the
    /// threshold while the rest sit flat — as congestion on that group's
    /// shared path rather than a constraint at the server.
    pub group_median_ms: Vec<(u32, f64)>,
    /// Fraction of produced samples that were HTTP *server* errors (5xx —
    /// what a shedding defense sends; 4xx client errors and TCP refusals
    /// are excluded).  A spike here with a *low* detector statistic is the
    /// fingerprint of a load-shedding defense: 503s come back fast, so the
    /// response-time detector alone reads a shedding server as healthy.
    pub error_rate: f64,
    /// Median per-client goodput (body bytes / response time, bytes/s) over
    /// successful responses with a body; `None` when no such response.
    pub client_goodput_median: Option<f64>,
    /// Coefficient of variation of the per-client goodputs.  Near zero
    /// means every client's throughput clamped to one common ceiling.
    pub client_goodput_cov: Option<f64>,
    /// Sum of the per-client goodputs — for a synchronized burst this
    /// estimates the aggregate throughput the server actually delivered
    /// while the transfers overlapped.
    pub aggregate_goodput: Option<f64>,
    /// The target's aggregate outbound link capacity in bytes/s, when the
    /// target is instrumented (simulation, or a cooperating operator).
    pub link_capacity: Option<f64>,
    /// Background (non-MFC) requests per second the target served during
    /// the epoch window, when the target reports it (simulation, or a
    /// cooperating operator's access log — the "Other Traffic" column of
    /// the paper's §4 tables, per epoch).  The inference layer compares the
    /// evidence epochs' rate against the stage's baseline: a surge
    /// coinciding with the triggering epochs confounds the verdict.
    pub background_rate: Option<f64>,
    /// The 10th percentile of the epoch's normalized response times, in
    /// milliseconds — a *baseline-drift* observable.  The base response
    /// times were calibrated before the stage started; if even the fastest
    /// clients in an epoch sit far above their calibrated base, the
    /// server's unloaded operating point has moved (background load, a
    /// capacity change) since calibration, independent of any crowd-size
    /// effect.
    pub baseline_drift_ms: Option<f64>,
    /// Set by the coordinator's quiescence policy when this epoch ran
    /// inside a detected background-load surge window.  Flagged epochs are
    /// kept in the report for audit; with retries enabled the coordinator
    /// re-runs the epoch after a backoff.
    pub surge_suspected: bool,
}

/// How a stage ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageOutcome {
    /// A confirmed, persistent degradation was observed at the given crowd
    /// size (the *stopping crowd size*).
    Stopped {
        /// Crowd size at which the check phase confirmed the degradation.
        crowd_size: usize,
    },
    /// The stage reached the maximum crowd size without a confirmed
    /// degradation — the paper's "NoStop": the sub-system is labelled
    /// unconstrained at the tested load.
    NoStop {
        /// Largest crowd size that was actually tested.
        max_crowd_tested: usize,
    },
    /// The stage could not be run (for example, the profiler found no
    /// object of the required class on the target).
    Skipped,
}

impl StageOutcome {
    /// The stopping crowd size, if the stage stopped.
    pub fn stopping_crowd(self) -> Option<usize> {
        match self {
            StageOutcome::Stopped { crowd_size } => Some(crowd_size),
            _ => None,
        }
    }

    /// True if the stage found no constraint.
    pub fn is_no_stop(self) -> bool {
        matches!(self, StageOutcome::NoStop { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_metadata() {
        assert_eq!(Stage::ALL.len(), 3);
        assert_eq!(Stage::Base.detection_quantile(), 0.5);
        assert_eq!(Stage::SmallQuery.detection_quantile(), 0.5);
        assert_eq!(Stage::LargeObject.detection_quantile(), 0.9);
        assert_eq!(Stage::Base.name(), "Base");
        assert!(Stage::LargeObject.target_subsystem().contains("bandwidth"));
    }

    #[test]
    fn normalized_response_time_floors_at_zero() {
        let obs = ClientObservation {
            client: ClientId(1),
            group: 0,
            status: ProbeStatus::Ok,
            bytes: 10,
            response_time: SimDuration::from_millis(80),
            base_response_time: SimDuration::from_millis(100),
        };
        assert_eq!(obs.normalized(), SimDuration::ZERO);
        let obs = ClientObservation {
            response_time: SimDuration::from_millis(250),
            ..obs
        };
        assert_eq!(obs.normalized(), SimDuration::from_millis(150));
    }

    #[test]
    fn epoch_plan_counts_distinct_clients() {
        let spec = RequestSpec {
            method: ProbeMethod::Get,
            path: "/x".into(),
            stage: Stage::LargeObject,
            expected_bytes: 100,
        };
        let command = |client: u32| RequestCommand {
            client: ClientId(client),
            request: spec.clone(),
            send_offset: SimDuration::ZERO,
            intended_arrival: SimDuration::from_secs(15),
        };
        // MFC-mr style: two requests per client.
        let plan = EpochPlan {
            stage: Stage::LargeObject,
            index: 3,
            commands: vec![command(1), command(1), command(2), command(2)],
            timeout: SimDuration::from_secs(10),
        };
        assert_eq!(plan.crowd_size(), 2);
        assert_eq!(plan.request_count(), 4);
    }

    #[test]
    fn probe_status_sampling_rules() {
        assert!(ProbeStatus::Ok.produced_sample());
        assert!(ProbeStatus::TimedOut.produced_sample());
        assert!(ProbeStatus::HttpError(503).produced_sample());
        assert!(ProbeStatus::ConnectionRefused.produced_sample());
        assert!(!ProbeStatus::Failed.produced_sample());
    }

    #[test]
    fn epoch_observation_filters_failed_commands() {
        let make = |status, ms| ClientObservation {
            client: ClientId(0),
            group: 0,
            status,
            bytes: 0,
            response_time: SimDuration::from_millis(ms),
            base_response_time: SimDuration::from_millis(10),
        };
        let obs = EpochObservation {
            observations: vec![
                make(ProbeStatus::Ok, 110),
                make(ProbeStatus::Failed, 500),
                make(ProbeStatus::TimedOut, 10_010),
            ],
            ..EpochObservation::default()
        };
        let normalized = obs.normalized_ms();
        assert_eq!(normalized.len(), 2);
        assert!((normalized[0] - 100.0).abs() < 1e-9);
        assert!((normalized[1] - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn stage_outcome_helpers() {
        assert_eq!(
            StageOutcome::Stopped { crowd_size: 40 }.stopping_crowd(),
            Some(40)
        );
        assert_eq!(
            StageOutcome::NoStop {
                max_crowd_tested: 150
            }
            .stopping_crowd(),
            None
        );
        assert!(StageOutcome::NoStop {
            max_crowd_tested: 55
        }
        .is_no_stop());
        assert!(!StageOutcome::Skipped.is_no_stop());
    }
}
