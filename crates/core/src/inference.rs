//! Turning stage outcomes into resource-provisioning inferences.
//!
//! The MFC is a black-box technique: all it observes is the crowd size at
//! which each request class first causes a persistent response-time
//! degradation.  What the operators actually want is the interpretation the
//! paper layers on top of those numbers:
//!
//! * which *sub-system* (HTTP processing, back-end data processing, access
//!   bandwidth) is the first to be constrained and at what load,
//! * how the sub-systems compare (e.g. "bandwidth is provisioned better
//!   than request handling", the Univ-1/Univ-3 style findings), and
//! * how exposed the site is to low-volume application-level DDoS attacks
//!   (§6: a server whose Small Query stage stops at a small crowd while the
//!   Large Object stage never stops is "highly vulnerable to even the most
//!   simple application-level attacks on the back-end data processing
//!   subsystem").

use serde::{Deserialize, Serialize};

use crate::config::MfcConfig;
use crate::report::StageReport;
use crate::types::{EpochSummary, Stage, StageOutcome};

/// The coordinator's verdict for one sub-system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provisioning {
    /// No confirmed degradation up to the tested crowd ceiling.
    Unconstrained {
        /// Largest crowd actually tested.
        tested_up_to: usize,
    },
    /// A confirmed degradation at the given crowd size.
    ConstrainedAt {
        /// The stopping crowd size.
        crowd: usize,
    },
    /// The stage could not be evaluated (no suitable content, not run).
    Unknown,
}

impl Provisioning {
    /// A coarse ranking used to compare sub-systems: higher is better
    /// provisioned.  Unconstrained sub-systems rank above any constrained
    /// one; among constrained ones a larger stopping crowd ranks higher.
    fn rank(self) -> Option<usize> {
        match self {
            Provisioning::Unconstrained { tested_up_to } => {
                Some(usize::MAX - 1_000 + tested_up_to.min(999))
            }
            Provisioning::ConstrainedAt { crowd } => Some(crowd),
            Provisioning::Unknown => None,
        }
    }
}

/// What a stage's outcome is attributed to once the defense and path
/// fingerprints are taken into account.
///
/// The paper's methodology assumes the target is *static* and the network
/// transparent: any persistent response-time degradation is read as a
/// resource constraint at the server.  Three mechanisms break that
/// assumption, and each leaves a distinct mark in the per-epoch
/// observables:
///
/// * a **per-client rate limiter** clamps every probe client's throughput
///   to one common ceiling, so response times blow past θ while the
///   server's aggregate link sits nearly idle — the MFC would report a
///   bandwidth constraint that is not there;
/// * a **load-shedding** defense answers the excess crowd with fast 503s,
///   which the response-time detector reads as a *healthy* server — the
///   MFC would report NoStop for a site that is refusing service;
/// * a **shared path bottleneck** (an undersized transit link in front of
///   one vantage group) inflates that group's response times no matter how
///   well the server is provisioned — the central §2.2.3 hazard the
///   per-group medians exist to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationCause {
    /// The degradation pattern matches a genuine resource constraint.
    ResourceConstraint,
    /// The degradation bears the per-client rate-limit signature: client
    /// goodputs clamp to a common ceiling (low dispersion) while the
    /// delivered aggregate stays far below the known link capacity.
    ///
    /// The signature is necessary but not sufficient: a non-link bottleneck
    /// that serializes large transfers while a fat link idles (a CPU- or
    /// disk-starved file server) produces the same remote observables.
    /// Treat this verdict as "not a bandwidth constraint; most plausibly a
    /// per-client limiter", and cross-check the server-side utilization
    /// report where one is available.
    RateLimitDefense,
    /// The outcome is dominated by deliberate 503 shedding; for a NoStop
    /// outcome this means the verdict is defense-masked, not healthy.
    LoadSheddingDefense,
    /// The degradation bears the shared-path signature: one (or a
    /// minority of) vantage group's normalized response times rise far
    /// past θ while at least one other group stays flat.  A constraint at
    /// the server — or a per-client rate limiter — hits every group
    /// alike, so a skewed per-group profile localizes the bottleneck to
    /// the affected groups' shared path, not the target.
    PathCongestion,
    /// The evidence epochs coincide with a detected background-load surge:
    /// the server-reported non-MFC request rate during the triggering and
    /// check epochs sits far above the stage's own baseline (or the
    /// coordinator's quiescence policy flagged them).  Whatever the stage
    /// observed — a stop, errors, or even a NoStop — it measured *crowd
    /// plus surge*, not the crowd, so the verdict is confounded and says
    /// nothing about the server's provisioning at normal load.  Re-run the
    /// stage in a quiet window (the quiescence policy automates exactly
    /// that).  Checked before every defense fingerprint: a surge fakes
    /// both the shedding signature (overload 503s) and the rate-limit
    /// clamp (starved uniform goodputs over an idle-looking link).
    BackgroundInterference,
    /// No confirmed degradation and no defense fingerprints.
    NotDegraded,
    /// Not enough evidence (stage skipped, or no epoch produced samples).
    Indeterminate,
}

/// The verdict for one stage / sub-system pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// The stage that produced the verdict.
    pub stage: Stage,
    /// The sub-system the stage exercises.
    pub subsystem: String,
    /// The verdict.
    pub provisioning: Provisioning,
    /// What the outcome is attributed to — a real constraint, or a server
    /// defense reacting to the probe.
    pub cause: DegradationCause,
}

/// Exposure to low-rate application-level denial of service (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DdosExposure {
    /// The back end keels over at a crowd an order of magnitude below what
    /// the bandwidth sustains: a trivially small botnet suffices.
    HighBackendExposure,
    /// At least one sub-system is constrained at the tested loads.
    SomeExposure,
    /// Nothing was constrained up to the tested loads.
    LowExposure,
    /// Not enough information.
    Unknown,
}

/// The full interpretation attached to an MFC report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Per-stage verdicts, in the order the stages were run.
    pub constraints: Vec<Constraint>,
    /// Stages ordered from best to worst provisioned (ties broken by stage
    /// order); only stages that produced a verdict appear.
    pub best_to_worst: Vec<Stage>,
    /// DDoS exposure assessment.
    pub ddos_exposure: DdosExposure,
    /// Human-readable observations, one sentence each.
    pub notes: Vec<String>,
}

impl InferenceReport {
    /// Builds the interpretation from per-stage reports.
    pub fn from_stages(stages: &[StageReport], config: &MfcConfig) -> InferenceReport {
        let constraints: Vec<Constraint> = stages
            .iter()
            .map(|report| Constraint {
                stage: report.stage,
                subsystem: report.stage.target_subsystem().to_string(),
                provisioning: match report.outcome {
                    StageOutcome::Stopped { crowd_size } => {
                        Provisioning::ConstrainedAt { crowd: crowd_size }
                    }
                    StageOutcome::NoStop { max_crowd_tested } => Provisioning::Unconstrained {
                        tested_up_to: max_crowd_tested,
                    },
                    StageOutcome::Skipped => Provisioning::Unknown,
                },
                cause: Self::assess_cause(report, config.threshold.as_millis_f64()),
            })
            .collect();

        let mut ranked: Vec<(Stage, usize)> = constraints
            .iter()
            .filter_map(|c| c.provisioning.rank().map(|r| (c.stage, r)))
            .collect();
        ranked.sort_by_key(|&(_, rank)| std::cmp::Reverse(rank));
        let best_to_worst: Vec<Stage> = ranked.iter().map(|(s, _)| *s).collect();

        let ddos_exposure = Self::assess_ddos(&constraints);
        let notes = Self::notes(&constraints, config);

        InferenceReport {
            constraints,
            best_to_worst,
            ddos_exposure,
            notes,
        }
    }

    /// Finds the verdict for a stage, if that stage was evaluated.
    pub fn provisioning_of(&self, stage: Stage) -> Option<Provisioning> {
        self.constraints
            .iter()
            .find(|c| c.stage == stage)
            .map(|c| c.provisioning)
    }

    /// Finds the attributed cause for a stage, if that stage was evaluated.
    pub fn cause_of(&self, stage: Stage) -> Option<DegradationCause> {
        self.constraints
            .iter()
            .find(|c| c.stage == stage)
            .map(|c| c.cause)
    }

    /// True when any stage's outcome is attributed to a server defense
    /// rather than a resource constraint.
    pub fn defense_suspected(&self) -> bool {
        self.constraints.iter().any(|c| {
            matches!(
                c.cause,
                DegradationCause::RateLimitDefense | DegradationCause::LoadSheddingDefense
            )
        })
    }

    /// True when any stage's degradation is localized to a shared path
    /// bottleneck in front of a subset of vantage groups — i.e. the
    /// stopping crowd says nothing about the target's own provisioning.
    pub fn path_congestion_suspected(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| c.cause == DegradationCause::PathCongestion)
    }

    /// True when any stage's verdict is confounded by a background-load
    /// surge during its evidence epochs: the reported stopping crowd
    /// measures crowd *plus* surge and should be re-measured in a quiet
    /// window.
    pub fn background_interference_suspected(&self) -> bool {
        self.constraints
            .iter()
            .any(|c| c.cause == DegradationCause::BackgroundInterference)
    }

    /// Minimum fraction of HTTP-error samples in the assessed tail epochs
    /// above which an outcome is attributed to load shedding.
    const SHED_RATE_THRESHOLD: f64 = 0.25;
    /// Maximum goodput coefficient of variation for the "everyone clamps
    /// to one ceiling" half of the rate-limit signature.
    const CLAMP_COV_THRESHOLD: f64 = 0.3;
    /// Maximum delivered-aggregate / link-capacity ratio for the "the link
    /// was never the problem" half of the rate-limit signature.
    const CLAMP_HEADROOM_THRESHOLD: f64 = 0.5;
    /// A vantage group counts as *flat* when its median normalized
    /// response time stays below this fraction of θ while another group
    /// exceeds θ — the asymmetry a server-side constraint cannot produce.
    const PATH_FLAT_FRACTION: f64 = 0.25;
    /// An evidence epoch counts as surge-coincident when its background
    /// rate exceeds this multiple of the stage's baseline rate…
    const SURGE_FACTOR: f64 = 3.0;
    /// …and this absolute floor (requests/s), so idle-site noise never
    /// reads as a surge.  Mirrors [`crate::config::QuiescencePolicy`]'s
    /// defaults.
    const SURGE_MIN_RATE: f64 = 1.0;

    /// Attributes a stage outcome by fingerprinting its final epochs.
    fn assess_cause(report: &StageReport, threshold_ms: f64) -> DegradationCause {
        let epochs: Vec<&EpochSummary> = report
            .epochs
            .iter()
            .filter(|e| e.requests_observed > 0)
            .collect();
        if epochs.is_empty() {
            return DegradationCause::Indeterminate;
        }
        // Background-surge confound comes first, before *any* defense
        // fingerprint: a surge that overruns the server produces fast 503s
        // (a fake shedding signature) and starved uniform goodputs over an
        // idle-looking link (a fake rate-limit clamp), so evidence epochs
        // that ran inside a surge must never support a defense
        // attribution — only the interference verdict.  The last three
        // epochs cover the triggering epoch plus its check phase (or, for
        // NoStop, the largest crowds) — the evidence the verdict rests on.
        // The baseline is the lower quartile of the stage's observed
        // background rates, so a surge that *starts mid-run* is caught
        // while steady heavy background (the Univ-3 normality) is not
        // flagged.
        let tail_all = &epochs[epochs.len().saturating_sub(3)..];
        let rates: Vec<f64> = epochs.iter().filter_map(|e| e.background_rate).collect();
        let surged_epochs = |threshold: f64| {
            tail_all
                .iter()
                .filter(|e| {
                    e.surge_suspected || e.background_rate.is_some_and(|rate| rate > threshold)
                })
                .count()
        };
        let evidence = tail_all
            .iter()
            .filter(|e| e.surge_suspected || e.background_rate.is_some())
            .count();
        let surge_detected = if rates.len() >= 2 && evidence > 0 {
            let mut sorted = rates.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
            let baseline = sorted[(sorted.len() - 1) / 4];
            let threshold = (Self::SURGE_FACTOR * baseline).max(Self::SURGE_MIN_RATE);
            surged_epochs(threshold) * 2 > evidence
        } else {
            // No rate data at all, but the coordinator's own quiescence
            // policy may have flagged the evidence epochs.
            evidence > 0 && surged_epochs(f64::INFINITY) * 2 > evidence
        };
        if surge_detected {
            // A surge confounds a *stop* (the stage measured crowd plus
            // surge) and an error-ridden tail (surge-born 503s would
            // otherwise read as an operator defense, or mask a NoStop as
            // healthy).  A clean NoStop straight through the surge is the
            // one honest survivor: the server absorbed even more than the
            // crowd.
            let stopped = matches!(report.outcome, StageOutcome::Stopped { .. });
            let tail_shed =
                tail_all.iter().map(|e| e.error_rate).sum::<f64>() / tail_all.len() as f64;
            if stopped || tail_shed >= Self::SHED_RATE_THRESHOLD {
                return DegradationCause::BackgroundInterference;
            }
        }
        // Everything downstream fingerprints the *clean* epochs only:
        // surge-flagged epochs are known-contaminated evidence.  Without a
        // quiescence policy no epoch is flagged and this is exactly the
        // pre-workload view.
        let clean: Vec<&EpochSummary> = epochs
            .iter()
            .filter(|e| !e.surge_suspected)
            .copied()
            .collect();
        if clean.is_empty() {
            return DegradationCause::BackgroundInterference;
        }
        let tail = &clean[clean.len().saturating_sub(3)..];
        let shed_rate = tail.iter().map(|e| e.error_rate).sum::<f64>() / tail.len() as f64;
        if shed_rate >= Self::SHED_RATE_THRESHOLD {
            return DegradationCause::LoadSheddingDefense;
        }
        let stopped = matches!(report.outcome, StageOutcome::Stopped { .. });
        if !stopped {
            return DegradationCause::NotDegraded;
        }
        // Path localization comes before the rate-limit fingerprint: both
        // leave the server's link idle, but only a path bottleneck is
        // asymmetric across vantage groups (a per-client limiter clamps
        // every group alike).  The verdict needs a strict majority of the
        // evidence epochs that carry group data to show the skew — one
        // group's median past θ while another stays flat.
        let with_groups: Vec<&&EpochSummary> = tail
            .iter()
            .filter(|e| e.group_median_ms.len() > 1)
            .collect();
        if !with_groups.is_empty() {
            let skewed = with_groups
                .iter()
                .filter(|e| {
                    let max = e
                        .group_median_ms
                        .iter()
                        .map(|&(_, m)| m)
                        .fold(f64::NEG_INFINITY, f64::max);
                    let min = e
                        .group_median_ms
                        .iter()
                        .map(|&(_, m)| m)
                        .fold(f64::INFINITY, f64::min);
                    max > threshold_ms && min < Self::PATH_FLAT_FRACTION * threshold_ms
                })
                .count();
            if skewed * 2 > with_groups.len() {
                return DegradationCause::PathCongestion;
            }
        }
        // The clamp signature needs bandwidth-bound transfers, so it is
        // only diagnostic for the Large Object stage.  Any tail epoch
        // bearing the signature suffices — a stray client whose bucket
        // refilled mid-check-phase must not hide the clamp behind one
        // high-variance epoch.  (Under a genuine constraint no epoch shows
        // clamped goodputs *and* link headroom, so this stays safe.)
        if report.stage == Stage::LargeObject {
            let signature = |e: &EpochSummary| match (
                e.client_goodput_cov,
                e.aggregate_goodput,
                e.link_capacity,
            ) {
                (Some(cov), Some(aggregate), Some(capacity)) if capacity > 0.0 => {
                    cov < Self::CLAMP_COV_THRESHOLD
                        && aggregate / capacity < Self::CLAMP_HEADROOM_THRESHOLD
                }
                _ => false,
            };
            if tail.iter().any(|e| signature(e)) {
                // The signature says "everyone clamps to a common ceiling
                // while the measured link idles" — true of a per-client
                // limiter *and* of a shared upstream bottleneck every
                // vantage group traverses (a thin backbone).  The two are
                // still separable by how the ceiling moves with the crowd:
                // a token bucket grants each client a fixed rate regardless
                // of crowd size, while shared bandwidth divides, scaling
                // the per-client goodput like 1/crowd.  Compare the
                // smallest- and largest-crowd epochs that bear the
                // signature; a goodput ratio beyond the geometric midpoint
                // of the crowd ratio is bandwidth division, not a limiter.
                let clamped_epochs: Vec<(usize, f64)> = clean
                    .iter()
                    .filter(|e| signature(e))
                    .filter_map(|e| e.client_goodput_median.map(|m| (e.crowd_size, m)))
                    .collect();
                let small = clamped_epochs.iter().min_by_key(|&&(c, _)| c);
                let large = clamped_epochs.iter().max_by_key(|&&(c, _)| c);
                let divides_like_bandwidth = match (small, large) {
                    (Some(&(c_small, m_small)), Some(&(c_large, m_large)))
                        if c_large >= 2 * c_small && m_large > 0.0 =>
                    {
                        let crowd_ratio = c_large as f64 / c_small as f64;
                        m_small / m_large > crowd_ratio.sqrt()
                    }
                    // Too narrow a crowd span to tell: keep the defense
                    // attribution (the pre-topology behaviour).
                    _ => false,
                };
                if !divides_like_bandwidth {
                    return DegradationCause::RateLimitDefense;
                }
            }
        }
        DegradationCause::ResourceConstraint
    }

    fn assess_ddos(constraints: &[Constraint]) -> DdosExposure {
        let find = |stage: Stage| {
            constraints
                .iter()
                .find(|c| c.stage == stage)
                .map(|c| c.provisioning)
        };
        let small_query = find(Stage::SmallQuery);
        let large_object = find(Stage::LargeObject);
        match (small_query, large_object) {
            (
                Some(Provisioning::ConstrainedAt { crowd }),
                Some(Provisioning::Unconstrained { .. }),
            ) if crowd <= 50 => DdosExposure::HighBackendExposure,
            _ => {
                let any_constrained = constraints
                    .iter()
                    .any(|c| matches!(c.provisioning, Provisioning::ConstrainedAt { .. }));
                let any_known = constraints
                    .iter()
                    .any(|c| c.provisioning != Provisioning::Unknown);
                if any_constrained {
                    DdosExposure::SomeExposure
                } else if any_known {
                    DdosExposure::LowExposure
                } else {
                    DdosExposure::Unknown
                }
            }
        }
    }

    fn notes(constraints: &[Constraint], config: &MfcConfig) -> Vec<String> {
        let mut notes = Vec::new();
        let threshold = config.threshold.as_millis_f64();
        for c in constraints {
            match c.provisioning {
                Provisioning::ConstrainedAt { crowd } => notes.push(format!(
                    "{} stage: {} shows a persistent >{:.0} ms degradation at {} simultaneous requests.",
                    c.stage.name(),
                    c.subsystem,
                    threshold,
                    crowd
                )),
                Provisioning::Unconstrained { tested_up_to } => notes.push(format!(
                    "{} stage: no confirmed degradation up to {} simultaneous requests; {} appears well provisioned at this load.",
                    c.stage.name(),
                    tested_up_to,
                    c.subsystem
                )),
                Provisioning::Unknown => notes.push(format!(
                    "{} stage: not evaluated (no suitable content discovered).",
                    c.stage.name()
                )),
            }
        }

        // Defense fingerprints: where the static-target assumption broke.
        for c in constraints {
            match c.cause {
                DegradationCause::RateLimitDefense => notes.push(format!(
                    "{} stage: the confirmed degradation bears a per-client rate-limit \
                     signature — every client's throughput clamps to one common ceiling while \
                     the access link runs far below capacity.  This is a defense reacting to \
                     the probe, not a {} constraint.",
                    c.stage.name(),
                    c.subsystem
                )),
                DegradationCause::LoadSheddingDefense => match c.provisioning {
                    Provisioning::Unconstrained { .. } => notes.push(format!(
                        "{} stage: the NoStop verdict is defense-masked — a large share of \
                         probes were answered with fast 503s, which the response-time detector \
                         reads as a healthy server.  The site is shedding load, not absorbing it.",
                        c.stage.name()
                    )),
                    _ => notes.push(format!(
                        "{} stage: the outcome is dominated by deliberate 503 load shedding; \
                         the stopping crowd reflects an admission-control policy, not the \
                         capacity of the {}.",
                        c.stage.name(),
                        c.subsystem
                    )),
                },
                DegradationCause::BackgroundInterference => notes.push(format!(
                    "{} stage: the evidence epochs coincide with a background-load surge — \
                     the server's non-MFC request rate sat far above the stage's baseline.  \
                     The outcome measures crowd plus surge, not the {} alone; re-run the \
                     stage in a quiet window.",
                    c.stage.name(),
                    c.subsystem
                )),
                DegradationCause::PathCongestion => notes.push(format!(
                    "{} stage: the confirmed degradation is localized to a subset of vantage \
                     groups — their normalized response times blow past the threshold while \
                     other groups stay flat.  A {} constraint would hit every vantage point \
                     alike; this is congestion on the affected groups' shared path, not a \
                     server bottleneck.",
                    c.stage.name(),
                    c.subsystem
                )),
                DegradationCause::ResourceConstraint
                | DegradationCause::NotDegraded
                | DegradationCause::Indeterminate => {}
            }
        }

        // Comparative observations mirroring the paper's discussions.
        let get = |stage: Stage| {
            constraints
                .iter()
                .find(|c| c.stage == stage)
                .map(|c| c.provisioning)
        };
        if let (Some(Provisioning::ConstrainedAt { crowd: base }), Some(lo)) =
            (get(Stage::Base), get(Stage::LargeObject))
        {
            if matches!(lo, Provisioning::Unconstrained { .. }) {
                notes.push(format!(
                    "Basic request handling degrades at {base} requests while bandwidth does not: \
                     the problem is more likely request handling than bandwidth provisioning."
                ));
            }
        }
        if let (
            Some(Provisioning::ConstrainedAt { crowd: query }),
            Some(Provisioning::Unconstrained { .. }),
        ) = (get(Stage::SmallQuery), get(Stage::LargeObject))
        {
            if query <= 50 {
                notes.push(format!(
                    "The back-end data processing subsystem keels over at only {query} simultaneous \
                     queries while the access link absorbs every tested load: the site is highly \
                     vulnerable to low-volume application-level attacks."
                ));
            }
        }
        notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::StageReport;

    fn stage_report(stage: Stage, outcome: StageOutcome) -> StageReport {
        StageReport {
            stage,
            outcome,
            epochs: Vec::new(),
            requests_issued: 0,
        }
    }

    fn epoch(crowd: usize, error_rate: f64, goodputs: Option<(f64, f64, f64)>) -> EpochSummary {
        let (median, cov, aggregate) = match goodputs {
            Some((m, c, a)) => (Some(m), Some(c), Some(a)),
            None => (None, None, None),
        };
        EpochSummary {
            index: 1,
            crowd_size: crowd,
            requests_scheduled: crowd,
            requests_observed: crowd,
            detector_ms: 500.0,
            median_ms: 500.0,
            check_phase: false,
            commands_lost: 0,
            arrival_spread_90: None,
            group_median_ms: Vec::new(),
            error_rate,
            client_goodput_median: median,
            client_goodput_cov: cov,
            aggregate_goodput: aggregate,
            link_capacity: Some(1_250_000.0),
            background_rate: None,
            baseline_drift_ms: None,
            surge_suspected: false,
        }
    }

    fn config() -> MfcConfig {
        MfcConfig::standard()
    }

    #[test]
    fn verdicts_mirror_outcomes() {
        let stages = vec![
            stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 25 }),
            stage_report(Stage::SmallQuery, StageOutcome::Stopped { crowd_size: 55 }),
            stage_report(
                Stage::LargeObject,
                StageOutcome::NoStop {
                    max_crowd_tested: 55,
                },
            ),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(
            inference.provisioning_of(Stage::Base),
            Some(Provisioning::ConstrainedAt { crowd: 25 })
        );
        assert_eq!(
            inference.provisioning_of(Stage::LargeObject),
            Some(Provisioning::Unconstrained { tested_up_to: 55 })
        );
        // Bandwidth best, then the back end, then base processing.
        assert_eq!(
            inference.best_to_worst,
            vec![Stage::LargeObject, Stage::SmallQuery, Stage::Base]
        );
        assert!(!inference.notes.is_empty());
    }

    #[test]
    fn qtnp_pattern_flags_backend_ddos_exposure() {
        // The QTNP-like pattern: bandwidth NoStop, small query stops below
        // 50 — §6 calls this out as high application-level DDoS exposure.
        let stages = vec![
            stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 25 }),
            stage_report(Stage::SmallQuery, StageOutcome::Stopped { crowd_size: 45 }),
            stage_report(
                Stage::LargeObject,
                StageOutcome::NoStop {
                    max_crowd_tested: 150,
                },
            ),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(inference.ddos_exposure, DdosExposure::HighBackendExposure);
        assert!(inference
            .notes
            .iter()
            .any(|n| n.contains("application-level")));
    }

    #[test]
    fn fully_unconstrained_site_has_low_exposure() {
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                stage_report(
                    s,
                    StageOutcome::NoStop {
                        max_crowd_tested: 75,
                    },
                )
            })
            .collect::<Vec<_>>();
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(inference.ddos_exposure, DdosExposure::LowExposure);
        assert_eq!(inference.best_to_worst.len(), 3);
    }

    #[test]
    fn skipped_stages_are_unknown() {
        let stages = vec![
            stage_report(
                Stage::Base,
                StageOutcome::NoStop {
                    max_crowd_tested: 55,
                },
            ),
            stage_report(Stage::SmallQuery, StageOutcome::Skipped),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(
            inference.provisioning_of(Stage::SmallQuery),
            Some(Provisioning::Unknown)
        );
        assert_eq!(inference.provisioning_of(Stage::LargeObject), None);
        assert!(!inference.best_to_worst.contains(&Stage::SmallQuery));
    }

    #[test]
    fn all_skipped_is_unknown_exposure() {
        let stages = vec![
            stage_report(Stage::SmallQuery, StageOutcome::Skipped),
            stage_report(Stage::LargeObject, StageOutcome::Skipped),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(inference.ddos_exposure, DdosExposure::Unknown);
    }

    fn epoch_with_groups(crowd: usize, medians: &[(u32, f64)]) -> EpochSummary {
        let mut e = epoch(crowd, 0.0, None);
        e.group_median_ms = medians.to_vec();
        e
    }

    #[test]
    fn skewed_group_medians_localize_to_the_path() {
        // Group 0 blows past the 100 ms threshold while groups 1–3 stay
        // flat: a server constraint cannot be that selective.
        let mut report = stage_report(Stage::LargeObject, StageOutcome::Stopped { crowd_size: 20 });
        report.epochs = vec![
            epoch_with_groups(15, &[(0, 900.0), (1, 8.0), (2, 12.0), (3, 6.0)]),
            epoch_with_groups(20, &[(0, 1_400.0), (1, 10.0), (2, 9.0), (3, 11.0)]),
            epoch_with_groups(20, &[(0, 1_500.0), (1, 12.0), (2, 14.0), (3, 8.0)]),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::LargeObject),
            Some(DegradationCause::PathCongestion)
        );
        assert!(inference.path_congestion_suspected());
        assert!(!inference.defense_suspected());
        assert!(inference.notes.iter().any(|n| n.contains("shared path")));
    }

    #[test]
    fn uniform_group_degradation_stays_a_server_constraint() {
        // Every vantage group degrades together: that is the server (or a
        // symmetric defense), not the path.
        let mut report = stage_report(Stage::LargeObject, StageOutcome::Stopped { crowd_size: 20 });
        report.epochs = vec![
            epoch_with_groups(20, &[(0, 700.0), (1, 650.0), (2, 800.0), (3, 720.0)]),
            epoch_with_groups(20, &[(0, 900.0), (1, 840.0), (2, 760.0), (3, 880.0)]),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::LargeObject),
            Some(DegradationCause::ResourceConstraint)
        );
        assert!(!inference.path_congestion_suspected());
    }

    #[test]
    fn path_skew_must_be_consistent_across_the_evidence_epochs() {
        // Only one of three evidence epochs shows the skew — not enough to
        // overturn the server attribution.
        let mut report = stage_report(Stage::LargeObject, StageOutcome::Stopped { crowd_size: 20 });
        report.epochs = vec![
            epoch_with_groups(20, &[(0, 600.0), (1, 500.0)]),
            epoch_with_groups(20, &[(0, 700.0), (1, 10.0)]),
            epoch_with_groups(20, &[(0, 650.0), (1, 620.0)]),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::LargeObject),
            Some(DegradationCause::ResourceConstraint)
        );
    }

    #[test]
    fn clamped_goodputs_over_an_idle_link_read_as_rate_limiting() {
        // 30 clients all at ~16 KB/s (cov 0.05) summing to 480 KB/s on a
        // 1.25 MB/s link: the clamp signature.
        let mut report = stage_report(Stage::LargeObject, StageOutcome::Stopped { crowd_size: 30 });
        report.epochs = vec![
            epoch(10, 0.0, Some((16_384.0, 0.05, 163_840.0))),
            epoch(30, 0.0, Some((16_384.0, 0.05, 491_520.0))),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::LargeObject),
            Some(DegradationCause::RateLimitDefense)
        );
        assert!(inference.defense_suspected());
    }

    #[test]
    fn shared_bandwidth_division_is_not_mistaken_for_a_rate_limiter() {
        // Every epoch bears the clamp signature (uniform goodputs, idle
        // measured link), but the per-client goodput divides like 1/crowd
        // across epochs: that is shared bandwidth upstream of the access
        // link, not a token bucket handing each client a fixed rate.
        let mut report = stage_report(Stage::LargeObject, StageOutcome::Stopped { crowd_size: 40 });
        report.epochs = vec![
            epoch(10, 0.0, Some((50_000.0, 0.05, 500_000.0))),
            epoch(20, 0.0, Some((25_000.0, 0.05, 500_000.0))),
            epoch(40, 0.0, Some((12_500.0, 0.05, 500_000.0))),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::LargeObject),
            Some(DegradationCause::ResourceConstraint),
            "1/crowd goodput division must defeat the clamp fingerprint"
        );
        assert!(!inference.defense_suspected());
    }

    #[test]
    fn saturated_link_reads_as_a_real_constraint() {
        // Fair sharing also yields uniform goodputs — but the aggregate
        // sits at the link capacity, so it is a genuine constraint.
        let mut report = stage_report(Stage::LargeObject, StageOutcome::Stopped { crowd_size: 30 });
        report.epochs = vec![epoch(30, 0.0, Some((40_000.0, 0.08, 1_200_000.0)))];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::LargeObject),
            Some(DegradationCause::ResourceConstraint)
        );
        assert!(!inference.defense_suspected());
    }

    fn epoch_with_background(crowd: usize, rate: f64) -> EpochSummary {
        let mut e = epoch(crowd, 0.0, None);
        e.background_rate = Some(rate);
        e
    }

    #[test]
    fn surge_coincident_stop_reads_as_background_interference() {
        // The stage's baseline background is 0.2 req/s; the triggering and
        // check epochs ran while it surged to 40 req/s.  The stopping
        // crowd measures crowd + surge: confounded.
        let mut report = stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 20 });
        report.epochs = vec![
            epoch_with_background(10, 0.2),
            epoch_with_background(20, 42.0),
            epoch_with_background(19, 38.0),
            epoch_with_background(20, 40.0),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::Base),
            Some(DegradationCause::BackgroundInterference)
        );
        assert!(inference.background_interference_suspected());
        assert!(!inference.defense_suspected());
        assert!(inference.notes.iter().any(|n| n.contains("quiet window")));
    }

    #[test]
    fn surge_overload_errors_are_not_mistaken_for_a_shedding_defense() {
        // The surge overruns the server, so the evidence epochs come back
        // full of fast 503s — the shedding signature, but born of the
        // background surge, not an operator defense.  The surge check must
        // win.
        let surged = |crowd: usize, rate: f64, errors: f64| {
            let mut e = epoch(crowd, errors, None);
            e.background_rate = Some(rate);
            e
        };
        let mut report = stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 20 });
        report.epochs = vec![
            surged(10, 0.2, 0.0),
            surged(20, 42.0, 0.6),
            surged(20, 40.0, 0.55),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::Base),
            Some(DegradationCause::BackgroundInterference)
        );
        assert!(!inference.defense_suspected());
        // A NoStop masked by surge-born 503s is equally confounded.
        let mut report = stage_report(
            Stage::Base,
            StageOutcome::NoStop {
                max_crowd_tested: 40,
            },
        );
        report.epochs = vec![
            surged(10, 0.2, 0.0),
            surged(20, 42.0, 0.6),
            surged(40, 40.0, 0.7),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::Base),
            Some(DegradationCause::BackgroundInterference)
        );
    }

    #[test]
    fn steady_heavy_background_is_not_a_surge() {
        // Univ-3-style: the server is always busy.  A constant 20 req/s
        // background is the site's normal operating point, not a surge —
        // the verdict stays a genuine constraint.
        let mut report = stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 20 });
        report.epochs = vec![
            epoch_with_background(10, 19.0),
            epoch_with_background(20, 21.0),
            epoch_with_background(20, 20.0),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::Base),
            Some(DegradationCause::ResourceConstraint)
        );
        assert!(!inference.background_interference_suspected());
    }

    #[test]
    fn idle_site_noise_stays_below_the_absolute_floor() {
        // Baseline 0.05 req/s, "surge" to 0.4 req/s: an 8x ratio but far
        // below one request per second — not a surge on any real server.
        let mut report = stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 20 });
        report.epochs = vec![
            epoch_with_background(10, 0.05),
            epoch_with_background(20, 0.4),
            epoch_with_background(20, 0.35),
        ];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::Base),
            Some(DegradationCause::ResourceConstraint)
        );
    }

    #[test]
    fn coordinator_surge_flags_confound_even_without_rate_data() {
        // A live backend with no server-side instrumentation: only the
        // coordinator's quiescence flags carry the evidence.
        let mut report = stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 20 });
        let flagged = |crowd: usize| {
            let mut e = epoch(crowd, 0.0, None);
            e.surge_suspected = true;
            e
        };
        report.epochs = vec![epoch(10, 0.0, None), flagged(20), flagged(20)];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::Base),
            Some(DegradationCause::BackgroundInterference)
        );
    }

    #[test]
    fn heavy_error_rates_read_as_load_shedding_even_on_nostop() {
        let mut report = stage_report(
            Stage::Base,
            StageOutcome::NoStop {
                max_crowd_tested: 40,
            },
        );
        report.epochs = vec![epoch(20, 0.1, None), epoch(40, 0.6, None)];
        let inference = InferenceReport::from_stages(&[report], &config());
        assert_eq!(
            inference.cause_of(Stage::Base),
            Some(DegradationCause::LoadSheddingDefense)
        );
        assert!(inference.notes.iter().any(|n| n.contains("defense-masked")));
    }

    #[test]
    fn clean_outcomes_keep_quiet_causes() {
        let mut stopped = stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 25 });
        stopped.epochs = vec![epoch(25, 0.0, None)];
        let mut nostop = stage_report(
            Stage::SmallQuery,
            StageOutcome::NoStop {
                max_crowd_tested: 40,
            },
        );
        nostop.epochs = vec![epoch(40, 0.0, None)];
        let skipped = stage_report(Stage::LargeObject, StageOutcome::Skipped);
        let inference = InferenceReport::from_stages(&[stopped, nostop, skipped], &config());
        assert_eq!(
            inference.cause_of(Stage::Base),
            Some(DegradationCause::ResourceConstraint)
        );
        assert_eq!(
            inference.cause_of(Stage::SmallQuery),
            Some(DegradationCause::NotDegraded)
        );
        assert_eq!(
            inference.cause_of(Stage::LargeObject),
            Some(DegradationCause::Indeterminate)
        );
        assert!(!inference.defense_suspected());
    }

    #[test]
    fn base_vs_bandwidth_note_matches_univ3_anecdote() {
        let stages = vec![
            stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 90 }),
            stage_report(
                Stage::LargeObject,
                StageOutcome::NoStop {
                    max_crowd_tested: 150,
                },
            ),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert!(inference
            .notes
            .iter()
            .any(|n| n.contains("request handling")));
    }
}
