//! Turning stage outcomes into resource-provisioning inferences.
//!
//! The MFC is a black-box technique: all it observes is the crowd size at
//! which each request class first causes a persistent response-time
//! degradation.  What the operators actually want is the interpretation the
//! paper layers on top of those numbers:
//!
//! * which *sub-system* (HTTP processing, back-end data processing, access
//!   bandwidth) is the first to be constrained and at what load,
//! * how the sub-systems compare (e.g. "bandwidth is provisioned better
//!   than request handling", the Univ-1/Univ-3 style findings), and
//! * how exposed the site is to low-volume application-level DDoS attacks
//!   (§6: a server whose Small Query stage stops at a small crowd while the
//!   Large Object stage never stops is "highly vulnerable to even the most
//!   simple application-level attacks on the back-end data processing
//!   subsystem").

use serde::{Deserialize, Serialize};

use crate::config::MfcConfig;
use crate::report::StageReport;
use crate::types::{Stage, StageOutcome};

/// The coordinator's verdict for one sub-system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provisioning {
    /// No confirmed degradation up to the tested crowd ceiling.
    Unconstrained {
        /// Largest crowd actually tested.
        tested_up_to: usize,
    },
    /// A confirmed degradation at the given crowd size.
    ConstrainedAt {
        /// The stopping crowd size.
        crowd: usize,
    },
    /// The stage could not be evaluated (no suitable content, not run).
    Unknown,
}

impl Provisioning {
    /// A coarse ranking used to compare sub-systems: higher is better
    /// provisioned.  Unconstrained sub-systems rank above any constrained
    /// one; among constrained ones a larger stopping crowd ranks higher.
    fn rank(self) -> Option<usize> {
        match self {
            Provisioning::Unconstrained { tested_up_to } => {
                Some(usize::MAX - 1_000 + tested_up_to.min(999))
            }
            Provisioning::ConstrainedAt { crowd } => Some(crowd),
            Provisioning::Unknown => None,
        }
    }
}

/// The verdict for one stage / sub-system pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// The stage that produced the verdict.
    pub stage: Stage,
    /// The sub-system the stage exercises.
    pub subsystem: String,
    /// The verdict.
    pub provisioning: Provisioning,
}

/// Exposure to low-rate application-level denial of service (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DdosExposure {
    /// The back end keels over at a crowd an order of magnitude below what
    /// the bandwidth sustains: a trivially small botnet suffices.
    HighBackendExposure,
    /// At least one sub-system is constrained at the tested loads.
    SomeExposure,
    /// Nothing was constrained up to the tested loads.
    LowExposure,
    /// Not enough information.
    Unknown,
}

/// The full interpretation attached to an MFC report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Per-stage verdicts, in the order the stages were run.
    pub constraints: Vec<Constraint>,
    /// Stages ordered from best to worst provisioned (ties broken by stage
    /// order); only stages that produced a verdict appear.
    pub best_to_worst: Vec<Stage>,
    /// DDoS exposure assessment.
    pub ddos_exposure: DdosExposure,
    /// Human-readable observations, one sentence each.
    pub notes: Vec<String>,
}

impl InferenceReport {
    /// Builds the interpretation from per-stage reports.
    pub fn from_stages(stages: &[StageReport], config: &MfcConfig) -> InferenceReport {
        let constraints: Vec<Constraint> = stages
            .iter()
            .map(|report| Constraint {
                stage: report.stage,
                subsystem: report.stage.target_subsystem().to_string(),
                provisioning: match report.outcome {
                    StageOutcome::Stopped { crowd_size } => {
                        Provisioning::ConstrainedAt { crowd: crowd_size }
                    }
                    StageOutcome::NoStop { max_crowd_tested } => Provisioning::Unconstrained {
                        tested_up_to: max_crowd_tested,
                    },
                    StageOutcome::Skipped => Provisioning::Unknown,
                },
            })
            .collect();

        let mut ranked: Vec<(Stage, usize)> = constraints
            .iter()
            .filter_map(|c| c.provisioning.rank().map(|r| (c.stage, r)))
            .collect();
        ranked.sort_by_key(|&(_, rank)| std::cmp::Reverse(rank));
        let best_to_worst: Vec<Stage> = ranked.iter().map(|(s, _)| *s).collect();

        let ddos_exposure = Self::assess_ddos(&constraints);
        let notes = Self::notes(&constraints, config);

        InferenceReport {
            constraints,
            best_to_worst,
            ddos_exposure,
            notes,
        }
    }

    /// Finds the verdict for a stage, if that stage was evaluated.
    pub fn provisioning_of(&self, stage: Stage) -> Option<Provisioning> {
        self.constraints
            .iter()
            .find(|c| c.stage == stage)
            .map(|c| c.provisioning)
    }

    fn assess_ddos(constraints: &[Constraint]) -> DdosExposure {
        let find = |stage: Stage| {
            constraints
                .iter()
                .find(|c| c.stage == stage)
                .map(|c| c.provisioning)
        };
        let small_query = find(Stage::SmallQuery);
        let large_object = find(Stage::LargeObject);
        match (small_query, large_object) {
            (
                Some(Provisioning::ConstrainedAt { crowd }),
                Some(Provisioning::Unconstrained { .. }),
            ) if crowd <= 50 => DdosExposure::HighBackendExposure,
            _ => {
                let any_constrained = constraints
                    .iter()
                    .any(|c| matches!(c.provisioning, Provisioning::ConstrainedAt { .. }));
                let any_known = constraints
                    .iter()
                    .any(|c| c.provisioning != Provisioning::Unknown);
                if any_constrained {
                    DdosExposure::SomeExposure
                } else if any_known {
                    DdosExposure::LowExposure
                } else {
                    DdosExposure::Unknown
                }
            }
        }
    }

    fn notes(constraints: &[Constraint], config: &MfcConfig) -> Vec<String> {
        let mut notes = Vec::new();
        let threshold = config.threshold.as_millis_f64();
        for c in constraints {
            match c.provisioning {
                Provisioning::ConstrainedAt { crowd } => notes.push(format!(
                    "{} stage: {} shows a persistent >{:.0} ms degradation at {} simultaneous requests.",
                    c.stage.name(),
                    c.subsystem,
                    threshold,
                    crowd
                )),
                Provisioning::Unconstrained { tested_up_to } => notes.push(format!(
                    "{} stage: no confirmed degradation up to {} simultaneous requests; {} appears well provisioned at this load.",
                    c.stage.name(),
                    tested_up_to,
                    c.subsystem
                )),
                Provisioning::Unknown => notes.push(format!(
                    "{} stage: not evaluated (no suitable content discovered).",
                    c.stage.name()
                )),
            }
        }

        // Comparative observations mirroring the paper's discussions.
        let get = |stage: Stage| {
            constraints
                .iter()
                .find(|c| c.stage == stage)
                .map(|c| c.provisioning)
        };
        if let (Some(Provisioning::ConstrainedAt { crowd: base }), Some(lo)) =
            (get(Stage::Base), get(Stage::LargeObject))
        {
            if matches!(lo, Provisioning::Unconstrained { .. }) {
                notes.push(format!(
                    "Basic request handling degrades at {base} requests while bandwidth does not: \
                     the problem is more likely request handling than bandwidth provisioning."
                ));
            }
        }
        if let (
            Some(Provisioning::ConstrainedAt { crowd: query }),
            Some(Provisioning::Unconstrained { .. }),
        ) = (get(Stage::SmallQuery), get(Stage::LargeObject))
        {
            if query <= 50 {
                notes.push(format!(
                    "The back-end data processing subsystem keels over at only {query} simultaneous \
                     queries while the access link absorbs every tested load: the site is highly \
                     vulnerable to low-volume application-level attacks."
                ));
            }
        }
        notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::StageReport;

    fn stage_report(stage: Stage, outcome: StageOutcome) -> StageReport {
        StageReport {
            stage,
            outcome,
            epochs: Vec::new(),
            requests_issued: 0,
        }
    }

    fn config() -> MfcConfig {
        MfcConfig::standard()
    }

    #[test]
    fn verdicts_mirror_outcomes() {
        let stages = vec![
            stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 25 }),
            stage_report(Stage::SmallQuery, StageOutcome::Stopped { crowd_size: 55 }),
            stage_report(
                Stage::LargeObject,
                StageOutcome::NoStop {
                    max_crowd_tested: 55,
                },
            ),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(
            inference.provisioning_of(Stage::Base),
            Some(Provisioning::ConstrainedAt { crowd: 25 })
        );
        assert_eq!(
            inference.provisioning_of(Stage::LargeObject),
            Some(Provisioning::Unconstrained { tested_up_to: 55 })
        );
        // Bandwidth best, then the back end, then base processing.
        assert_eq!(
            inference.best_to_worst,
            vec![Stage::LargeObject, Stage::SmallQuery, Stage::Base]
        );
        assert!(!inference.notes.is_empty());
    }

    #[test]
    fn qtnp_pattern_flags_backend_ddos_exposure() {
        // The QTNP-like pattern: bandwidth NoStop, small query stops below
        // 50 — §6 calls this out as high application-level DDoS exposure.
        let stages = vec![
            stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 25 }),
            stage_report(Stage::SmallQuery, StageOutcome::Stopped { crowd_size: 45 }),
            stage_report(
                Stage::LargeObject,
                StageOutcome::NoStop {
                    max_crowd_tested: 150,
                },
            ),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(inference.ddos_exposure, DdosExposure::HighBackendExposure);
        assert!(inference
            .notes
            .iter()
            .any(|n| n.contains("application-level")));
    }

    #[test]
    fn fully_unconstrained_site_has_low_exposure() {
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                stage_report(
                    s,
                    StageOutcome::NoStop {
                        max_crowd_tested: 75,
                    },
                )
            })
            .collect::<Vec<_>>();
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(inference.ddos_exposure, DdosExposure::LowExposure);
        assert_eq!(inference.best_to_worst.len(), 3);
    }

    #[test]
    fn skipped_stages_are_unknown() {
        let stages = vec![
            stage_report(
                Stage::Base,
                StageOutcome::NoStop {
                    max_crowd_tested: 55,
                },
            ),
            stage_report(Stage::SmallQuery, StageOutcome::Skipped),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(
            inference.provisioning_of(Stage::SmallQuery),
            Some(Provisioning::Unknown)
        );
        assert_eq!(inference.provisioning_of(Stage::LargeObject), None);
        assert!(!inference.best_to_worst.contains(&Stage::SmallQuery));
    }

    #[test]
    fn all_skipped_is_unknown_exposure() {
        let stages = vec![
            stage_report(Stage::SmallQuery, StageOutcome::Skipped),
            stage_report(Stage::LargeObject, StageOutcome::Skipped),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert_eq!(inference.ddos_exposure, DdosExposure::Unknown);
    }

    #[test]
    fn base_vs_bandwidth_note_matches_univ3_anecdote() {
        let stages = vec![
            stage_report(Stage::Base, StageOutcome::Stopped { crowd_size: 90 }),
            stage_report(
                Stage::LargeObject,
                StageOutcome::NoStop {
                    max_crowd_tested: 150,
                },
            ),
        ];
        let inference = InferenceReport::from_stages(&stages, &config());
        assert!(inference
            .notes
            .iter()
            .any(|n| n.contains("request handling")));
    }
}
