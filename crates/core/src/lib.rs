//! Mini-Flash Crowds (MFC): the paper's primary contribution.
//!
//! An MFC is a phased set of controlled probes in which an increasing number
//! of distributed clients make *synchronized* requests that exercise one
//! specific part of a remote web server — its basic HTTP processing (Base
//! stage), its back-end data processing (Small Query stage) or its access
//! bandwidth (Large Object stage).  By watching for a small but persistent
//! rise in the clients' normalized response times, the coordinator infers
//! which sub-system is the first to become constrained and at what crowd
//! size, while staying light-weight enough to run against production sites.
//!
//! This crate implements the full MFC machinery described in §2 of the
//! paper plus the §6 extensions:
//!
//! * [`profile`] — crawling/classifying target content into Large Objects,
//!   Small Queries and the Base page,
//! * [`sync`] — the delay-compensating request scheduler
//!   (`T − 0.5·T_coord − 1.5·T_target`) and its staggered variant,
//! * [`coordinator`] — the stage/epoch/check-phase state machine,
//! * [`inference`] — turning stopping crowd sizes into per-sub-system
//!   provisioning verdicts and the DDoS-exposure assessment,
//! * [`report`] — the human-readable and machine-readable experiment
//!   reports,
//! * [`runner`] — the deterministic parallel trial runner the survey
//!   harnesses fan independent `(site, seed)` simulations across cores
//!   with (`MFC_THREADS` threads, bit-identical to the serial loop),
//! * [`backend`] — the abstraction over *how* clients, the coordinator and
//!   the target actually talk: [`backend::sim::SimBackend`] drives the
//!   discrete-event world from `mfc-simnet`/`mfc-webserver`, and
//!   [`backend::live::LiveBackend`] drives real HTTP clients (from
//!   `mfc-http`) against a real server over localhost or the network.
//!
//! # Quick start
//!
//! ```
//! use mfc_core::backend::sim::{SimBackend, SimTargetSpec};
//! use mfc_core::coordinator::Coordinator;
//! use mfc_core::config::MfcConfig;
//! use mfc_webserver::{ContentCatalog, ServerConfig};
//!
//! // A small lab server behind a thin access link.
//! let spec = SimTargetSpec::single_server(
//!     ServerConfig::lab_apache(),
//!     ContentCatalog::lab_validation(),
//! );
//! let mut backend = SimBackend::new(spec, 65, 7);
//!
//! let config = MfcConfig::standard().with_max_crowd(30);
//! let report = Coordinator::new(config).run(&mut backend).expect("enough clients");
//! assert_eq!(report.stages.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod coordinator;
pub mod inference;
pub mod profile;
pub mod report;
pub mod runner;
pub mod sync;
pub mod types;

pub use config::{MfcConfig, StageSelection};
pub use coordinator::Coordinator;
pub use inference::{Constraint, InferenceReport, Provisioning};
pub use report::{MfcReport, StageReport};
pub use runner::TrialRunner;
pub use types::{
    ClientId, ClientObservation, EpochObservation, EpochPlan, EpochSummary, RequestCommand,
    RequestSpec, Stage, StageOutcome,
};
