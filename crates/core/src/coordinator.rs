//! The MFC coordinator: registration, delay computation, epochs, check
//! phases and termination (Figure 2(a) of the paper).
//!
//! For every stage the coordinator:
//!
//! 1. verifies that enough clients registered (50 in the paper),
//! 2. has every client measure its RTT to the target and the *base*
//!    response time of the object it would request,
//! 3. runs epochs with a growing crowd (increments of 5–10), scheduling the
//!    requests so they arrive simultaneously,
//! 4. watches the median (or, for Large Object, the 90th-percentile)
//!    *normalized* response time; when it exceeds the threshold θ at a
//!    crowd of at least 15 it runs a **check phase** — three more epochs
//!    with `N−1`, `N` and `N+1` clients — and terminates the stage with a
//!    *stopping crowd size* as soon as one of them also exceeds θ,
//! 5. otherwise progresses until the crowd cap is reached and declares the
//!    sub-system unconstrained ("NoStop").

use mfc_simcore::{stats, SimDuration, SimRng};

use crate::backend::MfcBackend;
use crate::config::MfcConfig;
use crate::inference::InferenceReport;
use crate::profile::TargetProfile;
use crate::report::{MfcReport, StageReport};
use crate::sync::{ClientLatency, SyncScheduler};
use crate::types::{
    ClientId, EpochObservation, EpochPlan, EpochSummary, RequestCommand, Stage, StageOutcome,
};

/// Why an MFC experiment could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MfcError {
    /// Fewer clients than [`MfcConfig::min_registered_clients`] responded to
    /// the registration probe; the experiment is aborted (paper Figure 2(a),
    /// step 2: "If k < 50, abort").
    NotEnoughClients {
        /// Clients that did respond.
        available: usize,
        /// Clients required by the configuration.
        required: usize,
    },
    /// The configuration failed validation.
    InvalidConfig(String),
}

impl std::fmt::Display for MfcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MfcError::NotEnoughClients {
                available,
                required,
            } => write!(
                f,
                "only {available} clients registered but {required} are required"
            ),
            MfcError::InvalidConfig(reason) => write!(f, "invalid MFC configuration: {reason}"),
        }
    }
}

impl std::error::Error for MfcError {}

/// Per-client state the coordinator keeps during a stage.
#[derive(Debug, Clone)]
struct ClientState {
    latency: ClientLatency,
}

/// Accumulated state of one stage run: the epoch trace, the request
/// budget, and the background-rate baseline the quiescence policy
/// compares against.
#[derive(Debug, Default)]
struct StageRun {
    epochs: Vec<EpochSummary>,
    requests_issued: usize,
    max_crowd_tested: usize,
    /// Server-reported background rates of epochs that were *not*
    /// surge-flagged; their median is the stage's baseline.
    clean_rates: Vec<f64>,
}

/// The coordinator.
#[derive(Debug, Clone)]
pub struct Coordinator {
    config: MfcConfig,
    seed: u64,
}

impl Coordinator {
    /// Creates a coordinator with the given configuration and a default
    /// seed for its random client selections.
    pub fn new(config: MfcConfig) -> Self {
        Coordinator { config, seed: 1 }
    }

    /// Sets the seed controlling random epoch membership.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MfcConfig {
        &self.config
    }

    /// Runs the full MFC experiment against `backend`.
    pub fn run(&self, backend: &mut dyn MfcBackend) -> Result<MfcReport, MfcError> {
        self.config.validate().map_err(MfcError::InvalidConfig)?;

        // CLIENTS REGISTER: collect responsive clients.
        let mut rng = SimRng::seed_from(self.seed);
        let registered = backend.registered_clients();
        let mut responsive: Vec<(ClientId, SimDuration)> = Vec::new();
        for client in registered {
            if let Some(rtt) = backend.ping(client) {
                responsive.push((client, rtt));
            }
        }
        if responsive.len() < self.config.min_registered_clients {
            return Err(MfcError::NotEnoughClients {
                available: responsive.len(),
                required: self.config.min_registered_clients,
            });
        }

        // Profiling step.
        let profile = backend.profile_target();

        let mut stage_reports = Vec::new();
        for stage in self.config.stages.stages() {
            let report = if profile.supports(stage) {
                self.run_stage(backend, stage, &profile, &responsive, &mut rng)
            } else {
                StageReport::skipped(stage)
            };
            stage_reports.push(report);
        }

        let inference = InferenceReport::from_stages(&stage_reports, &self.config);
        Ok(MfcReport {
            threshold_ms: self.config.threshold.as_millis_f64(),
            requests_per_client: self.config.requests_per_client,
            clients_registered: responsive.len(),
            total_requests: stage_reports.iter().map(|s| s.requests_issued).sum(),
            stages: stage_reports,
            inference,
        })
    }

    /// Measures the impact of exactly one crowd of `crowd` simultaneous
    /// requests of the given stage, without running the full escalating
    /// experiment.
    ///
    /// This is the building block behind the lab-validation figures (5 and
    /// 6), where the interesting output is the response time *and* the
    /// server-side resource usage at each crowd size rather than a stopping
    /// crowd; it is also useful to an operator who wants to ask "what does
    /// a burst of exactly N requests do to my site?".
    pub fn probe_crowd(
        &self,
        backend: &mut dyn MfcBackend,
        stage: Stage,
        crowd: usize,
    ) -> Result<(EpochSummary, EpochObservation), MfcError> {
        self.config.validate().map_err(MfcError::InvalidConfig)?;
        let mut rng = SimRng::seed_from(self.seed);
        let registered = backend.registered_clients();
        let mut responsive: Vec<(ClientId, SimDuration)> = Vec::new();
        for client in registered {
            if let Some(rtt) = backend.ping(client) {
                responsive.push((client, rtt));
            }
        }
        if responsive.len() < crowd.max(1) {
            return Err(MfcError::NotEnoughClients {
                available: responsive.len(),
                required: crowd.max(1),
            });
        }
        let profile = backend.profile_target();
        let mut clients = Vec::new();
        for (participant_index, (client, coordinator_rtt)) in
            responsive.iter().take(crowd.max(1)).enumerate()
        {
            let Some(request) = profile.request_for(stage, participant_index) else {
                continue;
            };
            let measurement = backend.measure_base(*client, &request);
            clients.push((
                ClientState {
                    latency: ClientLatency {
                        client: *client,
                        coordinator_rtt: *coordinator_rtt,
                        target_rtt: measurement.target_rtt,
                    },
                },
                participant_index,
            ));
        }
        Ok(self.execute_epoch(
            backend, stage, &profile, &clients, crowd, 1, false, &mut rng,
        ))
    }

    /// Runs one stage to termination.
    fn run_stage(
        &self,
        backend: &mut dyn MfcBackend,
        stage: Stage,
        profile: &TargetProfile,
        responsive: &[(ClientId, SimDuration)],
        rng: &mut SimRng,
    ) -> StageReport {
        // DELAY COMPUTATION: every responsive client measures its RTT to the
        // target and the base response time of the object it would request.
        let mut clients = Vec::with_capacity(responsive.len());
        for (participant_index, (client, coordinator_rtt)) in responsive.iter().enumerate() {
            let Some(request) = profile.request_for(stage, participant_index) else {
                continue;
            };
            let measurement = backend.measure_base(*client, &request);
            clients.push((
                ClientState {
                    latency: ClientLatency {
                        client: *client,
                        coordinator_rtt: *coordinator_rtt,
                        target_rtt: measurement.target_rtt,
                    },
                },
                participant_index,
            ));
        }
        if clients.is_empty() {
            return StageReport::skipped(stage);
        }

        let threshold_ms = self.config.threshold.as_millis_f64();
        let mut state = StageRun::default();

        for (epoch_number, crowd) in self.config.crowd_schedule().into_iter().enumerate() {
            let crowd = crowd.min(clients.len());
            let summary = self.run_epoch_quiesced(
                backend,
                stage,
                profile,
                &clients,
                crowd,
                epoch_number as u32 + 1,
                false,
                rng,
                &mut state,
            );
            let triggered = summary.detector_ms > threshold_ms;
            state.epochs.push(summary);
            backend.wait(self.config.epoch_gap);

            if !triggered {
                continue;
            }
            // Below the minimum crowd the median is not trusted; progress.
            if crowd < self.config.min_crowd_for_inference {
                continue;
            }

            // CHECK PHASE: N−1, a repeat of N, and N+1.
            let candidates = [crowd.saturating_sub(1).max(1), crowd, crowd + 1];
            let mut confirmed = false;
            for check_crowd in candidates {
                let check_crowd = check_crowd.min(clients.len());
                let summary = self.run_epoch_quiesced(
                    backend,
                    stage,
                    profile,
                    &clients,
                    check_crowd,
                    epoch_number as u32 + 1,
                    true,
                    rng,
                    &mut state,
                );
                let exceeded = summary.detector_ms > threshold_ms;
                state.epochs.push(summary);
                backend.wait(self.config.epoch_gap);
                if exceeded {
                    confirmed = true;
                    break;
                }
            }
            if confirmed {
                return StageReport {
                    stage,
                    outcome: StageOutcome::Stopped { crowd_size: crowd },
                    epochs: state.epochs,
                    requests_issued: state.requests_issued,
                };
            }
            // Check failed: the degradation was stochastic; keep going.
        }

        StageReport {
            stage,
            outcome: StageOutcome::NoStop {
                max_crowd_tested: state.max_crowd_tested,
            },
            epochs: state.epochs,
            requests_issued: state.requests_issued,
        }
    }

    /// Executes one epoch under the quiescence policy: when the epoch's
    /// server-reported background rate exceeds the surge threshold over the
    /// stage's baseline, the epoch is flagged `surge_suspected`, kept in
    /// the report for audit, and re-run after the policy's backoff — up to
    /// `max_retries` times (paper §4's "quiet hours", automated).  Without
    /// a policy this is exactly one [`Coordinator::execute_epoch`] call.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch_quiesced(
        &self,
        backend: &mut dyn MfcBackend,
        stage: Stage,
        profile: &TargetProfile,
        clients: &[(ClientState, usize)],
        crowd: usize,
        index: u32,
        check_phase: bool,
        rng: &mut SimRng,
        state: &mut StageRun,
    ) -> EpochSummary {
        let mut attempts = 0u32;
        loop {
            let (mut summary, _) = self.execute_epoch(
                backend,
                stage,
                profile,
                clients,
                crowd,
                index,
                check_phase,
                rng,
            );
            state.requests_issued += summary.requests_scheduled;
            state.max_crowd_tested = state.max_crowd_tested.max(summary.crowd_size);
            let surged = match (&self.config.quiescence, summary.background_rate) {
                (Some(policy), Some(rate)) => {
                    // The baseline needs at least one clean epoch; the
                    // stage's first epoch seeds it.
                    stats::median(&state.clean_rates)
                        .is_some_and(|baseline| rate > policy.threshold(baseline))
                }
                _ => false,
            };
            if surged {
                summary.surge_suspected = true;
                let policy = self
                    .config
                    .quiescence
                    .as_ref()
                    .expect("a surge implies a policy");
                if attempts < policy.max_retries {
                    attempts += 1;
                    state.epochs.push(summary);
                    backend.wait(policy.backoff);
                    continue;
                }
                // Retries exhausted: the surged result stands, flagged, and
                // the inference layer will see the confound.
                return summary;
            }
            if let Some(rate) = summary.background_rate {
                state.clean_rates.push(rate);
            }
            return summary;
        }
    }

    /// Schedules, executes and summarizes a single epoch.
    #[allow(clippy::too_many_arguments)]
    fn execute_epoch(
        &self,
        backend: &mut dyn MfcBackend,
        stage: Stage,
        profile: &TargetProfile,
        clients: &[(ClientState, usize)],
        crowd: usize,
        index: u32,
        check_phase: bool,
        rng: &mut SimRng,
    ) -> (EpochSummary, EpochObservation) {
        // Participants are chosen at random each epoch so that an observed
        // degradation reflects the crowd size, not the local conditions of
        // any fixed subset of clients (paper §2.3).
        let participants = rng.sample(clients, crowd.min(clients.len()).max(1));

        let scheduler = match self.config.stagger {
            Some(spacing) => SyncScheduler::staggered(self.config.schedule_lead, spacing),
            None => SyncScheduler::simultaneous(self.config.schedule_lead),
        };
        let latencies: Vec<ClientLatency> = participants.iter().map(|(c, _)| c.latency).collect();
        let scheduled = scheduler.schedule(&latencies);

        let mut commands = Vec::new();
        for (slot, (state, participant_index)) in participants.iter().enumerate() {
            let Some(request) = profile.request_for(stage, *participant_index) else {
                continue;
            };
            // MFC-mr: the same client opens several parallel connections.
            for _ in 0..self.config.requests_per_client {
                commands.push(RequestCommand {
                    client: state.latency.client,
                    request: request.clone(),
                    send_offset: scheduled[slot].send_offset,
                    intended_arrival: scheduled[slot].intended_arrival,
                });
            }
        }

        let plan = EpochPlan {
            stage,
            index,
            commands,
            timeout: self.config.client_timeout,
        };
        let observation = backend.run_epoch(&plan);

        let normalized = observation.normalized_ms();
        let quantile = match stage {
            Stage::LargeObject => self.config.large_object_quantile,
            _ => stage.detection_quantile(),
        };
        let detector_ms = stats::percentile(&normalized, quantile).unwrap_or(0.0);
        let median_ms = stats::median(&normalized).unwrap_or(0.0);
        let arrival_spread_90 =
            mfc_webserver::request::central_spread(&observation.target_arrivals, 0.9);

        // Vantage-aware localization input: the per-group medians of the
        // normalized response times.  A skewed profile (one group far above
        // θ, the rest flat) is the remote fingerprint of a shared *path*
        // bottleneck rather than a server constraint.
        let mut by_group: std::collections::BTreeMap<u32, Vec<f64>> =
            std::collections::BTreeMap::new();
        for o in &observation.observations {
            if o.status.produced_sample() {
                by_group
                    .entry(o.group)
                    .or_default()
                    .push(o.normalized().as_millis_f64());
            }
        }
        let group_median_ms: Vec<(u32, f64)> = if by_group.len() > 1 {
            by_group
                .iter()
                .filter_map(|(&g, samples)| stats::median(samples).map(|m| (g, m)))
                .collect()
        } else {
            Vec::new()
        };

        // Defense-fingerprint observables (used by the inference layer to
        // tell a fighting-back server from a genuinely constrained one).
        let samples = observation
            .observations
            .iter()
            .filter(|o| o.status.produced_sample())
            .count();
        let errors = observation
            .observations
            .iter()
            // Server errors only: a 503 is what a shedding defense sends;
            // 4xx responses (missing paths, auth walls) are not evidence of
            // load shedding.
            .filter(
                |o| matches!(o.status, crate::types::ProbeStatus::HttpError(code) if code >= 500),
            )
            .count();
        let error_rate = if samples > 0 {
            errors as f64 / samples as f64
        } else {
            0.0
        };
        // Timed-out transfers still contribute: bytes/timeout is an
        // *optimistic* per-client goodput bound, which keeps the clamp
        // fingerprint visible even when a harsh limiter starves every
        // probe past the client timeout (under a genuinely saturated link
        // the same bound sums to roughly the link capacity, so it does not
        // create false defense flags).
        let goodputs: Vec<f64> = observation
            .observations
            .iter()
            .filter(|o| {
                matches!(
                    o.status,
                    crate::types::ProbeStatus::Ok | crate::types::ProbeStatus::TimedOut
                ) && o.bytes > 0
                    && o.response_time > SimDuration::ZERO
            })
            .map(|o| o.bytes as f64 / o.response_time.as_secs_f64())
            .collect();
        let (client_goodput_median, client_goodput_cov, aggregate_goodput) = if goodputs.is_empty()
        {
            (None, None, None)
        } else {
            let mut spread = stats::OnlineStats::new();
            for &goodput in &goodputs {
                spread.push(goodput);
            }
            let cov = if spread.mean() > 0.0 {
                spread.std_dev() / spread.mean()
            } else {
                0.0
            };
            (
                stats::median(&goodputs),
                Some(cov),
                Some(goodputs.iter().sum()),
            )
        };
        let link_capacity = observation
            .server_utilization
            .as_ref()
            .map(|u| u.link_capacity)
            .filter(|&c| c > 0.0);
        // Background-load observables: the non-MFC request rate the target
        // served while the epoch ran (per second of the server's busy
        // window), and the drift of the fastest clients above their
        // calibrated base times.
        let background_rate = observation.server_utilization.as_ref().and_then(|u| {
            let secs = u.window.as_secs_f64();
            (secs > 0.0).then(|| observation.background_requests as f64 / secs)
        });
        let baseline_drift_ms = stats::percentile(&normalized, 0.1);

        let summary = EpochSummary {
            index,
            crowd_size: plan.crowd_size(),
            requests_scheduled: plan.request_count(),
            requests_observed: observation.observations.len(),
            detector_ms,
            median_ms,
            check_phase,
            commands_lost: observation.lost_commands,
            arrival_spread_90,
            group_median_ms,
            error_rate,
            client_goodput_median,
            client_goodput_cov,
            aggregate_goodput,
            link_capacity,
            background_rate,
            baseline_drift_ms,
            surge_suspected: false,
        };
        (summary, observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::sim::{SimBackend, SimTargetSpec};
    use mfc_webserver::{ContentCatalog, ServerConfig};

    fn lab_backend(clients: usize, seed: u64) -> SimBackend {
        SimBackend::new(
            SimTargetSpec::single_server(
                ServerConfig::lab_apache(),
                ContentCatalog::lab_validation(),
            ),
            clients,
            seed,
        )
    }

    #[test]
    fn aborts_below_minimum_client_count() {
        let mut backend = lab_backend(20, 1);
        let err = Coordinator::new(MfcConfig::standard())
            .run(&mut backend)
            .unwrap_err();
        assert_eq!(
            err,
            MfcError::NotEnoughClients {
                available: 20,
                required: 50
            }
        );
    }

    #[test]
    fn rejects_invalid_config() {
        let mut backend = lab_backend(60, 1);
        let mut config = MfcConfig::standard();
        config.max_crowd = 0;
        let err = Coordinator::new(config).run(&mut backend).unwrap_err();
        assert!(matches!(err, MfcError::InvalidConfig(_)));
    }

    #[test]
    fn full_run_produces_three_stage_reports() {
        let mut backend = lab_backend(60, 2);
        let config = MfcConfig::standard().with_max_crowd(25).with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.clients_registered, 60);
        assert!(report.total_requests > 0);
        for stage_report in &report.stages {
            assert!(
                !stage_report.epochs.is_empty() || stage_report.outcome == StageOutcome::Skipped
            );
        }
    }

    #[test]
    fn thin_link_stops_the_large_object_stage() {
        // The lab server sits behind 10 Mbit/s: 30+ simultaneous 100 KB
        // transfers must push the 90th-percentile normalized response time
        // past 100 ms and stop the stage.
        let mut backend = lab_backend(60, 3);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(50)
            .with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        let stage = &report.stages[0];
        assert!(
            stage.outcome.stopping_crowd().is_some(),
            "expected a stopping crowd, got {:?}",
            stage.outcome
        );
    }

    #[test]
    fn well_provisioned_server_is_no_stop_for_base() {
        let spec = SimTargetSpec::single_server(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
        );
        let mut backend = SimBackend::new(spec, 60, 4);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::Base])
            .with_max_crowd(40)
            .with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        assert!(
            report.stages[0].outcome.is_no_stop(),
            "a datacenter-class front end must shrug off 40 HEAD requests: {:?}",
            report.stages[0].outcome
        );
    }

    #[test]
    fn stage_without_content_is_skipped() {
        // A catalog with no large objects and no queries.
        let catalog = ContentCatalog::new(
            mfc_webserver::ObjectSpec::static_object(
                "/index.html",
                mfc_webserver::ObjectKind::Text,
                4096,
            ),
            vec![],
        );
        let spec = SimTargetSpec::single_server(ServerConfig::lab_apache(), catalog);
        let mut backend = SimBackend::new(spec, 55, 5);
        let config = MfcConfig::standard().with_max_crowd(20);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        let by_stage = |s: Stage| {
            report
                .stages
                .iter()
                .find(|r| r.stage == s)
                .map(|r| r.outcome)
                .unwrap()
        };
        assert_eq!(by_stage(Stage::SmallQuery), StageOutcome::Skipped);
        assert_eq!(by_stage(Stage::LargeObject), StageOutcome::Skipped);
        assert_ne!(by_stage(Stage::Base), StageOutcome::Skipped);
    }

    #[test]
    fn check_phase_epochs_are_flagged() {
        let mut backend = lab_backend(60, 6);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(50)
            .with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        let stage = &report.stages[0];
        if stage.outcome.stopping_crowd().is_some() {
            assert!(
                stage.epochs.iter().any(|e| e.check_phase),
                "a stopped stage must have run at least one check epoch"
            );
        }
    }

    #[test]
    fn thin_link_stop_is_attributed_to_a_real_constraint() {
        let mut backend = lab_backend(60, 3);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(50)
            .with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        assert!(report.stages[0].outcome.stopping_crowd().is_some());
        assert_eq!(
            report.inference.cause_of(Stage::LargeObject),
            Some(crate::inference::DegradationCause::ResourceConstraint),
            "a genuinely saturated 10 Mbit/s link must not be flagged as a defense"
        );
        assert!(!report.inference.defense_suspected());
    }

    #[test]
    fn rate_limited_target_is_flagged_as_defense_not_constraint() {
        // A target whose link could absorb every tested crowd, but whose
        // per-client token buckets clamp repeat probers to 16 KB/s after a
        // single free request.  The MFC sees a textbook "bandwidth
        // constraint": large-object response times blow past θ at every
        // crowd.  The inference must not fall for it.
        let spec = SimTargetSpec::single_server(
            ServerConfig::validation_server(),
            ContentCatalog::lab_validation(),
        )
        .with_defenses(mfc_dynamics::DefenseConfig::rate_limited(
            1.0,
            0.002,
            16.0 * 1024.0,
        ));
        let mut backend = SimBackend::new(spec, 60, 21);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(40)
            .with_increment(10);
        let report = Coordinator::new(config)
            .with_seed(4)
            .run(&mut backend)
            .unwrap();
        let stage = &report.stages[0];
        assert!(
            stage.outcome.stopping_crowd().is_some(),
            "the clamp must trip the detector: {:?}",
            stage.outcome
        );
        assert_eq!(
            report.inference.cause_of(Stage::LargeObject),
            Some(crate::inference::DegradationCause::RateLimitDefense),
            "clamped goodputs over an idle link are a defense, not a constraint"
        );
        assert!(report.inference.defense_suspected());
        assert!(report
            .inference
            .notes
            .iter()
            .any(|n| n.contains("rate-limit")));
        // The fingerprint itself: tight goodput dispersion, huge headroom.
        let tail = stage.epochs.last().unwrap();
        assert!(tail.client_goodput_cov.unwrap() < 0.3, "{tail:?}");
        assert!(
            tail.aggregate_goodput.unwrap() < 0.5 * tail.link_capacity.unwrap(),
            "{tail:?}"
        );
    }

    #[test]
    fn shedding_target_masks_the_nostop_verdict() {
        // An admission controller with a 15-requests-per-second surge
        // budget sheds most of every larger crowd with fast 503s.  The
        // response-time detector alone would read that as a healthy
        // NoStop; the inference must flag it as defense-masked.
        let spec = SimTargetSpec::single_server(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
        )
        .with_defenses(mfc_dynamics::DefenseConfig::shedding(15));
        let mut backend = SimBackend::new(spec, 60, 8);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::Base])
            .with_max_crowd(40)
            .with_increment(10);
        let report = Coordinator::new(config)
            .with_seed(2)
            .run(&mut backend)
            .unwrap();
        let stage = &report.stages[0];
        assert_eq!(
            report.inference.cause_of(Stage::Base),
            Some(crate::inference::DegradationCause::LoadSheddingDefense),
            "outcome {:?} with epochs {:?}",
            stage.outcome,
            stage.epochs.last()
        );
        assert!(report.inference.defense_suspected());
        // The shed fraction in the biggest epochs is substantial.
        assert!(stage.epochs.last().unwrap().error_rate >= 0.25);
    }

    #[test]
    fn listen_queue_refusals_are_not_mistaken_for_shedding() {
        // A genuinely under-provisioned static server: 4 workers and a
        // 4-slot listen queue refuse most of every larger crowd at TCP
        // level.  Refusals are connection failures, not 503s, so the
        // inference must not attribute the outcome to a shedding defense.
        let spec = SimTargetSpec::single_server(
            ServerConfig {
                workers: mfc_webserver::WorkerConfig {
                    max_workers: 4,
                    listen_queue: 4,
                    ..mfc_webserver::WorkerConfig::default()
                },
                ..ServerConfig::lab_apache()
            },
            ContentCatalog::lab_validation(),
        );
        let mut backend = SimBackend::new(spec, 60, 17);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::Base])
            .with_max_crowd(40)
            .with_increment(10);
        let report = Coordinator::new(config)
            .with_seed(3)
            .run(&mut backend)
            .unwrap();
        let stage = &report.stages[0];
        // Most of the big crowds were refused...
        let refused_heavy = stage.epochs.iter().any(|e| e.crowd_size >= 30);
        assert!(refused_heavy, "{:?}", stage.epochs);
        // ...yet no defense is claimed: refusals are not HTTP errors.
        assert_ne!(
            report.inference.cause_of(Stage::Base),
            Some(crate::inference::DegradationCause::LoadSheddingDefense),
            "TCP refusals misread as a shedding defense: {:?}",
            stage.epochs.last()
        );
        assert!(!report.inference.defense_suspected());
        assert!(stage.epochs.iter().all(|e| e.error_rate == 0.0));
    }

    #[test]
    fn undersized_transit_link_reads_as_path_congestion_not_server_constraint() {
        // A well-provisioned server (gigabit access link), but one of four
        // vantage groups sits behind a 1.6 Mbit/s shared transit link.
        // The Large Object stage trips the detector — the pinned group's
        // transfers crawl — yet the inference must localize the bottleneck
        // to the path, not report a server bandwidth constraint.
        let spec = SimTargetSpec::single_server(
            ServerConfig::validation_server(),
            ContentCatalog::lab_validation(),
        )
        .with_topology(mfc_topology::TopologySpec::star(&[
            mfc_simnet::mbps(1.6),
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
        ]));
        let mut backend = SimBackend::new(spec, 60, 14);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(40)
            .with_increment(10);
        let report = Coordinator::new(config)
            .with_seed(6)
            .run(&mut backend)
            .unwrap();
        let stage = &report.stages[0];
        assert!(
            stage.outcome.stopping_crowd().is_some(),
            "the pinned group must trip the 90th-percentile detector: {:?}",
            stage.outcome
        );
        assert_eq!(
            report.inference.cause_of(Stage::LargeObject),
            Some(crate::inference::DegradationCause::PathCongestion),
            "a shared transit bottleneck must not be read as a server \
             constraint; tail epoch: {:?}",
            stage.epochs.last()
        );
        assert!(report.inference.path_congestion_suspected());
        assert!(!report.inference.defense_suspected());
        // The per-group medians carry the evidence.
        let tail = stage.epochs.last().unwrap();
        assert!(tail.group_median_ms.len() >= 2, "{tail:?}");
    }

    #[test]
    fn mirrored_access_bottleneck_still_reads_as_server_constraint() {
        // The mirror image: generous transit links, but the *server's* own
        // access link is the thin one.  Every vantage group degrades
        // together, so the verdict stays a genuine resource constraint.
        let spec = SimTargetSpec::single_server(
            ServerConfig::lab_apache(), // 10 Mbit/s access link
            ContentCatalog::lab_validation(),
        )
        .with_topology(mfc_topology::TopologySpec::star(&[
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
        ]));
        let mut backend = SimBackend::new(spec, 60, 14);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(50)
            .with_increment(10);
        let report = Coordinator::new(config)
            .with_seed(6)
            .run(&mut backend)
            .unwrap();
        let stage = &report.stages[0];
        assert!(
            stage.outcome.stopping_crowd().is_some(),
            "{:?}",
            stage.outcome
        );
        assert_eq!(
            report.inference.cause_of(Stage::LargeObject),
            Some(crate::inference::DegradationCause::ResourceConstraint),
            "a genuinely thin access link must keep its server verdict; \
             tail epoch: {:?}",
            stage.epochs.last()
        );
        assert!(!report.inference.path_congestion_suspected());
    }

    #[test]
    fn rate_limit_clamp_stays_distinguishable_from_path_clamp() {
        // PR 3's interaction case: a defended target whose per-client rate
        // limiter clamps every prober.  Both a path bottleneck and the
        // limiter leave the access link idle, but the limiter hits every
        // vantage group alike — the group medians stay symmetric, so the
        // verdict must remain RateLimitDefense even with a multi-group
        // topology in front.
        let spec = SimTargetSpec::single_server(
            ServerConfig::validation_server(),
            ContentCatalog::lab_validation(),
        )
        .with_topology(mfc_topology::TopologySpec::star(&[
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
            mfc_simnet::mbps(1000.0),
        ]))
        .with_defenses(mfc_dynamics::DefenseConfig::rate_limited(
            1.0,
            0.002,
            16.0 * 1024.0,
        ));
        let mut backend = SimBackend::new(spec, 60, 21);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::LargeObject])
            .with_max_crowd(40)
            .with_increment(10);
        let report = Coordinator::new(config)
            .with_seed(4)
            .run(&mut backend)
            .unwrap();
        assert_eq!(
            report.inference.cause_of(Stage::LargeObject),
            Some(crate::inference::DegradationCause::RateLimitDefense),
            "a symmetric per-client clamp must not be mistaken for path \
             congestion: {:?}",
            report.stages[0].epochs.last()
        );
        assert!(report.inference.defense_suspected());
        assert!(!report.inference.path_congestion_suspected());
    }

    #[test]
    fn lossy_control_plane_is_auditable_from_the_report() {
        let spec = SimTargetSpec::single_server(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
        )
        .with_control_loss(0.3);
        let mut backend = SimBackend::new(spec, 60, 7);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::Base])
            .with_max_crowd(30)
            .with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        // With 30% loss the gap must show up in the report itself, and it
        // must agree with the backend's own counter.
        assert!(report.total_commands_lost() > 0);
        assert_eq!(
            u64::from(report.total_commands_lost()),
            backend.control_messages_lost()
        );
        assert!(report.render_text().contains("lost in transit"));
    }

    #[test]
    fn defended_runs_are_deterministic() {
        let run = || {
            let spec = SimTargetSpec::single_server(
                ServerConfig::lab_apache(),
                ContentCatalog::lab_validation(),
            )
            .with_defenses(mfc_dynamics::DefenseConfig::fortress(1, 4));
            let mut backend = SimBackend::new(spec, 55, 13);
            Coordinator::new(MfcConfig::standard().with_max_crowd(25).with_increment(10))
                .with_seed(5)
                .run(&mut backend)
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn same_seed_gives_identical_reports() {
        let config = MfcConfig::standard().with_max_crowd(20).with_increment(10);
        let run = || {
            let mut backend = lab_backend(55, 9);
            Coordinator::new(config.clone())
                .with_seed(77)
                .run(&mut backend)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    /// A scripted backend whose regular traffic surges inside a fixed
    /// wall-clock window: epochs that land in the window see 50 req/s of
    /// background (reported through the utilization window) and inflated
    /// response times; outside it the server is quiet and fast.
    struct SurgeBackend {
        clock: SimDuration,
        surge_from: SimDuration,
        surge_until: SimDuration,
    }

    impl SurgeBackend {
        fn new(surge_from_secs: u64, surge_until_secs: u64) -> Self {
            SurgeBackend {
                clock: SimDuration::ZERO,
                surge_from: SimDuration::from_secs(surge_from_secs),
                surge_until: SimDuration::from_secs(surge_until_secs),
            }
        }

        fn surging(&self) -> bool {
            self.clock >= self.surge_from && self.clock < self.surge_until
        }
    }

    impl crate::backend::MfcBackend for SurgeBackend {
        fn registered_clients(&mut self) -> Vec<ClientId> {
            (0..55).map(ClientId).collect()
        }

        fn ping(&mut self, _client: ClientId) -> Option<SimDuration> {
            Some(SimDuration::from_millis(20))
        }

        fn measure_base(
            &mut self,
            _client: ClientId,
            _request: &crate::types::RequestSpec,
        ) -> crate::backend::BaseMeasurement {
            self.clock += SimDuration::from_millis(200);
            crate::backend::BaseMeasurement {
                target_rtt: SimDuration::from_millis(20),
                base_response_time: SimDuration::from_millis(20),
                status: crate::types::ProbeStatus::Ok,
                bytes: 0,
            }
        }

        fn run_epoch(&mut self, plan: &EpochPlan) -> EpochObservation {
            let surging = self.surging();
            // During the surge every probe crawls; when quiet the server
            // absorbs any tested crowd.
            let normalized = if surging {
                SimDuration::from_millis(600)
            } else {
                SimDuration::from_millis(30)
            };
            let background_rate = if surging { 50.0 } else { 0.2 };
            let window = SimDuration::from_secs(10);
            let observations = plan
                .commands
                .iter()
                .map(|command| crate::types::ClientObservation {
                    client: command.client,
                    group: 0,
                    status: crate::types::ProbeStatus::Ok,
                    bytes: 0,
                    response_time: normalized + SimDuration::from_millis(20),
                    base_response_time: SimDuration::from_millis(20),
                })
                .collect();
            self.clock += SimDuration::from_secs(30);
            EpochObservation {
                observations,
                target_arrivals: Vec::new(),
                lost_commands: 0,
                background_requests: (background_rate * window.as_secs_f64()) as u64,
                server_utilization: Some(mfc_webserver::UtilizationReport {
                    window,
                    cpu_utilization: 0.2,
                    peak_memory_bytes: 0,
                    mean_memory_bytes: 0.0,
                    network_bytes_sent: 0,
                    disk_operations: 0,
                    mean_busy_workers: 1.0,
                    peak_busy_workers: 1,
                    refused_requests: 0,
                    completed_requests: plan.commands.len() as u64,
                    shed_requests: 0,
                    throttled_requests: 0,
                    link_capacity: 1_250_000.0,
                }),
            }
        }

        fn profile_target(&mut self) -> TargetProfile {
            TargetProfile::from_catalog(&mfc_webserver::ContentCatalog::lab_validation())
        }

        fn wait(&mut self, gap: SimDuration) {
            self.clock += gap;
        }
    }

    #[test]
    fn surge_coincident_epochs_yield_a_confounded_verdict() {
        // 55 base measurements take ~11 s, epoch 1 runs quiet, epoch 2
        // (and any checks) land inside the [45 s, 200 s) surge: without a
        // quiescence policy the stage stops inside the surge and the
        // inference must call the confound.
        let mut backend = SurgeBackend::new(45, 200);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::Base])
            .with_max_crowd(20)
            .with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        let stage = &report.stages[0];
        assert_eq!(stage.outcome, StageOutcome::Stopped { crowd_size: 20 });
        assert_eq!(
            report.inference.cause_of(Stage::Base),
            Some(crate::inference::DegradationCause::BackgroundInterference),
            "epochs: {:?}",
            stage.epochs
        );
        assert!(report.inference.background_interference_suspected());
        // The observables carry the evidence: the tail epochs' background
        // rate sits two orders of magnitude above the baseline.
        let tail = stage.epochs.last().unwrap();
        assert!(tail.background_rate.unwrap() > 40.0);
        assert!(stage.epochs[0].background_rate.unwrap() < 1.0);
        // Without a policy nothing was rescheduled.
        assert!(stage.epochs.iter().all(|e| !e.surge_suspected));
    }

    #[test]
    fn quiescence_policy_reschedules_around_the_surge() {
        // Same surge, but the coordinator is allowed to wait it out: the
        // surged attempt is flagged and kept, the re-run lands in quiet
        // and the stage honestly reports NoStop.
        let mut backend = SurgeBackend::new(45, 100);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::Base])
            .with_max_crowd(20)
            .with_increment(10)
            .with_quiescence(crate::config::QuiescencePolicy::default());
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        let stage = &report.stages[0];
        assert_eq!(
            stage.outcome,
            StageOutcome::NoStop {
                max_crowd_tested: 20
            },
            "epochs: {:?}",
            stage.epochs
        );
        // The flagged attempt is auditable in the epoch trace.
        assert!(stage.epochs.iter().any(|e| e.surge_suspected));
        // And the verdict is clean: quiet-window evidence, no confound.
        assert_eq!(
            report.inference.cause_of(Stage::Base),
            Some(crate::inference::DegradationCause::NotDegraded)
        );
        assert!(!report.inference.background_interference_suspected());
    }

    #[test]
    fn exhausted_retries_keep_the_surge_flag() {
        // A surge that never ends: retries run out, the flagged epoch's
        // result stands, and the inference sees the confound.
        let mut backend = SurgeBackend::new(45, 1_000_000);
        let config = MfcConfig::standard()
            .with_stages(vec![Stage::Base])
            .with_max_crowd(20)
            .with_increment(10)
            .with_quiescence(crate::config::QuiescencePolicy {
                max_retries: 1,
                ..crate::config::QuiescencePolicy::default()
            });
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        let stage = &report.stages[0];
        assert_eq!(stage.outcome, StageOutcome::Stopped { crowd_size: 20 });
        assert_eq!(
            report.inference.cause_of(Stage::Base),
            Some(crate::inference::DegradationCause::BackgroundInterference)
        );
    }

    #[test]
    fn mfc_mr_multiplies_requests_not_crowd() {
        let mut backend = lab_backend(60, 10);
        let config = MfcConfig::multi_request(2)
            .with_stages(vec![Stage::Base])
            .with_max_crowd(10)
            .with_increment(10);
        let report = Coordinator::new(config).run(&mut backend).unwrap();
        let epoch = &report.stages[0].epochs[0];
        assert_eq!(epoch.crowd_size, 10);
        assert_eq!(epoch.requests_scheduled, 20);
    }
}
