//! MFC experiment configuration.
//!
//! The defaults are the values the paper uses for its standard MFC runs:
//! a 100 ms threshold, crowd increments of 5–10 clients, at least 50
//! registered clients, a 15-client minimum before any inference is drawn,
//! ten-second epoch gaps and a ten-second client-side timeout.  Variants
//! used in the paper — the 250 ms threshold negotiated with the QTNP/Univ-2
//! operators, MFC-mr's multiple requests per client, the staggered
//! extension of §6 — are all expressed through this configuration.

use mfc_simcore::SimDuration;
use serde::{Deserialize, Serialize};

use crate::types::Stage;

/// Which stages an experiment runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageSelection {
    /// Base, Small Query and Large Object, in that order (the paper's full
    /// experiment).
    All,
    /// An explicit subset, run in the given order (the §5 large-scale study
    /// runs single stages against hundreds of servers).
    Only(Vec<Stage>),
}

impl StageSelection {
    /// The stages to run, in order.
    pub fn stages(&self) -> Vec<Stage> {
        match self {
            StageSelection::All => Stage::ALL.to_vec(),
            StageSelection::Only(list) => list.clone(),
        }
    }
}

/// Quiescence-aware scheduling: how the coordinator reacts when an epoch
/// lands in a background-load surge window.
///
/// The paper runs its cooperating-site MFCs at negotiated quiet hours and
/// notes that background load shifts stopping sizes (Univ-3, §4).  With a
/// policy set, the coordinator tracks each stage's baseline background
/// rate (the median over epochs that were not themselves surged) and,
/// when an epoch's server-reported background rate exceeds
/// `surge_factor × baseline` (and `min_surge_rate` absolutely), flags the
/// epoch as surge-suspected, waits `backoff`, and re-runs it — up to
/// `max_retries` times.  Flagged attempts stay in the report for audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuiescencePolicy {
    /// An epoch is surged when its background rate exceeds this multiple
    /// of the stage's baseline rate.
    pub surge_factor: f64,
    /// …and exceeds this absolute floor (requests/s), so idle-site noise
    /// never counts as a surge.
    pub min_surge_rate: f64,
    /// How long to wait before re-running a surged epoch.
    pub backoff: SimDuration,
    /// Maximum re-runs per epoch; when exhausted the surged epoch's result
    /// stands (and the inference will see the surge flag).
    pub max_retries: u32,
}

impl Default for QuiescencePolicy {
    fn default() -> Self {
        QuiescencePolicy {
            surge_factor: 3.0,
            min_surge_rate: 1.0,
            backoff: SimDuration::from_secs(60),
            max_retries: 2,
        }
    }
}

impl QuiescencePolicy {
    /// The surge threshold for a given baseline rate: an epoch whose
    /// background rate exceeds this is surge-suspected.
    pub fn threshold(&self, baseline_rate: f64) -> f64 {
        (self.surge_factor * baseline_rate).max(self.min_surge_rate)
    }

    /// Checks the policy for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.surge_factor.is_finite() || self.surge_factor <= 1.0 {
            return Err("surge_factor must be finite and > 1".to_string());
        }
        if !self.min_surge_rate.is_finite() || self.min_surge_rate < 0.0 {
            return Err("min_surge_rate must be finite and >= 0".to_string());
        }
        Ok(())
    }
}

/// Complete configuration of one MFC experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfcConfig {
    /// Normalized response-time threshold θ that counts as a perceptible
    /// degradation.
    pub threshold: SimDuration,
    /// How many clients are added per epoch.
    pub crowd_increment: usize,
    /// Largest crowd size the coordinator will schedule.
    pub max_crowd: usize,
    /// Minimum number of registered clients required to start (the paper
    /// aborts below 50 so the crowd reflects genuine wide-area diversity).
    pub min_registered_clients: usize,
    /// Minimum crowd size before the check phase may terminate a stage
    /// (below this the median is considered statistically meaningless and
    /// the coordinator always progresses).
    pub min_crowd_for_inference: usize,
    /// Gap between successive epochs.
    pub epoch_gap: SimDuration,
    /// Client-side request timeout.
    pub client_timeout: SimDuration,
    /// Delay between the latency-measurement step and the intended arrival
    /// instant of the first epoch's requests.
    pub schedule_lead: SimDuration,
    /// Number of parallel requests each participating client issues
    /// (1 = standard MFC; 2 and 5 are the paper's MFC-mr variants).
    pub requests_per_client: usize,
    /// Optional staggering: when set, request arrivals at the target are
    /// spaced by this interval instead of being simultaneous (§6).
    pub stagger: Option<SimDuration>,
    /// Stages to run.
    pub stages: StageSelection,
    /// Quiescence-aware scheduling: when set, epochs that land in a
    /// detected background-load surge are flagged, delayed and re-run.
    /// `None` (the default, and the paper's behaviour) runs every epoch
    /// exactly once regardless of background conditions.
    pub quiescence: Option<QuiescencePolicy>,
    /// Fraction of clients that must see the degradation in the Large
    /// Object stage (the paper uses the 90th percentile instead of the
    /// median there); expressed as the detection quantile override.
    pub large_object_quantile: f64,
}

impl Default for MfcConfig {
    fn default() -> Self {
        MfcConfig::standard()
    }
}

impl MfcConfig {
    /// The standard MFC configuration: 100 ms threshold, increments of 5,
    /// a 50-client registration minimum and single requests per client.
    pub fn standard() -> Self {
        MfcConfig {
            threshold: SimDuration::from_millis(100),
            crowd_increment: 5,
            max_crowd: 55,
            min_registered_clients: 50,
            min_crowd_for_inference: 15,
            epoch_gap: SimDuration::from_secs(10),
            client_timeout: SimDuration::from_secs(10),
            schedule_lead: SimDuration::from_secs(15),
            requests_per_client: 1,
            stagger: None,
            stages: StageSelection::All,
            quiescence: None,
            large_object_quantile: 0.9,
        }
    }

    /// The MFC-mr variant: each client opens `requests_per_client` parallel
    /// connections, multiplying the simultaneous request count without
    /// needing more client hosts (paper §4.1).
    pub fn multi_request(requests_per_client: usize) -> Self {
        MfcConfig {
            requests_per_client: requests_per_client.max(1),
            ..MfcConfig::standard()
        }
    }

    /// The configuration used against QTNP and the university servers after
    /// consulting their operators: MFC-mr(2) with a 250 ms threshold and a
    /// larger crowd ceiling.
    pub fn cooperative_mr() -> Self {
        MfcConfig {
            threshold: SimDuration::from_millis(250),
            requests_per_client: 2,
            max_crowd: 75,
            crowd_increment: 5,
            ..MfcConfig::standard()
        }
    }

    /// Sets the degradation threshold.
    pub fn with_threshold(mut self, threshold: SimDuration) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the maximum crowd size.
    pub fn with_max_crowd(mut self, max_crowd: usize) -> Self {
        self.max_crowd = max_crowd;
        self
    }

    /// Sets the per-epoch crowd increment.
    pub fn with_increment(mut self, increment: usize) -> Self {
        self.crowd_increment = increment.max(1);
        self
    }

    /// Sets the minimum number of registered clients (use a small value for
    /// lab experiments with few client hosts).
    pub fn with_min_clients(mut self, min_clients: usize) -> Self {
        self.min_registered_clients = min_clients;
        self
    }

    /// Restricts the experiment to the given stages.
    pub fn with_stages(mut self, stages: Vec<Stage>) -> Self {
        self.stages = StageSelection::Only(stages);
        self
    }

    /// Sets the number of parallel requests per client (MFC-mr).
    pub fn with_requests_per_client(mut self, requests: usize) -> Self {
        self.requests_per_client = requests.max(1);
        self
    }

    /// Enables the staggered variant with the given inter-arrival spacing.
    pub fn with_stagger(mut self, spacing: SimDuration) -> Self {
        self.stagger = Some(spacing);
        self
    }

    /// Enables quiescence-aware scheduling with the given policy: epochs
    /// coinciding with a detected background-load surge are flagged,
    /// delayed by the policy's backoff and re-run.
    pub fn with_quiescence(mut self, policy: QuiescencePolicy) -> Self {
        self.quiescence = Some(policy);
        self
    }

    /// Sets the scheduling lead time — the gap between the start of an
    /// epoch and the intended arrival instant of its requests.  The paper
    /// uses 15 s over the wide area; live loopback experiments can use a
    /// few hundred milliseconds so the wall-clock run stays short.
    pub fn with_schedule_lead(mut self, lead: SimDuration) -> Self {
        self.schedule_lead = lead;
        self
    }

    /// The sequence of crowd sizes the coordinator will walk through.
    pub fn crowd_schedule(&self) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut size = self.crowd_increment.max(1);
        while size <= self.max_crowd {
            sizes.push(size);
            size += self.crowd_increment.max(1);
        }
        if sizes.last().copied() != Some(self.max_crowd) && self.max_crowd > 0 {
            sizes.push(self.max_crowd);
        }
        sizes
    }

    /// Checks the configuration for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.threshold.is_zero() {
            return Err("threshold must be positive".to_string());
        }
        if self.max_crowd == 0 {
            return Err("max_crowd must be at least 1".to_string());
        }
        if self.crowd_increment == 0 {
            return Err("crowd_increment must be at least 1".to_string());
        }
        if self.requests_per_client == 0 {
            return Err("requests_per_client must be at least 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.large_object_quantile) {
            return Err("large_object_quantile must be within [0, 1]".to_string());
        }
        if self.client_timeout.is_zero() {
            return Err("client_timeout must be positive".to_string());
        }
        if let Some(policy) = &self.quiescence {
            policy.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matches_paper_defaults() {
        let cfg = MfcConfig::standard();
        assert_eq!(cfg.threshold, SimDuration::from_millis(100));
        assert_eq!(cfg.min_registered_clients, 50);
        assert_eq!(cfg.min_crowd_for_inference, 15);
        assert_eq!(cfg.client_timeout, SimDuration::from_secs(10));
        assert_eq!(cfg.epoch_gap, SimDuration::from_secs(10));
        assert_eq!(cfg.requests_per_client, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn cooperative_mr_matches_section_4() {
        let cfg = MfcConfig::cooperative_mr();
        assert_eq!(cfg.threshold, SimDuration::from_millis(250));
        assert_eq!(cfg.requests_per_client, 2);
    }

    #[test]
    fn crowd_schedule_increments_and_caps() {
        let cfg = MfcConfig::standard().with_increment(10).with_max_crowd(45);
        assert_eq!(cfg.crowd_schedule(), vec![10, 20, 30, 40, 45]);
        let cfg = MfcConfig::standard().with_increment(5).with_max_crowd(20);
        assert_eq!(cfg.crowd_schedule(), vec![5, 10, 15, 20]);
    }

    #[test]
    fn builders_apply() {
        let cfg = MfcConfig::standard()
            .with_threshold(SimDuration::from_millis(250))
            .with_max_crowd(150)
            .with_min_clients(10)
            .with_requests_per_client(5)
            .with_stagger(SimDuration::from_millis(20))
            .with_stages(vec![Stage::Base]);
        assert_eq!(cfg.threshold, SimDuration::from_millis(250));
        assert_eq!(cfg.max_crowd, 150);
        assert_eq!(cfg.min_registered_clients, 10);
        assert_eq!(cfg.requests_per_client, 5);
        assert_eq!(cfg.stagger, Some(SimDuration::from_millis(20)));
        assert_eq!(cfg.stages.stages(), vec![Stage::Base]);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn stage_selection_all_is_ordered() {
        assert_eq!(
            StageSelection::All.stages(),
            vec![Stage::Base, Stage::SmallQuery, Stage::LargeObject]
        );
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut cfg = MfcConfig::standard();
        cfg.threshold = SimDuration::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = MfcConfig::standard();
        cfg.max_crowd = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MfcConfig::standard();
        cfg.large_object_quantile = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = MfcConfig::standard();
        cfg.requests_per_client = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn quiescence_policy_validates() {
        let cfg = MfcConfig::standard().with_quiescence(QuiescencePolicy::default());
        assert!(cfg.validate().is_ok());
        let policy = QuiescencePolicy::default();
        assert_eq!(policy.threshold(10.0), 30.0);
        // The absolute floor dominates near-idle baselines.
        assert_eq!(policy.threshold(0.1), 1.0);
        let cfg = MfcConfig::standard().with_quiescence(QuiescencePolicy {
            surge_factor: 1.0,
            ..QuiescencePolicy::default()
        });
        assert!(cfg.validate().is_err());
        let cfg = MfcConfig::standard().with_quiescence(QuiescencePolicy {
            min_surge_rate: -2.0,
            ..QuiescencePolicy::default()
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_increment_is_normalised_by_builder() {
        let cfg = MfcConfig::standard().with_increment(0);
        assert_eq!(cfg.crowd_increment, 1);
    }
}
