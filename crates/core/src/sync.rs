//! The delay-compensating request scheduler.
//!
//! An epoch is only meaningful if the `N` participating requests actually
//! hit the server *simultaneously*.  Rather than a distributed
//! synchronization protocol, the paper leverages the centralized
//! coordinator: each client `i` measures its round-trip time to the target
//! (`T_target_i`), the coordinator measures its round-trip time to each
//! client (`T_coord_i`), and the coordinator then transmits the command to
//! client `i` at
//!
//! ```text
//!     T − 0.5·T_coord_i − 1.5·T_target_i
//! ```
//!
//! so that, if latencies are stationary, the command reaches the client at
//! `T − 1.5·T_target_i`, the client immediately opens a TCP connection, and
//! the first byte of the HTTP request lands on the server at `T`
//! (paper §2.2.4).  The §6 "staggered" extension replaces the single target
//! instant `T` with a ladder of instants spaced `m` milliseconds apart.

use mfc_simcore::SimDuration;
use serde::{Deserialize, Serialize};

use crate::types::ClientId;

/// The latency measurements the scheduler needs for one client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientLatency {
    /// The client in question.
    pub client: ClientId,
    /// Round-trip time between the coordinator and the client, as measured
    /// by the coordinator's registration ping.
    pub coordinator_rtt: SimDuration,
    /// Round-trip time between the client and the target, as measured by
    /// the client during the delay-computation step.
    pub target_rtt: SimDuration,
}

/// One scheduling decision: when to send the command, and when the request
/// should arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledCommand {
    /// The client being scheduled.
    pub client: ClientId,
    /// Offset (from the epoch origin) at which the coordinator transmits
    /// the command.
    pub send_offset: SimDuration,
    /// Offset at which the request's first byte is intended to reach the
    /// target.
    pub intended_arrival: SimDuration,
}

/// Computes the command transmission offset for a single client given the
/// intended arrival offset `target_arrival`.
///
/// If the compensation (`0.5·T_coord + 1.5·T_target`) exceeds the intended
/// arrival offset the send time saturates at zero — the command simply goes
/// out immediately and that client's request will be late, which is exactly
/// what happens in the real system when a client is too far away for the
/// chosen lead time.
///
/// # Examples
///
/// ```
/// use mfc_core::sync::{send_offset, ClientLatency};
/// use mfc_core::types::ClientId;
/// use mfc_simcore::SimDuration;
///
/// let latency = ClientLatency {
///     client: ClientId(3),
///     coordinator_rtt: SimDuration::from_millis(40),
///     target_rtt: SimDuration::from_millis(100),
/// };
/// // T = 1s: send at 1s − 20ms − 150ms = 830ms.
/// let offset = send_offset(&latency, SimDuration::from_secs(1));
/// assert_eq!(offset, SimDuration::from_millis(830));
/// ```
pub fn send_offset(latency: &ClientLatency, target_arrival: SimDuration) -> SimDuration {
    let compensation = latency.coordinator_rtt.mul_f64(0.5) + latency.target_rtt.mul_f64(1.5);
    target_arrival.saturating_sub(compensation)
}

/// The scheduler: turns per-client latency measurements into per-client
/// command send times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncScheduler {
    /// The lead time between "now" (when the coordinator starts the epoch)
    /// and the intended arrival instant of the first request.  Must exceed
    /// the largest per-client compensation for perfect synchronization.
    pub lead: SimDuration,
    /// Spacing between successive intended arrivals; `None` means all
    /// requests target the same instant (the standard MFC).
    pub stagger: Option<SimDuration>,
}

impl SyncScheduler {
    /// A scheduler with the paper's 15-second lead and simultaneous
    /// arrivals.
    pub fn simultaneous(lead: SimDuration) -> Self {
        SyncScheduler {
            lead,
            stagger: None,
        }
    }

    /// A scheduler producing one arrival every `spacing` (the §6 staggered
    /// MFC).
    pub fn staggered(lead: SimDuration, spacing: SimDuration) -> Self {
        SyncScheduler {
            lead,
            stagger: Some(spacing),
        }
    }

    /// Computes the command schedule for the given clients.
    ///
    /// The ordering of `latencies` determines which client gets which rung
    /// of the staggered ladder; for the simultaneous scheduler the order is
    /// irrelevant.
    pub fn schedule(&self, latencies: &[ClientLatency]) -> Vec<ScheduledCommand> {
        latencies
            .iter()
            .enumerate()
            .map(|(i, latency)| {
                let arrival = match self.stagger {
                    Some(spacing) => self.lead + spacing * i as u64,
                    None => self.lead,
                };
                ScheduledCommand {
                    client: latency.client,
                    send_offset: send_offset(latency, arrival),
                    intended_arrival: arrival,
                }
            })
            .collect()
    }

    /// A naive schedule that ignores latency measurements and simply sends
    /// every command at the epoch origin.  Used by the ablation bench to
    /// quantify how much the compensation actually buys.
    pub fn naive_broadcast(&self, latencies: &[ClientLatency]) -> Vec<ScheduledCommand> {
        latencies
            .iter()
            .map(|latency| ScheduledCommand {
                client: latency.client,
                send_offset: SimDuration::ZERO,
                intended_arrival: self.lead,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(client: u32, coord_ms: u64, target_ms: u64) -> ClientLatency {
        ClientLatency {
            client: ClientId(client),
            coordinator_rtt: SimDuration::from_millis(coord_ms),
            target_rtt: SimDuration::from_millis(target_ms),
        }
    }

    #[test]
    fn send_offset_formula_matches_paper() {
        // T − 0.5·Tcoord − 1.5·Ttarget
        let offset = send_offset(&lat(1, 60, 80), SimDuration::from_secs(15));
        assert_eq!(offset, SimDuration::from_millis(15_000 - 30 - 120));
    }

    #[test]
    fn send_offset_saturates_at_zero() {
        let offset = send_offset(&lat(1, 500, 500), SimDuration::from_millis(100));
        assert_eq!(offset, SimDuration::ZERO);
    }

    #[test]
    fn perfect_latencies_arrive_simultaneously() {
        // If the network behaves exactly as measured, every request arrives
        // at `lead`: send_offset + 0.5·Tcoord (command travel) + 1.5·Ttarget
        // (handshake) == lead for every client.
        let scheduler = SyncScheduler::simultaneous(SimDuration::from_secs(15));
        let latencies = vec![lat(0, 20, 30), lat(1, 100, 200), lat(2, 250, 10)];
        for command in scheduler.schedule(&latencies) {
            let latency = latencies
                .iter()
                .find(|l| l.client == command.client)
                .unwrap();
            let arrival = command.send_offset
                + latency.coordinator_rtt.mul_f64(0.5)
                + latency.target_rtt.mul_f64(1.5);
            assert_eq!(arrival, SimDuration::from_secs(15));
            assert_eq!(command.intended_arrival, SimDuration::from_secs(15));
        }
    }

    #[test]
    fn farther_clients_are_commanded_earlier() {
        let scheduler = SyncScheduler::simultaneous(SimDuration::from_secs(15));
        let near = lat(0, 10, 20);
        let far = lat(1, 10, 300);
        let commands = scheduler.schedule(&[near, far]);
        assert!(commands[1].send_offset < commands[0].send_offset);
    }

    #[test]
    fn staggered_schedule_spaces_arrivals() {
        let scheduler =
            SyncScheduler::staggered(SimDuration::from_secs(15), SimDuration::from_millis(50));
        let latencies: Vec<ClientLatency> = (0..5).map(|i| lat(i, 40, 60)).collect();
        let commands = scheduler.schedule(&latencies);
        for (i, command) in commands.iter().enumerate() {
            assert_eq!(
                command.intended_arrival,
                SimDuration::from_secs(15) + SimDuration::from_millis(50 * i as u64)
            );
        }
        // Successive send offsets also move later for identical latencies.
        assert!(commands
            .windows(2)
            .all(|w| w[0].send_offset < w[1].send_offset));
    }

    #[test]
    fn naive_broadcast_sends_everything_immediately() {
        let scheduler = SyncScheduler::simultaneous(SimDuration::from_secs(15));
        let latencies = vec![lat(0, 20, 30), lat(1, 100, 200)];
        for command in scheduler.naive_broadcast(&latencies) {
            assert_eq!(command.send_offset, SimDuration::ZERO);
        }
    }

    #[test]
    fn empty_client_list_gives_empty_schedule() {
        let scheduler = SyncScheduler::simultaneous(SimDuration::from_secs(15));
        assert!(scheduler.schedule(&[]).is_empty());
    }
}
