//! Deterministic parallel execution of independent simulation trials.
//!
//! The paper's headline results are *surveys*: hundreds of independent MFC
//! runs, one per `(site, seed)` pair, whose outputs are only combined at the
//! end.  Every such trial owns its backend, coordinator and RNG streams, so
//! the set is embarrassingly parallel — but reproducibility is
//! non-negotiable: `repro` output and `--json` artifacts must be
//! **bit-identical** whether the trials ran on one thread or sixteen.
//!
//! [`TrialRunner`] guarantees that by construction:
//!
//! * inputs are claimed from a shared atomic cursor (no per-thread striding,
//!   so any thread count covers exactly the same index set),
//! * every trial's closure receives its *index* and input and must derive
//!   all randomness from those (the experiment harnesses seed each trial as
//!   `seed ⊕ index`, exactly as the serial loops did),
//! * results are written into their input's slot, so the output `Vec` is in
//!   input order no matter which thread finished first.
//!
//! The thread count comes from the `MFC_THREADS` environment variable
//! (default: available parallelism).  `MFC_THREADS=1` degenerates to the
//! plain serial loop — same closures, same order, same output bytes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "MFC_THREADS";

/// Fans independent trials across worker threads, collecting results in
/// input order.
///
/// # Examples
///
/// ```
/// use mfc_core::runner::TrialRunner;
///
/// let squares = TrialRunner::with_threads(4).run(vec![1u64, 2, 3, 4], |index, x| {
///     // All randomness must derive from `index` / the input, never from
///     // shared state — that is what makes the fan-out deterministic.
///     let _ = index;
///     x * x
/// });
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct TrialRunner {
    threads: usize,
}

impl Default for TrialRunner {
    fn default() -> Self {
        TrialRunner::from_env()
    }
}

impl TrialRunner {
    /// A runner with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> TrialRunner {
        TrialRunner {
            threads: threads.max(1),
        }
    }

    /// A strictly serial runner: the reference execution the parallel path
    /// must reproduce byte-for-byte.
    pub fn serial() -> TrialRunner {
        TrialRunner::with_threads(1)
    }

    /// A runner configured from `MFC_THREADS`, defaulting to the machine's
    /// available parallelism.
    pub fn from_env() -> TrialRunner {
        let configured = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = configured.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        TrialRunner::with_threads(threads)
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trial` once per input and returns the outputs in input order.
    ///
    /// `trial` is called with `(index, input)`.  With one thread (or one
    /// input) no threads are spawned at all — the loop runs inline, which
    /// keeps single-trial callers overhead-free and gives the determinism
    /// tests a true serial baseline.
    pub fn run<I, O, F>(&self, inputs: Vec<I>, trial: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        let workers = self.threads.min(inputs.len());
        if workers <= 1 {
            return inputs
                .into_iter()
                .enumerate()
                .map(|(index, input)| trial(index, input))
                .collect();
        }

        let total = inputs.len();
        // Hand inputs out through per-slot takeable cells and write results
        // back into per-slot cells: claiming is a single fetch_add and no
        // result ever waits on another trial.
        let inputs: Vec<Mutex<Option<I>>> =
            inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let results: Vec<Mutex<Option<O>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let input = inputs[index]
                        .lock()
                        .expect("trial input lock")
                        .take()
                        .expect("each input is claimed exactly once");
                    let output = trial(index, input);
                    *results[index].lock().expect("trial result lock") = Some(output);
                });
            }
        });

        results
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.into_inner()
                    .expect("trial result lock")
                    .unwrap_or_else(|| panic!("trial {index} produced no result"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_input_order() {
        let runner = TrialRunner::with_threads(8);
        // Skewed per-trial cost so completion order differs from index order.
        let outputs = runner.run((0..64u64).collect(), |index, value| {
            if index % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            value * 10
        });
        assert_eq!(outputs, (0..64u64).map(|v| v * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |index: usize, value: u64| {
            // A little index-derived pseudo-randomness, like real trials.
            let mut h = value ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..100 {
                h = h.rotate_left(13).wrapping_mul(31).wrapping_add(7);
            }
            h
        };
        let inputs: Vec<u64> = (0..257).map(|i| i * 3 + 1).collect();
        let serial = TrialRunner::serial().run(inputs.clone(), work);
        for threads in [2, 3, 8, 64] {
            let parallel = TrialRunner::with_threads(threads).run(inputs.clone(), work);
            assert_eq!(serial, parallel, "thread count {threads} changed results");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let runner = TrialRunner::with_threads(4);
        let empty: Vec<u32> = runner.run(Vec::<u32>::new(), |_, v| v);
        assert!(empty.is_empty());
        assert_eq!(runner.run(vec![41u32], |_, v| v + 1), vec![42]);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(TrialRunner::with_threads(0).threads(), 1);
    }

    #[test]
    fn non_send_sync_closure_state_is_supported_via_inputs() {
        // Inputs may be owning, non-Clone values.
        let inputs: Vec<String> = (0..16).map(|i| format!("site-{i}")).collect();
        let outputs =
            TrialRunner::with_threads(4).run(inputs, |index, site| format!("{index}:{site}"));
        assert_eq!(outputs[3], "3:site-3");
        assert_eq!(outputs.len(), 16);
    }
}
