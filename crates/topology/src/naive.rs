//! The textbook progressive-filling reference model.
//!
//! [`NaiveNetwork`] computes the network max–min fair allocation the way
//! the definition reads: all unfrozen flow rates rise together; the next
//! event is either a flow reaching its private cap or a link reaching its
//! capacity; a saturated link freezes every flow through it.  Every
//! operation is an O(F·L) scan whose correctness is self-evident, which is
//! the point — the randomized property tests assert that
//! [`super::NetworkGraph`]'s incremental water-filling core produces the
//! same rates, remaining bytes, completion times and completion order.
//! Do not use it outside tests and benches.

use std::collections::BTreeMap;

use mfc_simcore::{SimDuration, SimTime};
use mfc_simnet::{Bandwidth, FlowId};

use crate::graph::LinkId;

#[derive(Debug, Clone)]
struct NaiveFlow {
    links: Vec<LinkId>,
    remaining_bytes: f64,
    rate_cap: Bandwidth,
    current_rate: Bandwidth,
}

/// Progressive-filling max–min fairness over a link graph, the executable
/// specification for [`super::NetworkGraph`].
#[derive(Debug, Clone, Default)]
pub struct NaiveNetwork {
    capacities: Vec<Bandwidth>,
    bytes_transferred: Vec<f64>,
    flows: BTreeMap<FlowId, NaiveFlow>,
    last_advance: SimTime,
}

impl NaiveNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        NaiveNetwork::default()
    }

    /// Adds a link of the given capacity (bytes/s).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite.
    pub fn add_link(&mut self, capacity: Bandwidth) -> LinkId {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "link capacity must be positive and finite"
        );
        let id = LinkId(u32::try_from(self.capacities.len()).expect("too many links"));
        self.capacities.push(capacity);
        self.bytes_transferred.push(0.0);
        id
    }

    /// Changes a link's capacity; see [`super::NetworkGraph::set_link_capacity`].
    pub fn set_link_capacity(&mut self, link: LinkId, capacity: Bandwidth, now: SimTime) {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "link capacity must be positive and finite"
        );
        self.advance(now);
        self.capacities[link.0 as usize] = capacity;
        self.reallocate();
    }

    /// Total bytes drained through a link since construction.
    pub fn link_bytes_transferred(&self, link: LinkId) -> f64 {
        self.bytes_transferred[link.0 as usize]
    }

    /// Current aggregate throughput across a link.
    pub fn link_utilization_bytes_per_sec(&self, link: LinkId) -> f64 {
        self.flows
            .values()
            .filter(|f| f.links.contains(&link))
            .map(|f| f.current_rate)
            .sum()
    }

    /// Starts a transfer over the given links; see
    /// [`super::NetworkGraph::start_flow`].
    pub fn start_flow(
        &mut self,
        id: FlowId,
        links: &[LinkId],
        bytes: f64,
        rate_cap: Bandwidth,
        now: SimTime,
    ) {
        assert!(bytes >= 0.0, "flow size must be non-negative");
        assert!(
            !links.is_empty() || rate_cap.max(0.0).is_finite(),
            "a flow on an empty route must carry a finite cap"
        );
        self.advance(now);
        let previous = self.flows.insert(
            id,
            NaiveFlow {
                links: links.to_vec(),
                remaining_bytes: bytes,
                rate_cap: rate_cap.max(0.0),
                current_rate: 0.0,
            },
        );
        assert!(previous.is_none(), "flow {id:?} is already active");
        self.reallocate();
    }

    /// Removes a flow, returning its untransferred bytes.
    pub fn finish_flow(&mut self, id: FlowId, now: SimTime) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        self.reallocate();
        Some(flow.remaining_bytes)
    }

    /// Changes the private cap of an active flow.
    pub fn set_rate_cap(&mut self, id: FlowId, rate_cap: Bandwidth, now: SimTime) {
        self.advance(now);
        if let Some(flow) = self.flows.get_mut(&id) {
            flow.rate_cap = rate_cap.max(0.0);
            self.reallocate();
        }
    }

    /// Advances the fluid model, draining every flow individually.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let elapsed = (now - self.last_advance).as_secs_f64();
        for flow in self.flows.values_mut() {
            let drained = (flow.current_rate * elapsed).min(flow.remaining_bytes);
            if drained > 0.0 {
                flow.remaining_bytes -= drained;
                for &link in &flow.links {
                    self.bytes_transferred[link.0 as usize] += drained;
                }
            }
        }
        self.last_advance = now;
    }

    /// Returns the next completion by scanning every flow.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, FlowId)> {
        self.advance(now);
        let mut best: Option<(SimDuration, FlowId)> = None;
        for (&id, flow) in &self.flows {
            let candidate = if flow.remaining_bytes <= 0.0 {
                (SimDuration::ZERO, id)
            } else if flow.current_rate > 0.0 && flow.remaining_bytes.is_finite() {
                let secs = flow.remaining_bytes / flow.current_rate;
                (
                    SimDuration::from_micros((secs * 1_000_000.0).ceil().max(0.0) as u64),
                    id,
                )
            } else {
                continue;
            };
            best = Some(match best {
                Some(b) if b <= candidate => b,
                _ => candidate,
            });
        }
        best.map(|(d, id)| (self.last_advance + d, id))
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Remaining bytes for a flow, if active.
    pub fn remaining_bytes(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining_bytes)
    }

    /// The rate currently allocated to a flow, if active.
    pub fn current_rate(&self, id: FlowId) -> Option<Bandwidth> {
        self.flows.get(&id).map(|f| f.current_rate)
    }

    /// Progressive filling: raise all unfrozen rates together; freeze flows
    /// at their cap and flows through links that saturate; repeat.
    fn reallocate(&mut self) {
        for flow in self.flows.values_mut() {
            flow.current_rate = 0.0;
        }
        let mut unfrozen: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining_bytes > 0.0)
            .map(|(&id, _)| id)
            .collect();
        unfrozen.sort_unstable();

        while !unfrozen.is_empty() {
            // Headroom before the next flow hits its private cap.
            let mut delta = f64::INFINITY;
            for id in &unfrozen {
                let flow = &self.flows[id];
                delta = delta.min(flow.rate_cap - flow.current_rate);
            }
            // Headroom before the next link saturates.
            let mut link_delta: Vec<f64> = vec![f64::INFINITY; self.capacities.len()];
            for (link_index, &capacity) in self.capacities.iter().enumerate() {
                let link = LinkId(link_index as u32);
                let used: f64 = self
                    .flows
                    .values()
                    .filter(|f| f.remaining_bytes > 0.0 && f.links.contains(&link))
                    .map(|f| f.current_rate)
                    .sum();
                let count = unfrozen
                    .iter()
                    .filter(|id| self.flows[id].links.contains(&link))
                    .count();
                if count > 0 {
                    link_delta[link_index] = ((capacity - used) / count as f64).max(0.0);
                    delta = delta.min(link_delta[link_index]);
                }
            }
            if !delta.is_finite() {
                // No cap and no link bounds the remaining flows; the graph
                // constructors reject this (an empty route needs a finite
                // cap), so it is unreachable with valid inputs.
                unreachable!("unbounded flow in progressive filling");
            }
            for id in &unfrozen {
                self.flows.get_mut(id).expect("flow exists").current_rate += delta;
            }
            // Freeze flows at their cap and flows on saturated links.
            let saturated: Vec<LinkId> = link_delta
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d.is_finite() && d <= delta)
                .map(|(i, _)| LinkId(i as u32))
                .collect();
            unfrozen.retain(|id| {
                let flow = &self.flows[id];
                // The cap test carries a relative tolerance: `rate + (cap −
                // rate)` can land one ulp under `cap`, and a strict
                // comparison would then spin on vanishing deltas.  Uncapped
                // flows can never freeze on their (infinite) cap.
                (!flow.rate_cap.is_finite()
                    || flow.rate_cap - flow.current_rate > 1e-9 * flow.rate_cap.max(1.0))
                    && !flow.links.iter().any(|l| saturated.contains(l))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_simnet::mbps;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn single_link_is_plain_max_min() {
        let mut net = NaiveNetwork::new();
        let link = net.add_link(1_000_000.0);
        net.start_flow(FlowId(1), &[link], 1e6, f64::INFINITY, t(0.0));
        net.start_flow(FlowId(2), &[link], 1e6, 200_000.0, t(0.0));
        assert!((net.current_rate(FlowId(1)).unwrap() - 800_000.0).abs() < 1e-6);
        assert!((net.current_rate(FlowId(2)).unwrap() - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn two_hop_bottleneck_binds_the_narrow_link() {
        let mut net = NaiveNetwork::new();
        let transit = net.add_link(mbps(8.0));
        let access = net.add_link(mbps(80.0));
        net.start_flow(FlowId(1), &[transit, access], 10e6, f64::INFINITY, t(0.0));
        net.start_flow(FlowId(2), &[access], 10e6, f64::INFINITY, t(0.0));
        assert!((net.current_rate(FlowId(1)).unwrap() - 1e6).abs() < 1e-6);
        assert!((net.current_rate(FlowId(2)).unwrap() - 9e6).abs() < 1e-6);
        assert!((net.link_utilization_bytes_per_sec(access) - 10e6).abs() < 1e-6);
    }

    #[test]
    fn completions_drain_in_order() {
        let mut net = NaiveNetwork::new();
        let link = net.add_link(1_000_000.0);
        net.start_flow(FlowId(1), &[link], 500_000.0, f64::INFINITY, t(0.0));
        net.start_flow(FlowId(2), &[link], 2_000_000.0, f64::INFINITY, t(0.0));
        let (done1, id1) = net.next_completion(t(0.0)).unwrap();
        assert_eq!(id1, FlowId(1));
        assert!((done1.as_secs_f64() - 1.0).abs() < 1e-5);
        net.finish_flow(id1, done1);
        let (done2, id2) = net.next_completion(done1).unwrap();
        assert_eq!(id2, FlowId(2));
        assert!((done2.as_secs_f64() - 2.5).abs() < 1e-5);
    }
}
