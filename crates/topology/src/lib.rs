//! Shared-bottleneck WAN graphs for the MFC reproduction.
//!
//! The paper's central inference hazard is mistaking congestion *somewhere
//! on the path* for a constraint *at the server* (§2.2.3 uses the 90th
//! percentile in the Large Object stage precisely to dodge shared wide-area
//! bottlenecks).  The pre-topology simulation could not even express that
//! hazard: the target's access link was the only shared network resource,
//! so every bandwidth bottleneck was by construction at the server.
//!
//! This crate adds the missing scenario space:
//!
//! * [`NetworkGraph`] — a flow-level graph of shared links with global
//!   max–min fair sharing, computed incrementally by per-link water-filling
//!   over `CapMultiset`s and per-route virtual-time completion tracking, so
//!   a 10k-flow crowd over a multi-hop graph stays near O(E·log C);
//! * [`NaiveNetwork`] — the textbook progressive-filling algorithm kept as
//!   the executable specification for the property tests;
//! * [`TopologySpec`] — serializable scenario descriptions (per-vantage-
//!   group transit links, optional backbone, cross traffic) that
//!   `mfc-webserver` instantiates in front of the target's access link and
//!   `mfc-core` uses to localize bottlenecks per vantage group.
//!
//! The crate only knows about links, routes and flows; the server model and
//! the MFC protocol live above it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod naive;
pub mod spec;

pub use graph::{LinkId, NetworkGraph, RouteId};
pub use naive::NaiveNetwork;
pub use spec::{BuiltTopology, TopologySpec, TransitSpec};
