//! Serializable descriptions of shared-bottleneck WAN scenarios.
//!
//! A [`TopologySpec`] says where the wide-area bottlenecks sit between the
//! MFC's vantage groups and the target: one shared transit/ISP link per
//! vantage group (clients of a group are "clustered behind" it, like
//! PlanetLab sites sharing a campus uplink), an optional shared backbone
//! link in front of the target's access link, and optional persistent
//! cross-traffic flows competing on each transit link.  The degenerate
//! spec — no transit links — reproduces the pre-topology model where the
//! target's access link is the only shared resource, so every existing
//! scenario keeps its behaviour.
//!
//! The spec is pure data; [`TopologySpec::build`] instantiates it as a
//! [`NetworkGraph`] rooted at the target's access link.

use mfc_simnet::Bandwidth;
use serde::{Deserialize, Serialize};

use crate::graph::{LinkId, NetworkGraph, RouteId};

/// One vantage group's shared transit link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitSpec {
    /// Capacity of the shared transit link in bytes/s.
    pub capacity: Bandwidth,
    /// Number of persistent non-target ("cross traffic") flows sharing the
    /// transit link; they enter and leave the WAN without touching the
    /// target's access link.
    pub cross_flows: u32,
    /// Private rate cap of each cross-traffic flow in bytes/s.
    pub cross_rate: Bandwidth,
}

impl TransitSpec {
    /// A transit link with no cross traffic.
    pub fn clean(capacity: Bandwidth) -> Self {
        TransitSpec {
            capacity,
            cross_flows: 0,
            cross_rate: 0.0,
        }
    }
}

/// Where the shared wide-area bottlenecks sit in front of a target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// One shared transit link per vantage group.  Empty means the classic
    /// single-bottleneck model (every client reaches the target's access
    /// link directly).
    pub transits: Vec<TransitSpec>,
    /// Optional shared backbone link every group traverses between its
    /// transit link and the target's access link, in bytes/s.
    pub backbone: Option<Bandwidth>,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec::direct()
    }
}

impl TopologySpec {
    /// The degenerate topology: no shared links besides the target's own
    /// access link.
    pub fn direct() -> Self {
        TopologySpec {
            transits: Vec::new(),
            backbone: None,
        }
    }

    /// A star of clean transit links, one per vantage group.
    pub fn star(capacities: &[Bandwidth]) -> Self {
        TopologySpec {
            transits: capacities.iter().map(|&c| TransitSpec::clean(c)).collect(),
            backbone: None,
        }
    }

    /// Adds a shared backbone link between the transits and the target.
    pub fn with_backbone(mut self, capacity: Bandwidth) -> Self {
        self.backbone = Some(capacity);
        self
    }

    /// Puts `flows` persistent cross-traffic flows of `rate` bytes/s each
    /// on the given group's transit link.
    ///
    /// # Panics
    ///
    /// Panics if `group` has no transit link.
    pub fn with_cross_traffic(mut self, group: usize, flows: u32, rate: Bandwidth) -> Self {
        let transit = self
            .transits
            .get_mut(group)
            .expect("cross traffic on a group without a transit link");
        transit.cross_flows = flows;
        transit.cross_rate = rate;
        self
    }

    /// True when no shared link besides the access link is modelled.
    pub fn is_direct(&self) -> bool {
        self.transits.is_empty() && self.backbone.is_none()
    }

    /// Number of vantage groups (at least 1; the direct topology has one
    /// implicit group).
    pub fn group_count(&self) -> usize {
        self.transits.len().max(1)
    }

    /// The vantage group a client address belongs to: round-robin over the
    /// groups, matching how `WideAreaModel` clusters its population.
    pub fn group_of(&self, addr: u32) -> usize {
        addr as usize % self.group_count()
    }

    /// An aggregate-preserving per-replica instantiation: when a target is
    /// a load-balanced cluster of `replicas` identical servers, each
    /// replica's engine instantiates its own copy of the WAN graph, so the
    /// shared transit/backbone capacities (and cross-traffic rates) are
    /// divided by the replica count — with an even request spread the
    /// aggregate contention then matches the spec'd shared links.
    pub fn share_across(&self, replicas: usize) -> TopologySpec {
        let replicas = replicas.max(1);
        if replicas == 1 {
            return self.clone();
        }
        let factor = 1.0 / replicas as f64;
        TopologySpec {
            transits: self
                .transits
                .iter()
                .map(|t| TransitSpec {
                    capacity: t.capacity * factor,
                    cross_flows: t.cross_flows,
                    cross_rate: t.cross_rate * factor,
                })
                .collect(),
            backbone: self.backbone.map(|c| c * factor),
        }
    }

    /// Validates capacities.
    pub fn validate(&self) -> Result<(), String> {
        for (index, transit) in self.transits.iter().enumerate() {
            if !(transit.capacity > 0.0 && transit.capacity.is_finite()) {
                return Err(format!("transit {index} capacity must be positive"));
            }
            if transit.cross_flows > 0
                && !(transit.cross_rate > 0.0 && transit.cross_rate.is_finite())
            {
                return Err(format!(
                    "transit {index} cross traffic needs a positive finite rate"
                ));
            }
        }
        if let Some(backbone) = self.backbone {
            if !(backbone > 0.0 && backbone.is_finite()) {
                return Err("backbone capacity must be positive".to_string());
            }
        }
        Ok(())
    }

    /// Instantiates the spec as a [`NetworkGraph`] rooted at an access link
    /// of `access_capacity` bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`TopologySpec::validate`] or the access
    /// capacity is not positive.
    pub fn build(&self, access_capacity: Bandwidth) -> BuiltTopology {
        self.validate().expect("invalid topology spec");
        let mut graph = NetworkGraph::new();
        let access = graph.add_link(access_capacity.max(1.0));
        let backbone = self.backbone.map(|c| graph.add_link(c));
        let mut group_routes = Vec::with_capacity(self.group_count());
        let mut cross = Vec::new();
        let mut direct_path = Vec::new();
        if let Some(b) = backbone {
            direct_path.push(b);
        }
        direct_path.push(access);
        if self.transits.is_empty() {
            group_routes.push(graph.add_route(&direct_path));
        } else {
            for transit in &self.transits {
                let link = graph.add_link(transit.capacity);
                let mut path = vec![link];
                path.extend_from_slice(&direct_path);
                group_routes.push(graph.add_route(&path));
                if transit.cross_flows > 0 {
                    let cross_route = graph.add_route(&[link]);
                    cross.push((cross_route, transit.cross_flows, transit.cross_rate));
                }
            }
        }
        // Background (non-probe) traffic comes from unrelated clients all
        // over the Internet, not from behind the vantage groups' transit
        // links: it crosses the aggregation backbone (if any) and the
        // access link only.  For the direct topology this is the (only)
        // group route, which keeps the degenerate graph at exactly one
        // route — the shape the single-link fast path recognizes.
        let background_route = if self.transits.is_empty() {
            group_routes[0]
        } else {
            graph.add_route(&direct_path)
        };
        BuiltTopology {
            graph,
            access,
            group_routes,
            background_route,
            cross,
        }
    }
}

/// A [`TopologySpec`] instantiated as a graph.
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// The graph itself.
    pub graph: NetworkGraph,
    /// The target's access link (the root every probe response crosses).
    pub access: LinkId,
    /// Route for each vantage group, indexed by group.
    pub group_routes: Vec<RouteId>,
    /// Route for background (non-probe) traffic: backbone + access only,
    /// bypassing every vantage group's transit link.
    pub background_route: RouteId,
    /// Cross-traffic injections: `(route, flow count, per-flow rate)`.
    pub cross: Vec<(RouteId, u32, Bandwidth)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_simnet::mbps;

    #[test]
    fn direct_spec_builds_a_single_link_graph() {
        let built = TopologySpec::direct().build(mbps(10.0));
        assert_eq!(built.graph.link_count(), 1);
        assert_eq!(built.group_routes.len(), 1);
        assert!(built.cross.is_empty());
        assert!(TopologySpec::direct().is_direct());
        assert_eq!(TopologySpec::direct().group_count(), 1);
    }

    #[test]
    fn star_spec_builds_one_transit_per_group() {
        let spec = TopologySpec::star(&[mbps(4.0), mbps(40.0), mbps(40.0)]);
        assert_eq!(spec.group_count(), 3);
        assert_eq!(spec.group_of(0), 0);
        assert_eq!(spec.group_of(4), 1);
        let built = spec.build(mbps(100.0));
        assert_eq!(built.graph.link_count(), 4);
        assert_eq!(built.group_routes.len(), 3);
    }

    #[test]
    fn backbone_and_cross_traffic_are_wired() {
        let spec = TopologySpec::star(&[mbps(8.0), mbps(8.0)])
            .with_backbone(mbps(20.0))
            .with_cross_traffic(1, 3, 50_000.0);
        let built = spec.build(mbps(100.0));
        // access + backbone + 2 transits.
        assert_eq!(built.graph.link_count(), 4);
        assert_eq!(built.cross.len(), 1);
        assert_eq!(built.cross[0].1, 3);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut spec = TopologySpec::star(&[mbps(8.0)]);
        spec.transits[0].capacity = 0.0;
        assert!(spec.validate().is_err());
        let spec = TopologySpec::direct().with_backbone(-1.0);
        assert!(spec.validate().is_err());
        let mut spec = TopologySpec::star(&[mbps(8.0)]);
        spec.transits[0].cross_flows = 2;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn background_route_bypasses_the_transits() {
        let built = TopologySpec::star(&[mbps(4.0), mbps(40.0)]).build(mbps(100.0));
        assert_ne!(built.background_route, built.group_routes[0]);
        assert_ne!(built.background_route, built.group_routes[1]);
        // Direct topology: same single route, so the graph stays degenerate.
        let direct = TopologySpec::direct().build(mbps(100.0));
        assert_eq!(direct.background_route, direct.group_routes[0]);
        assert_eq!(direct.graph.route_count(), 1);
    }

    #[test]
    fn share_across_preserves_aggregate_capacity() {
        let spec = TopologySpec::star(&[mbps(8.0), mbps(80.0)])
            .with_backbone(mbps(40.0))
            .with_cross_traffic(0, 3, 60_000.0);
        let per_replica = spec.share_across(4);
        assert!((per_replica.transits[0].capacity - mbps(2.0)).abs() < 1e-9);
        assert!((per_replica.transits[1].capacity - mbps(20.0)).abs() < 1e-9);
        assert!((per_replica.backbone.unwrap() - mbps(10.0)).abs() < 1e-9);
        // Cross flows keep their count; the per-flow rate divides.
        assert_eq!(per_replica.transits[0].cross_flows, 3);
        assert!((per_replica.transits[0].cross_rate - 15_000.0).abs() < 1e-9);
        assert_eq!(spec.share_across(1), spec);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = TopologySpec::star(&[mbps(4.0), mbps(40.0)]).with_backbone(mbps(30.0));
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: TopologySpec = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(spec, back);
    }
}
