//! Incremental max–min fair allocation over a multi-hop link graph.
//!
//! [`NetworkGraph`] generalizes `mfc_simnet::FluidLink` from one shared
//! link to a *graph* of shared links: every flow traverses an ordered set
//! of links (its **route**) and additionally carries a private rate cap
//! (its client access link / TCP window).  The allocation is the classic
//! network max–min fairness computed by progressive filling: all flow
//! rates rise together; a flow freezes when it hits its own cap or when
//! any link on its route saturates; a saturated link freezes every flow
//! through it at the link's *water level*.
//!
//! The per-event cost stays near O(L² · log C) for L links and C flows —
//! independent of the crowd size except through logarithms — by reusing
//! PR 2's two ideas at the route granularity:
//!
//! - **Water levels from cap multisets.**  Flows sharing a route are
//!   interchangeable up to their caps, so each route keeps its active
//!   flows' caps in a [`CapMultiset`].  A link's saturation level solves
//!   `Σ_routes demand_r(w) + frozen = C` where `demand_r(w)` is an
//!   O(log C) prefix query; the threshold cap is found by a monotone
//!   partition walk, never by touching flows individually.
//! - **Per-route virtual time.**  All unfrozen flows of one route run at
//!   the same rate (the water level of the route's bottleneck link), so
//!   one fair-share integral `V_r(t)` advances for the whole route and
//!   each flow finishes when `V_r` crosses its admission tag.  When the
//!   bottleneck *moves* to a different link the integral simply continues
//!   at the new rate — no per-flow state is rewritten.  Only flows that
//!   flip between the sharing and capped regimes (an O(log C) range query
//!   per reallocation) are touched individually.
//!
//! [`super::NaiveNetwork`] retains the textbook progressive-filling
//! algorithm as the executable specification; randomized property tests in
//! `tests/properties.rs` assert the two produce the same rates, completion
//! times and completion order under arbitrary add/remove/cap-change/
//! capacity-change/advance interleavings.
//!
//! Every container is ordered (`BTreeMap`/`BTreeSet`/`CapMultiset`), so all
//! float accumulation happens in a reproducible order and repro artifacts
//! stay byte-identical across runs and thread counts.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use mfc_simcore::{SimDuration, SimTime};
use mfc_simnet::{Bandwidth, CapMultiset, FlowId};

/// Identifies one shared link in a [`NetworkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Identifies one route (an ordered set of links flows traverse together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub u32);

/// Which sharing regime a flow is currently in (see `FluidLink`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Regime {
    /// Rate = the route's water level; finishes when the route's
    /// fair-share integral reaches `v_finish`.
    Sharing { v_finish: f64 },
    /// Rate = own cap; `r_ref` bytes remained at `t_ref_secs`, fixing the
    /// absolute finish time while the flow stays capped.
    Capped {
        r_ref: f64,
        t_ref_secs: f64,
        finish_secs: f64,
    },
    /// No bytes left; waits for [`NetworkGraph::finish_flow`].
    Drained,
}

#[derive(Debug, Clone)]
struct Flow {
    route: RouteId,
    rate_cap: Bandwidth,
    regime: Regime,
}

#[derive(Debug, Clone)]
struct Link {
    capacity: Bandwidth,
    /// Routes traversing this link, in route-id order.
    routes: Vec<RouteId>,
    /// Current aggregate throughput across the link.
    agg_rate: f64,
    bytes_transferred: f64,
}

#[derive(Debug, Clone, Default)]
struct Route {
    links: Vec<LinkId>,
    /// Finite caps of this route's active (non-drained) flows.
    caps: CapMultiset,
    /// Active flows with an infinite cap.
    inf_count: u64,
    /// Fair-share integral for the route's sharing flows.
    vtime: f64,
    /// Water level of the route's bottleneck link; `f64::INFINITY` when no
    /// link on the route is saturated (every flow runs at its own cap).
    level: f64,
    /// The saturated link that sets `level`, for diagnostics.
    bottleneck: Option<LinkId>,
    /// Aggregate throughput of the route's active flows.
    agg_rate: f64,
    /// Sharing flows by virtual finish tag.
    sharing: BTreeSet<(u64, FlowId)>,
    /// Finite-cap sharing flows by cap, for freeze range queries.
    sharing_by_cap: BTreeSet<(u64, FlowId)>,
    /// Capped flows by absolute finish time.
    capped: BTreeSet<(u64, FlowId)>,
    /// Capped flows by cap, for unfreeze range queries.
    capped_by_cap: BTreeSet<(u64, FlowId)>,
}

impl Route {
    fn active(&self) -> u64 {
        self.caps.len() + self.inf_count
    }

    /// `Σ min(capᵢ, level)` over the route's active flows — the bandwidth
    /// the route demands when its flows are filled to `level`.
    fn demand_at(&self, level: f64) -> f64 {
        debug_assert!(level >= 0.0 && level.is_finite());
        let (count, sum) = self.caps.prefix(level.to_bits());
        sum + level * (self.active() - count) as f64
    }
}

/// A multi-hop network of shared links with global max–min fair sharing.
///
/// # Examples
///
/// ```
/// use mfc_simcore::SimTime;
/// use mfc_simnet::{mbps, FlowId};
/// use mfc_topology::NetworkGraph;
///
/// // One thin transit link in front of a fat target access link.
/// let mut net = NetworkGraph::new();
/// let transit = net.add_link(mbps(8.0));
/// let access = net.add_link(mbps(80.0));
/// let behind = net.add_route(&[transit, access]);
/// let direct = net.add_route(&[access]);
///
/// let t0 = SimTime::ZERO;
/// net.start_flow(FlowId(1), behind, 1_000_000.0, f64::INFINITY, t0);
/// net.start_flow(FlowId(2), direct, 1_000_000.0, f64::INFINITY, t0);
/// // Flow 1 is pinned to the 1 MB/s transit link; flow 2 takes the rest
/// // of the access link.
/// assert_eq!(net.current_rate(FlowId(1)), Some(1_000_000.0));
/// assert_eq!(net.current_rate(FlowId(2)), Some(9_000_000.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkGraph {
    links: Vec<Link>,
    routes: Vec<Route>,
    flows: BTreeMap<FlowId, Flow>,
    /// Flows with zero bytes remaining, completing "now".
    drained: BTreeSet<FlowId>,
    last_event: SimTime,
}

impl NetworkGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        NetworkGraph::default()
    }

    /// Adds a shared link of the given capacity (bytes/s).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite.
    pub fn add_link(&mut self, capacity: Bandwidth) -> LinkId {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "link capacity must be positive and finite, got {capacity}"
        );
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(Link {
            capacity,
            routes: Vec::new(),
            agg_rate: 0.0,
            bytes_transferred: 0.0,
        });
        id
    }

    /// Adds a route over the given links.  An empty route is allowed (the
    /// flow is limited only by its own cap) but such flows must carry a
    /// finite cap.
    ///
    /// # Panics
    ///
    /// Panics if any link id is unknown or appears twice.
    pub fn add_route(&mut self, links: &[LinkId]) -> RouteId {
        let id = RouteId(u32::try_from(self.routes.len()).expect("too many routes"));
        let mut seen = BTreeSet::new();
        for &link in links {
            assert!(
                (link.0 as usize) < self.links.len(),
                "route references unknown link {link:?}"
            );
            assert!(seen.insert(link), "route traverses {link:?} twice");
            self.links[link.0 as usize].routes.push(id);
        }
        self.routes.push(Route {
            links: links.to_vec(),
            level: f64::INFINITY,
            ..Route::default()
        });
        id
    }

    /// Number of links in the graph.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of routes in the graph.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The configured capacity of a link in bytes/s.
    pub fn link_capacity(&self, link: LinkId) -> Bandwidth {
        self.links[link.0 as usize].capacity
    }

    /// Current aggregate throughput across a link in bytes/s.
    pub fn link_utilization_bytes_per_sec(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].agg_rate
    }

    /// Total bytes drained through a link since construction.
    pub fn link_bytes_transferred(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].bytes_transferred
    }

    /// The saturated link currently limiting a route's sharing flows, or
    /// `None` when no link on the route is saturated.
    pub fn route_bottleneck(&self, route: RouteId) -> Option<LinkId> {
        self.routes[route.0 as usize].bottleneck
    }

    /// The water level of a route's bottleneck (the rate of each of its
    /// unfrozen flows); `f64::INFINITY` when the route is unsaturated.
    pub fn route_level(&self, route: RouteId) -> f64 {
        self.routes[route.0 as usize].level
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Changes a link's capacity mid-run; in-flight flows keep their
    /// remaining bytes and the global allocation is recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity: Bandwidth, now: SimTime) {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "link capacity must be positive and finite, got {capacity}"
        );
        self.advance(now);
        self.sweep_completed();
        self.links[link.0 as usize].capacity = capacity;
        self.reallocate();
    }

    /// Starts a transfer of `bytes` bytes over `route` at `now`, privately
    /// capped at `rate_cap` bytes/s.  `bytes` may be `f64::INFINITY` for a
    /// persistent (cross-traffic) flow that never completes.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is active, `bytes` is negative, or the route
    /// is empty and the cap is not finite.
    pub fn start_flow(
        &mut self,
        id: FlowId,
        route: RouteId,
        bytes: f64,
        rate_cap: Bandwidth,
        now: SimTime,
    ) {
        assert!(bytes >= 0.0, "flow size must be non-negative");
        self.advance(now);
        self.sweep_completed();
        assert!(
            !self.flows.contains_key(&id),
            "flow {id:?} is already active"
        );
        let rate_cap = rate_cap.max(0.0);
        let r = &mut self.routes[route.0 as usize];
        assert!(
            !r.links.is_empty() || rate_cap.is_finite(),
            "a flow on an empty route must carry a finite cap"
        );
        if bytes <= 0.0 {
            self.flows.insert(
                id,
                Flow {
                    route,
                    rate_cap,
                    regime: Regime::Drained,
                },
            );
            self.drained.insert(id);
        } else {
            let v_finish = r.vtime + bytes;
            r.sharing.insert((v_finish.to_bits(), id));
            if rate_cap.is_finite() {
                r.caps.insert(rate_cap);
                r.sharing_by_cap.insert((rate_cap.to_bits(), id));
            } else {
                r.inf_count += 1;
            }
            self.flows.insert(
                id,
                Flow {
                    route,
                    rate_cap,
                    regime: Regime::Sharing { v_finish },
                },
            );
        }
        self.reallocate();
    }

    /// Removes a flow, returning the bytes it had not yet transferred.
    pub fn finish_flow(&mut self, id: FlowId, now: SimTime) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        let now_secs = self.last_event.as_secs_f64();
        let route = &mut self.routes[flow.route.0 as usize];
        let remaining = match flow.regime {
            Regime::Drained => {
                self.drained.remove(&id);
                0.0
            }
            Regime::Sharing { v_finish } => {
                route.sharing.remove(&(v_finish.to_bits(), id));
                if flow.rate_cap.is_finite() {
                    route.caps.remove(flow.rate_cap);
                    route.sharing_by_cap.remove(&(flow.rate_cap.to_bits(), id));
                } else {
                    route.inf_count -= 1;
                }
                let r = v_finish - route.vtime;
                if r < 0.0 {
                    // The caller advanced (at most a clock tick) past the
                    // exact finish; refund the over-charged bytes.
                    for &link in &route.links {
                        self.links[link.0 as usize].bytes_transferred += r;
                    }
                }
                r.max(0.0)
            }
            Regime::Capped {
                r_ref,
                t_ref_secs,
                finish_secs,
            } => {
                route.capped.remove(&(finish_secs.to_bits(), id));
                route.capped_by_cap.remove(&(flow.rate_cap.to_bits(), id));
                route.caps.remove(flow.rate_cap);
                let r = r_ref - flow.rate_cap * (now_secs - t_ref_secs);
                if r < 0.0 && r.is_finite() {
                    for &link in &route.links {
                        self.links[link.0 as usize].bytes_transferred += r;
                    }
                }
                r.max(0.0)
            }
        };
        self.sweep_completed();
        self.reallocate();
        Some(remaining)
    }

    /// Changes the private rate cap of an active flow.
    pub fn set_rate_cap(&mut self, id: FlowId, rate_cap: Bandwidth, now: SimTime) {
        self.advance(now);
        if !self.flows.contains_key(&id) {
            return;
        }
        self.sweep_completed();
        let flow = self.flows.get(&id).expect("presence checked above").clone();
        let rate_cap = rate_cap.max(0.0);
        let route = &mut self.routes[flow.route.0 as usize];
        assert!(
            !route.links.is_empty() || rate_cap.is_finite(),
            "a flow on an empty route must carry a finite cap"
        );
        if flow.rate_cap.to_bits() == rate_cap.to_bits() {
            self.reallocate();
            return;
        }
        let now_secs = self.last_event.as_secs_f64();
        match flow.regime {
            Regime::Drained => {}
            Regime::Sharing { .. } => {
                if flow.rate_cap.is_finite() {
                    route.caps.remove(flow.rate_cap);
                    route.sharing_by_cap.remove(&(flow.rate_cap.to_bits(), id));
                } else {
                    route.inf_count -= 1;
                }
                if rate_cap.is_finite() {
                    route.caps.insert(rate_cap);
                    route.sharing_by_cap.insert((rate_cap.to_bits(), id));
                } else {
                    route.inf_count += 1;
                }
            }
            Regime::Capped {
                r_ref,
                t_ref_secs,
                finish_secs,
            } => {
                // Materialize the remaining bytes and re-enter as sharing;
                // the reallocation below re-freezes the flow if its new cap
                // is still under the route's water level.
                route.caps.remove(flow.rate_cap);
                route.capped.remove(&(finish_secs.to_bits(), id));
                route.capped_by_cap.remove(&(flow.rate_cap.to_bits(), id));
                let r = r_ref - flow.rate_cap * (now_secs - t_ref_secs);
                let v_finish = route.vtime + r.max(0.0);
                route.sharing.insert((v_finish.to_bits(), id));
                if rate_cap.is_finite() {
                    route.caps.insert(rate_cap);
                    route.sharing_by_cap.insert((rate_cap.to_bits(), id));
                } else {
                    route.inf_count += 1;
                }
                self.flows.get_mut(&id).expect("flow exists").regime = Regime::Sharing { v_finish };
            }
        }
        self.flows.get_mut(&id).expect("flow exists").rate_cap = rate_cap;
        self.reallocate();
    }

    /// Advances the fluid model to `now`: per-link bytes drain in aggregate
    /// and each route's fair-share integral moves forward.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_event {
            return;
        }
        let elapsed = (now - self.last_event).as_secs_f64();
        for link in &mut self.links {
            link.bytes_transferred += link.agg_rate * elapsed;
        }
        for route in &mut self.routes {
            if !route.sharing.is_empty() && route.level.is_finite() {
                route.vtime += route.level * elapsed;
            }
        }
        self.last_event = now;
    }

    /// The earliest completion if nothing else changes, or `None` when no
    /// active flow has both bytes remaining and a positive rate.  Pure and
    /// stable between mutations, like `FluidLink::peek_completion`.
    pub fn peek_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        let mut consider = |candidate: (SimTime, FlowId)| {
            best = Some(match best {
                Some(b) if b <= candidate => b,
                _ => candidate,
            });
        };
        if let Some(&id) = self.drained.iter().next() {
            consider((self.last_event, id));
        }
        for route in &self.routes {
            if let Some(&(v_bits, id)) = route.sharing.iter().next() {
                let v_finish = f64::from_bits(v_bits);
                if v_finish <= route.vtime {
                    consider((self.last_event, id));
                } else {
                    let secs = (v_finish - route.vtime) / route.level;
                    if secs.is_finite() {
                        consider((self.last_event + ceil_micros(secs), id));
                    }
                }
            }
            if let Some(&(f_bits, id)) = route.capped.iter().next() {
                let finish_secs = f64::from_bits(f_bits);
                if finish_secs.is_finite() {
                    let t = SimTime::from_micros((finish_secs * 1_000_000.0).ceil() as u64)
                        .max(self.last_event);
                    consider((t, id));
                }
            }
        }
        best
    }

    /// [`Self::peek_completion`] after advancing the model to `now`.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, FlowId)> {
        self.advance(now);
        self.peek_completion()
    }

    /// Remaining bytes for a flow, if it is active.
    pub fn remaining_bytes(&self, id: FlowId) -> Option<f64> {
        let flow = self.flows.get(&id)?;
        let route = &self.routes[flow.route.0 as usize];
        Some(match flow.regime {
            Regime::Drained => 0.0,
            Regime::Sharing { v_finish } => (v_finish - route.vtime).max(0.0),
            Regime::Capped {
                r_ref, t_ref_secs, ..
            } => (r_ref - flow.rate_cap * (self.last_event.as_secs_f64() - t_ref_secs)).max(0.0),
        })
    }

    /// The rate currently allocated to a flow in bytes/s, if it is active.
    pub fn current_rate(&self, id: FlowId) -> Option<Bandwidth> {
        let flow = self.flows.get(&id)?;
        Some(match flow.regime {
            Regime::Drained => 0.0,
            Regime::Sharing { .. } => self.routes[flow.route.0 as usize].level,
            Regime::Capped { .. } => flow.rate_cap,
        })
    }

    /// Moves flows that already finished into the drained state, releasing
    /// their share (the lazy analogue of progressive filling's
    /// `remaining > 0` filter).
    fn sweep_completed(&mut self) {
        let now_secs = self.last_event.as_secs_f64();
        for route_index in 0..self.routes.len() {
            loop {
                let route = &self.routes[route_index];
                let Some(&(v_bits, id)) = route.sharing.iter().next() else {
                    break;
                };
                let v_finish = f64::from_bits(v_bits);
                if v_finish > route.vtime {
                    break;
                }
                let route = &mut self.routes[route_index];
                route.sharing.remove(&(v_bits, id));
                let flow = self.flows.get(&id).expect("indexed flow exists").clone();
                if flow.rate_cap.is_finite() {
                    route.caps.remove(flow.rate_cap);
                    route.sharing_by_cap.remove(&(flow.rate_cap.to_bits(), id));
                } else {
                    route.inf_count -= 1;
                }
                let over = v_finish - route.vtime;
                if over < 0.0 {
                    for link_index in 0..self.routes[route_index].links.len() {
                        let link = self.routes[route_index].links[link_index];
                        self.links[link.0 as usize].bytes_transferred += over;
                    }
                }
                self.flows.get_mut(&id).expect("flow exists").regime = Regime::Drained;
                self.drained.insert(id);
            }
            loop {
                let route = &self.routes[route_index];
                let Some(&(f_bits, id)) = route.capped.iter().next() else {
                    break;
                };
                let finish_secs = f64::from_bits(f_bits);
                if finish_secs > now_secs {
                    break;
                }
                let route = &mut self.routes[route_index];
                route.capped.remove(&(f_bits, id));
                let flow = self.flows.get(&id).expect("indexed flow exists").clone();
                route.caps.remove(flow.rate_cap);
                route.capped_by_cap.remove(&(flow.rate_cap.to_bits(), id));
                if let Regime::Capped {
                    r_ref, t_ref_secs, ..
                } = flow.regime
                {
                    let over = r_ref - flow.rate_cap * (now_secs - t_ref_secs);
                    if over < 0.0 {
                        for link_index in 0..self.routes[route_index].links.len() {
                            let link = self.routes[route_index].links[link_index];
                            self.links[link.0 as usize].bytes_transferred += over;
                        }
                    }
                }
                self.flows.get_mut(&id).expect("flow exists").regime = Regime::Drained;
                self.drained.insert(id);
            }
        }
    }

    /// Recomputes the global max–min allocation after a structural change
    /// and flips flows whose regime changed.
    ///
    /// Water-filling over links in saturation order: each round finds the
    /// unsaturated link with the lowest saturation level (an O(log C)
    /// partition walk per route on the link), saturates it, and freezes the
    /// routes through it; frozen routes contribute a fixed demand to their
    /// other links.  At most `L` rounds, so the whole pass costs
    /// O(L² · R_ℓ · log² C) plus O(log C) per flow that actually flips.
    fn reallocate(&mut self) {
        // Degenerate graph (one link, one route): the allocation is exactly
        // FluidLink's single water-level query — skip the round machinery
        // and its scratch allocations.  This is the shape every
        // pre-topology scenario (a direct `TopologySpec`) runs on each
        // flow event, so it must stay O(log C).
        if self.links.len() == 1 && self.routes.len() == 1 {
            let route = &self.routes[0];
            let (level, bottleneck) = if route.active() == 0 {
                (f64::INFINITY, None)
            } else {
                let wl = route
                    .caps
                    .water_level(self.links[0].capacity, route.active());
                if wl.level.is_finite() {
                    (wl.level, Some(LinkId(0)))
                } else {
                    // Spare capacity: every flow saturates its own cap.
                    (f64::INFINITY, None)
                }
            };
            self.apply_levels(&[level], &[bottleneck]);
            return;
        }
        let link_count = self.links.len();
        let route_count = self.routes.len();
        // Fixed demand contributed to each link by routes frozen at lower
        // levels.
        let mut fixed = vec![0.0f64; link_count];
        let mut saturated = vec![false; link_count];
        let mut frozen = vec![false; route_count];
        let mut new_level = vec![f64::INFINITY; route_count];
        let mut new_bottleneck: Vec<Option<LinkId>> = vec![None; route_count];
        // Routes with no active flows are permanently frozen at ∞ so they
        // never contribute demand.
        for (index, route) in self.routes.iter().enumerate() {
            if route.active() == 0 {
                frozen[index] = true;
            }
        }

        loop {
            let mut best: Option<(f64, usize)> = None;
            for (link_index, link) in self.links.iter().enumerate() {
                if saturated[link_index] {
                    continue;
                }
                let live: Vec<&Route> = link
                    .routes
                    .iter()
                    .filter(|r| !frozen[r.0 as usize])
                    .map(|r| &self.routes[r.0 as usize])
                    .collect();
                if live.is_empty() {
                    continue;
                }
                // A link whose total demand never reaches its capacity
                // cannot saturate.
                let inf_any = live.iter().any(|r| r.inf_count > 0);
                if !inf_any {
                    let total: f64 = live.iter().map(|r| r.caps.sum()).sum();
                    if fixed[link_index] + total <= link.capacity {
                        continue;
                    }
                }
                // Largest cap that stays saturated at the link's level: the
                // predicate "Σ demand(c) ≤ C" is monotone in c, so walk each
                // route's cap treap and keep the global maximum.
                let capacity = link.capacity;
                let fixed_in = fixed[link_index];
                let pred = |c: f64| {
                    let demand: f64 = live.iter().map(|r| r.demand_at(c)).sum();
                    fixed_in + demand <= capacity
                };
                let mut threshold: Option<u64> = None;
                for route in &live {
                    if let Some(bits) = route.caps.partition_max(pred) {
                        threshold = Some(match threshold {
                            Some(t) => t.max(bits),
                            None => bits,
                        });
                    }
                }
                let (sat_count, sat_sum) = match threshold {
                    Some(bits) => live.iter().fold((0u64, 0.0f64), |(c, s), r| {
                        let (rc, rs) = r.caps.prefix(bits);
                        (c + rc, s + rs)
                    }),
                    None => (0, 0.0),
                };
                let total_active: u64 = live.iter().map(|r| r.active()).sum();
                let unsat = total_active - sat_count;
                if unsat == 0 {
                    // Every flow through the link is frozen at its cap below
                    // the capacity; the link has headroom and never binds.
                    continue;
                }
                let level = ((capacity - fixed_in - sat_sum) / unsat as f64).max(0.0);
                match best {
                    Some((b, _)) if b <= level => {}
                    _ => best = Some((level, link_index)),
                }
            }
            let Some((level, link_index)) = best else {
                break;
            };
            saturated[link_index] = true;
            for position in 0..self.links[link_index].routes.len() {
                let index = self.links[link_index].routes[position].0 as usize;
                if frozen[index] {
                    continue;
                }
                frozen[index] = true;
                new_level[index] = level;
                new_bottleneck[index] = Some(LinkId(link_index as u32));
                let demand = self.routes[index].demand_at(level);
                for &other in &self.routes[index].links {
                    if other.0 as usize != link_index {
                        fixed[other.0 as usize] += demand;
                    }
                }
            }
        }

        self.apply_levels(&new_level, &new_bottleneck);
    }

    /// Applies freshly computed per-route water levels: flips flows
    /// crossing their route's level and refreshes the aggregate rates.
    fn apply_levels(&mut self, new_level: &[f64], new_bottleneck: &[Option<LinkId>]) {
        let now_secs = self.last_event.as_secs_f64();
        for (index, route) in self.routes.iter_mut().enumerate() {
            route.level = new_level[index];
            route.bottleneck = new_bottleneck[index];
            let level = new_level[index];
            let level_bits = level.to_bits();

            // Capped flows whose cap rose above the (lowered) level go back
            // to sharing.
            let to_share: Vec<(u64, FlowId)> = route
                .capped_by_cap
                .range((
                    Bound::Excluded((level_bits, FlowId(u64::MAX))),
                    Bound::Unbounded,
                ))
                .copied()
                .collect();
            for (cap_bits, id) in to_share {
                route.capped_by_cap.remove(&(cap_bits, id));
                let flow = self.flows.get_mut(&id).expect("indexed flow exists");
                let Regime::Capped {
                    r_ref,
                    t_ref_secs,
                    finish_secs,
                } = flow.regime
                else {
                    unreachable!("capped index points at a non-capped flow");
                };
                let remaining = r_ref - flow.rate_cap * (now_secs - t_ref_secs);
                let v_finish = route.vtime + remaining;
                flow.regime = Regime::Sharing { v_finish };
                route.capped.remove(&(finish_secs.to_bits(), id));
                route.sharing.insert((v_finish.to_bits(), id));
                route.sharing_by_cap.insert((cap_bits, id));
            }

            // Sharing flows whose cap sank to or below the level freeze at
            // their cap (an infinite level freezes every finite-cap flow).
            let to_freeze: Vec<(u64, FlowId)> = route
                .sharing_by_cap
                .range((
                    Bound::Unbounded,
                    Bound::Included((level_bits, FlowId(u64::MAX))),
                ))
                .copied()
                .collect();
            for (cap_bits, id) in to_freeze {
                route.sharing_by_cap.remove(&(cap_bits, id));
                let flow = self.flows.get_mut(&id).expect("indexed flow exists");
                let Regime::Sharing { v_finish } = flow.regime else {
                    unreachable!("sharing index points at a non-sharing flow");
                };
                let r_ref = v_finish - route.vtime;
                let finish_secs = now_secs + r_ref / flow.rate_cap;
                flow.regime = Regime::Capped {
                    r_ref,
                    t_ref_secs: now_secs,
                    finish_secs,
                };
                route.sharing.remove(&(v_finish.to_bits(), id));
                route.capped.insert((finish_secs.to_bits(), id));
                route.capped_by_cap.insert((cap_bits, id));
            }

            debug_assert!(
                route.level.is_finite() || route.inf_count == 0,
                "an uncapped flow on an unsaturated route has unbounded rate"
            );
            route.agg_rate = if route.active() == 0 {
                0.0
            } else if route.level.is_finite() {
                route.demand_at(route.level)
            } else {
                route.caps.sum()
            };
        }
        for link in &mut self.links {
            link.agg_rate = link
                .routes
                .iter()
                .map(|r| self.routes[r.0 as usize].agg_rate)
                .sum();
        }
    }
}

/// Rounds a span of seconds *up* to the clock's microsecond resolution so
/// that advancing to the reported completion time always drains the flow
/// completely.
fn ceil_micros(secs: f64) -> SimDuration {
    SimDuration::from_micros((secs * 1_000_000.0).ceil().max(0.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_simnet::mbps;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    /// A star: per-group transit links feeding one target access link.
    fn star(transits: &[f64], access: f64) -> (NetworkGraph, Vec<RouteId>, LinkId) {
        let mut net = NetworkGraph::new();
        let access_id = net.add_link(access);
        let routes = transits
            .iter()
            .map(|&c| {
                let transit = net.add_link(c);
                net.add_route(&[transit, access_id])
            })
            .collect();
        (net, routes, access_id)
    }

    #[test]
    fn single_link_behaves_like_a_fluid_link() {
        let mut net = NetworkGraph::new();
        let link = net.add_link(1_000_000.0);
        let route = net.add_route(&[link]);
        net.start_flow(FlowId(1), route, 500_000.0, f64::INFINITY, t(0.0));
        net.start_flow(FlowId(2), route, 500_000.0, f64::INFINITY, t(0.0));
        assert_eq!(net.current_rate(FlowId(1)), Some(500_000.0));
        let (done, id) = net.peek_completion().unwrap();
        assert_eq!(id, FlowId(1));
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((net.link_utilization_bytes_per_sec(link) - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn thin_transit_pins_one_group_without_touching_the_other() {
        let (mut net, routes, access) = star(&[mbps(8.0), mbps(80.0)], mbps(80.0));
        for i in 0..4u64 {
            net.start_flow(FlowId(i), routes[0], 1e6, f64::INFINITY, t(0.0));
            net.start_flow(FlowId(100 + i), routes[1], 1e6, f64::INFINITY, t(0.0));
        }
        // Group 0's four flows split the 1 MB/s transit; group 1's flows
        // split what remains of the 10 MB/s access link.
        assert!((net.current_rate(FlowId(0)).unwrap() - 250_000.0).abs() < 1e-6);
        assert!((net.current_rate(FlowId(100)).unwrap() - 2_250_000.0).abs() < 1e-6);
        assert_eq!(net.route_bottleneck(routes[0]), Some(LinkId(1)));
        assert_eq!(net.route_bottleneck(routes[1]), Some(access));
        // The access link carries everything; it is not saturated.
        assert!((net.link_utilization_bytes_per_sec(access) - 10e6).abs() < 1e-6);
    }

    #[test]
    fn saturated_access_link_constrains_every_group() {
        let (mut net, routes, access) = star(&[mbps(80.0), mbps(80.0)], mbps(8.0));
        for i in 0..5u64 {
            net.start_flow(FlowId(i), routes[0], 1e6, f64::INFINITY, t(0.0));
            net.start_flow(FlowId(100 + i), routes[1], 1e6, f64::INFINITY, t(0.0));
        }
        // All ten flows share the 1 MB/s access link equally.
        for i in 0..5u64 {
            assert!((net.current_rate(FlowId(i)).unwrap() - 100_000.0).abs() < 1e-6);
            assert!((net.current_rate(FlowId(100 + i)).unwrap() - 100_000.0).abs() < 1e-6);
        }
        assert_eq!(net.route_bottleneck(routes[0]), Some(access));
        assert_eq!(net.route_bottleneck(routes[1]), Some(access));
    }

    #[test]
    fn private_caps_freeze_flows_below_the_water_level() {
        let (mut net, routes, _) = star(&[mbps(8.0)], mbps(80.0));
        net.start_flow(FlowId(1), routes[0], 1e6, 100_000.0, t(0.0));
        net.start_flow(FlowId(2), routes[0], 1e6, f64::INFINITY, t(0.0));
        assert_eq!(net.current_rate(FlowId(1)), Some(100_000.0));
        assert!((net.current_rate(FlowId(2)).unwrap() - 900_000.0).abs() < 1e-6);
    }

    #[test]
    fn departure_rebalances_across_links() {
        let (mut net, routes, _) = star(&[mbps(8.0), mbps(8.0)], mbps(12.0));
        net.start_flow(FlowId(1), routes[0], 1e6, f64::INFINITY, t(0.0));
        net.start_flow(FlowId(2), routes[1], 3e6, f64::INFINITY, t(0.0));
        // Access (1.5 MB/s) binds first: 750 kB/s each.
        assert!((net.current_rate(FlowId(1)).unwrap() - 750_000.0).abs() < 1e-6);
        let (done, id) = net.next_completion(t(0.0)).unwrap();
        assert_eq!(id, FlowId(1));
        net.finish_flow(id, done);
        // Flow 2 now gets its full transit-link share (1 MB/s < 1.5 MB/s).
        assert!((net.current_rate(FlowId(2)).unwrap() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn persistent_cross_traffic_squeezes_the_crowd() {
        let (mut net, routes, _) = star(&[mbps(8.0)], mbps(80.0));
        let cross = net.add_route(&[LinkId(1)]);
        // Two persistent 200 kB/s cross flows on the 1 MB/s transit link.
        net.start_flow(FlowId(900), cross, f64::INFINITY, 200_000.0, t(0.0));
        net.start_flow(FlowId(901), cross, f64::INFINITY, 200_000.0, t(0.0));
        net.start_flow(FlowId(1), routes[0], 600_000.0, f64::INFINITY, t(0.0));
        // The probe gets 1 MB/s − 2×200 kB/s = 600 kB/s.
        assert!((net.current_rate(FlowId(1)).unwrap() - 600_000.0).abs() < 1e-6);
        let (done, id) = net.peek_completion().unwrap();
        assert_eq!(id, FlowId(1), "cross traffic never completes");
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
        net.finish_flow(id, done);
        // The cross flows keep running and never show up as completions.
        assert!(net.peek_completion().is_none());
        assert_eq!(net.active_flows(), 2);
    }

    #[test]
    fn capacity_change_moves_the_bottleneck() {
        let (mut net, routes, access) = star(&[mbps(8.0)], mbps(80.0));
        net.start_flow(FlowId(1), routes[0], 10e6, f64::INFINITY, t(0.0));
        assert_eq!(net.route_bottleneck(routes[0]), Some(LinkId(1)));
        // Shrinking the access link below the transit moves the bottleneck.
        net.set_link_capacity(access, mbps(4.0), t(1.0));
        assert_eq!(net.route_bottleneck(routes[0]), Some(access));
        assert!((net.current_rate(FlowId(1)).unwrap() - 500_000.0).abs() < 1e-6);
        // One second at 1 MB/s drained 1 MB.
        assert!((net.remaining_bytes(FlowId(1)).unwrap() - 9e6).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, routes, _) = star(&[mbps(8.0)], mbps(80.0));
        net.start_flow(FlowId(7), routes[0], 0.0, f64::INFINITY, t(1.0));
        let (done, id) = net.next_completion(t(1.0)).unwrap();
        assert_eq!(id, FlowId(7));
        assert_eq!(done, t(1.0));
    }

    #[test]
    fn empty_route_flow_runs_at_its_cap() {
        let mut net = NetworkGraph::new();
        let lonely = net.add_route(&[]);
        net.start_flow(FlowId(1), lonely, 100_000.0, 50_000.0, t(0.0));
        assert_eq!(net.current_rate(FlowId(1)), Some(50_000.0));
        let (done, _) = net.peek_completion().unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite cap")]
    fn uncapped_empty_route_flow_is_rejected() {
        let mut net = NetworkGraph::new();
        let lonely = net.add_route(&[]);
        net.start_flow(FlowId(1), lonely, 100.0, f64::INFINITY, t(0.0));
    }

    #[test]
    fn backbone_chains_three_hops() {
        let mut net = NetworkGraph::new();
        let access = net.add_link(mbps(80.0));
        let backbone = net.add_link(mbps(16.0));
        let transit_a = net.add_link(mbps(6.4));
        let transit_b = net.add_link(mbps(80.0));
        let route_a = net.add_route(&[transit_a, backbone, access]);
        let route_b = net.add_route(&[transit_b, backbone, access]);
        for i in 0..2u64 {
            net.start_flow(FlowId(i), route_a, 1e6, f64::INFINITY, t(0.0));
            net.start_flow(FlowId(100 + i), route_b, 1e6, f64::INFINITY, t(0.0));
        }
        // Group A pinned by its 0.8 MB/s transit (400 kB/s each); group B
        // gets the backbone's remaining 1.2 MB/s (600 kB/s each) — the
        // backbone is the second bottleneck.
        assert!((net.current_rate(FlowId(0)).unwrap() - 400_000.0).abs() < 1e-6);
        assert!((net.current_rate(FlowId(100)).unwrap() - 600_000.0).abs() < 1e-6);
        assert_eq!(net.route_bottleneck(route_a), Some(transit_a));
        assert_eq!(net.route_bottleneck(route_b), Some(backbone));
    }

    #[test]
    fn advance_is_monotonic_and_bytes_accumulate() {
        let (mut net, routes, access) = star(&[mbps(8.0)], mbps(80.0));
        net.start_flow(FlowId(1), routes[0], 250_000.0, f64::INFINITY, t(0.0));
        net.advance(t(10.0));
        net.advance(t(5.0)); // no-op
        net.finish_flow(FlowId(1), t(10.0));
        assert!((net.link_bytes_transferred(access) - 250_000.0).abs() < 1e-6);
        assert!((net.link_bytes_transferred(LinkId(1)) - 250_000.0).abs() < 1e-6);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_flow_id_panics() {
        let (mut net, routes, _) = star(&[mbps(8.0)], mbps(80.0));
        net.start_flow(FlowId(1), routes[0], 10.0, f64::INFINITY, t(0.0));
        net.start_flow(FlowId(1), routes[0], 10.0, f64::INFINITY, t(0.0));
    }

    #[test]
    fn raising_a_cap_speeds_up_the_flow() {
        let (mut net, routes, _) = star(&[mbps(8.0)], mbps(80.0));
        net.start_flow(FlowId(1), routes[0], 400_000.0, 100_000.0, t(0.0));
        assert_eq!(net.current_rate(FlowId(1)), Some(100_000.0));
        net.set_rate_cap(FlowId(1), f64::INFINITY, t(1.0));
        assert_eq!(net.current_rate(FlowId(1)), Some(1_000_000.0));
        let (done, _) = net.peek_completion().unwrap();
        assert!((done.as_secs_f64() - 1.3).abs() < 1e-9);
    }
}
