//! Discrete-event simulation core for the Mini-Flash Crowds (MFC) reproduction.
//!
//! The MFC paper evaluates its profiling technique against live web servers
//! reached over the wide-area Internet from PlanetLab client machines.  This
//! workspace reproduces those experiments on a laptop, so every layer below
//! the MFC algorithm itself is simulated.  `mfc-simcore` provides the
//! building blocks every other simulation crate relies on:
//!
//! * [`SimTime`] / [`SimDuration`] — a deterministic virtual clock with
//!   microsecond resolution,
//! * [`EventQueue`] — a calendar queue with stable FIFO ordering for
//!   simultaneous events and cheap cancellation,
//! * [`SimRng`] — a seedable random-number source with the handful of
//!   distributions the workload models need (exponential, log-normal,
//!   Pareto, truncated normal, …), and
//! * [`stats`] — the summary statistics the MFC coordinator and the
//!   experiment harness report (median, arbitrary percentiles, histograms,
//!   time-weighted utilization series).
//!
//! # Examples
//!
//! ```
//! use mfc_simcore::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(5), "second");
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(1), "first");
//!
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t.as_millis_f64(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use queue::{EventHandle, EventQueue};
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, Summary, TimeWeighted};
pub use time::{SimDuration, SimTime};
