//! Virtual time for the discrete-event simulation.
//!
//! Simulated time is kept as an integer number of microseconds since the
//! start of the simulation.  Microsecond resolution is fine for the MFC
//! experiments: the smallest quantities the paper reasons about are
//! millisecond-scale response-time increases and the synchronization spread
//! of request arrivals, which it reports with millisecond granularity.
//! Using integers (rather than `f64` seconds) keeps event ordering exact and
//! the simulation bit-for-bit reproducible across runs and platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of virtual time, stored as whole microseconds.
///
/// `SimDuration` mirrors a small subset of [`std::time::Duration`] but is
/// cheap, `Copy`, serializable and convertible to/from floating-point
/// seconds and milliseconds, which the statistics code works in.
///
/// # Examples
///
/// ```
/// use mfc_simcore::SimDuration;
///
/// let rtt = SimDuration::from_millis(80);
/// assert_eq!(rtt.as_micros(), 80_000);
/// assert_eq!((rtt * 3).as_millis_f64(), 240.0);
/// assert_eq!(rtt.mul_f64(1.5).as_millis_f64(), 120.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { micros }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            micros: millis * 1_000,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            micros: secs * 1_000_000,
        }
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite inputs.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration {
            micros: (secs * 1_000_000.0).round() as u64,
        }
    }

    /// Creates a duration from fractional milliseconds, saturating at zero
    /// for negative or non-finite inputs.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1_000.0)
    }

    /// Returns the duration as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.micros as f64 / 1_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1_000_000.0
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.micros == 0
    }

    /// Multiplies the duration by a non-negative floating point factor,
    /// saturating at zero for negative factors and at `u64::MAX`
    /// microseconds for overflowing or infinite products.
    ///
    /// The product is computed on the integer microsecond count directly.
    /// The earlier implementation round-tripped through `f64` *seconds*
    /// (`micros / 1e6 * factor * 1e6`), whose division-then-multiplication
    /// loses integer exactness for large durations; a single
    /// `micros × factor` rounding step keeps every product that is exactly
    /// representable (e.g. any duration × 0.5) exact.
    pub fn mul_f64(self, factor: f64) -> Self {
        if factor.is_nan() || factor <= 0.0 {
            // Negative, zero or NaN factors all saturate to zero.
            return SimDuration::ZERO;
        }
        let product = (self.micros as f64) * factor;
        if product >= u64::MAX as f64 {
            return SimDuration { micros: u64::MAX };
        }
        SimDuration {
            micros: product.round() as u64,
        }
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, other: SimDuration) -> Self {
        SimDuration {
            micros: self.micros.saturating_sub(other.micros),
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> Self {
        if self.micros >= other.micros {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> Self {
        if self.micros <= other.micros {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micros >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros += rhs.micros;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self
                .micros
                .checked_sub(rhs.micros)
                .expect("SimDuration subtraction underflow"),
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros * rhs,
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros / rhs,
        }
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

/// An instant on the simulation clock, measured from the start of the run.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{SimTime, SimDuration};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_secs(10);
/// assert_eq!(later - start, SimDuration::from_secs(10));
/// assert!(later > start);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime {
    micros: u64,
}

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime { micros: 0 };

    /// Creates an instant from whole microseconds since the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime { micros }
    }

    /// Creates an instant from fractional seconds since the origin,
    /// saturating at zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime {
            micros: SimDuration::from_secs_f64(secs).as_micros(),
        }
    }

    /// Returns the instant as whole microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Returns the instant as fractional milliseconds since the origin.
    pub fn as_millis_f64(self) -> f64 {
        self.micros as f64 / 1_000.0
    }

    /// Returns the instant as fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(earlier.micros),
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.micros >= other.micros {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.micros <= other.micros {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime {
            micros: self.micros + rhs.as_micros(),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros += rhs.as_micros();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime {
            micros: self
                .micros
                .checked_sub(rhs.as_micros())
                .expect("SimTime subtraction underflow"),
        }
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration {
            micros: self
                .micros
                .checked_sub(rhs.micros)
                .expect("SimTime difference underflow"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn duration_from_negative_or_nan_is_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!((a + b).as_micros(), 14_000);
        assert_eq!((a - b).as_micros(), 6_000);
        assert_eq!((a * 3).as_micros(), 30_000);
        assert_eq!((a / 2).as_micros(), 5_000);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.mul_f64(0.5).as_micros(), 5_000);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(3);
        assert_eq!(t1 - t0, SimDuration::from_secs(3));
        assert_eq!(t1.saturating_since(t0), SimDuration::from_secs(3));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.max(t0), t1);
        assert_eq!(t1.min(t0), t0);
        assert_eq!((t1 - SimDuration::from_secs(1)).as_secs_f64(), 2.0);
    }

    #[test]
    fn mul_f64_is_exact_on_integer_micros() {
        // 3 hours in micros is above 2^33: the old seconds round trip
        // (micros/1e6*factor*1e6) drifts here, the direct product must not.
        let big = SimDuration::from_secs(3 * 3600);
        assert_eq!(big.mul_f64(0.5), SimDuration::from_secs(3 * 1800));
        assert_eq!(big.mul_f64(1.0), big);
        assert_eq!(big.mul_f64(2.0), big * 2);
        // ~50 days, near the precision edge of the old path.
        let huge = SimDuration::from_micros(4_398_046_511_103);
        assert_eq!(huge.mul_f64(1.0), huge);
        // Saturation instead of wrap/UB.
        assert_eq!(
            SimDuration::from_micros(u64::MAX).mul_f64(2.0).as_micros(),
            u64::MAX
        );
        assert_eq!(big.mul_f64(f64::INFINITY).as_micros(), u64::MAX);
        assert_eq!(big.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(big.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(
            format!("{}", SimTime::ZERO + SimDuration::from_millis(1)),
            "0.001000s"
        );
    }
}
