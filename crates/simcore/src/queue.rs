//! The calendar event queue driving every discrete-event simulation in the
//! workspace.
//!
//! The queue is a binary heap keyed on `(time, sequence number)`.  The
//! sequence number makes ordering *stable*: two events scheduled for the same
//! instant are delivered in the order they were scheduled.  Stability matters
//! for reproducibility — the MFC coordinator's inferences depend on which of
//! two simultaneous request completions is observed first, and we want the
//! same seed to always produce the same report.
//!
//! Payloads live in a **generation-tagged slab** beside the heap.  Each heap
//! entry carries its slot index and the generation the slot had when the
//! event was scheduled; a slot whose generation has moved on marks a
//! cancelled (or already-delivered) entry.  Compared with the earlier
//! side-`HashSet` of pending sequence numbers this removes a hash +
//! allocation from every `schedule`/`pop`/`cancel` on the hot path, keeps
//! `len` O(1) via a plain counter, and recycles slots through a free list so
//! a steady-state simulation stops allocating entirely.
//!
//! Cancellation stays lazy: cancelled entries remain in the heap and are
//! skipped when popped.  The MFC simulations cancel only a tiny fraction of
//! events (mostly request timeouts), so lazy deletion is both simple and
//! fast.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can later be cancelled.
///
/// Handles are only meaningful for the queue that issued them.  A handle
/// holds its slab slot plus the slot's generation at scheduling time, so a
/// recycled slot cannot be cancelled through a stale handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

impl EventHandle {
    #[cfg(test)]
    fn dangling() -> EventHandle {
        EventHandle {
            slot: u32::MAX,
            generation: u32::MAX,
        }
    }
}

/// Heap entry: ordering key plus the slab coordinates of the payload.
#[derive(Debug, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// A future-event list ordered by simulated time with stable FIFO ordering
/// for ties and lazy cancellation.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{EventQueue, SimTime, SimDuration};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_micros(10), "a");
/// let _b = q.schedule(SimTime::from_micros(10), "b");
/// q.schedule(SimTime::from_micros(5), "c");
/// q.cancel(a);
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["c", "b"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    pending: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            pending: 0,
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time` and returns a handle that can be
    /// used to cancel it.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let entry = &mut self.slots[slot as usize];
                entry.payload = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab exceeds u32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(payload),
                });
                slot
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(Reverse(Entry {
            time,
            seq,
            slot,
            generation,
        }));
        self.pending += 1;
        EventHandle { slot, generation }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.slots.get_mut(handle.slot as usize) {
            Some(slot) if slot.generation == handle.generation && slot.payload.is_some() => {
                slot.payload = None;
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(handle.slot);
                self.pending -= 1;
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            let slot = &mut self.slots[entry.slot as usize];
            if slot.generation == entry.generation {
                let payload = slot.payload.take().expect("pending slot holds a payload");
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(entry.slot);
                self.pending -= 1;
                return Some((entry.time, payload));
            }
            // Stale entry for a cancelled event: drop it and keep sweeping.
        }
        None
    }

    /// Returns the firing time of the earliest pending (non-cancelled)
    /// event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                Some(Reverse(entry)) => {
                    if self.slots[entry.slot as usize].generation == entry.generation {
                        return Some(entry.time);
                    }
                    // Sweep the cancelled entry and keep looking.
                    self.heap.pop();
                }
                None => return None,
            }
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Removes every pending event.
    ///
    /// Slots are freed with a generation bump rather than dropped, so
    /// handles issued before the `clear` can never cancel events scheduled
    /// after it (slot reuse would otherwise alias stale handles).
    pub fn clear(&mut self) {
        self.heap.clear();
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.payload.take().is_some() {
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(index as u32);
            }
        }
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        let c = q.schedule(t(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert!(!q.cancel(a), "already-fired event cannot be cancelled");
        let _ = c;
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle::dangling()));
    }

    #[test]
    fn recycled_slot_rejects_stale_handle() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // The next schedule reuses slot 0 with a bumped generation.
        let b = q.schedule(t(2), "b");
        assert!(!q.cancel(a), "stale handle must not cancel the new event");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_recycled_through_the_free_list() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..8u64 {
                q.schedule(t(round * 10 + i), i);
            }
            while q.pop().is_some() {}
        }
        // Steady-state churn must not grow the slab beyond its peak usage.
        assert!(q.slots.len() <= 8, "slab grew to {} slots", q.slots.len());
    }

    #[test]
    fn clear_invalidates_outstanding_handles() {
        let mut q = EventQueue::new();
        let stale = q.schedule(t(1), "before");
        q.clear();
        q.schedule(t(2), "after");
        assert!(
            !q.cancel(stale),
            "pre-clear handle must not cancel a post-clear event"
        );
        assert_eq!(q.pop().map(|(_, e)| e), Some("after"));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10u32);
        q.schedule(t(5), 5);
        assert_eq!(q.pop().map(|(_, e)| e), Some(5));
        q.schedule(t(7), 7);
        q.schedule(t(1), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, e)| e), Some(7));
        assert_eq!(q.pop().map(|(_, e)| e), Some(10));
        assert_eq!(q.pop(), None);
    }
}
