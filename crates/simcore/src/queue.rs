//! The calendar event queue driving every discrete-event simulation in the
//! workspace.
//!
//! The queue is a binary heap keyed on `(time, sequence number)`.  The
//! sequence number makes ordering *stable*: two events scheduled for the same
//! instant are delivered in the order they were scheduled.  Stability matters
//! for reproducibility — the MFC coordinator's inferences depend on which of
//! two simultaneous request completions is observed first, and we want the
//! same seed to always produce the same report.
//!
//! Cancellation is supported through [`EventHandle`]s and implemented lazily:
//! cancelled entries stay in the heap and are skipped when popped.  The MFC
//! simulations cancel only a tiny fraction of events (mostly request
//! timeouts), so lazy deletion is both simple and fast.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Identifies a scheduled event so it can later be cancelled.
///
/// Handles are only meaningful for the queue that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A future-event list ordered by simulated time with stable FIFO ordering
/// for ties and lazy cancellation.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{EventQueue, SimTime, SimDuration};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_micros(10), "a");
/// let _b = q.schedule(SimTime::from_micros(10), "b");
/// q.schedule(SimTime::from_micros(5), "c");
/// q.cancel(a);
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["c", "b"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Sequence numbers of events that are scheduled and not yet delivered
    /// or cancelled.  Membership here is the source of truth for `len` and
    /// for whether a cancellation succeeds.
    pending: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time` and returns a handle that can be
    /// used to cancel it.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pending.remove(&handle.0)
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.pending.remove(&entry.seq) {
                return Some((entry.time, entry.payload));
            }
        }
        None
    }

    /// Returns the firing time of the earliest pending (non-cancelled)
    /// event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                Some(Reverse(entry)) => {
                    if self.pending.contains(&entry.seq) {
                        return Some(entry.time);
                    }
                    // Sweep the cancelled entry and keep looking.
                    self.heap.pop();
                }
                None => return None,
            }
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        let c = q.schedule(t(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert!(!q.cancel(a), "already-fired event cannot be cancelled");
        let _ = c;
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10u32);
        q.schedule(t(5), 5);
        assert_eq!(q.pop().map(|(_, e)| e), Some(5));
        q.schedule(t(7), 7);
        q.schedule(t(1), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, e)| e), Some(7));
        assert_eq!(q.pop().map(|(_, e)| e), Some(10));
        assert_eq!(q.pop(), None);
    }
}
