//! Deterministic random-number generation for the simulations.
//!
//! Every stochastic quantity in the reproduction — client round-trip times,
//! background-traffic arrivals, server provisioning draws for the §5
//! population studies, request jitter — is drawn through [`SimRng`].  The
//! generator is explicitly seeded so that every experiment in
//! `EXPERIMENTS.md` can be regenerated bit-for-bit, and it can be *forked*
//! into independent substreams so that adding draws in one subsystem does
//! not perturb another (a classic source of accidental non-reproducibility
//! in event simulations).

use crate::time::SimDuration;

/// The raw generator behind [`SimRng`]: xoshiro256** seeded via SplitMix64.
///
/// Implemented in-tree (no `rand` dependency) so the simulation stack builds
/// offline and the stream is fixed by this repository alone — the same seed
/// yields the same draws on every platform, toolchain and build.
#[derive(Debug, Clone)]
struct Xoshiro256StarStar {
    state: [u64; 4],
}

impl Xoshiro256StarStar {
    fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed, as recommended by the
        // xoshiro authors; it guarantees a non-zero state for every seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256StarStar {
            state: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seedable random source with the distributions the MFC models need.
///
/// # Examples
///
/// ```
/// use mfc_simcore::SimRng;
///
/// let mut rng = SimRng::seed_from(7);
/// let x = rng.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
///
/// // Forked substreams are independent but fully determined by the parent
/// // seed and the label.
/// let mut net = rng.fork("network");
/// let mut srv = rng.fork("server");
/// assert_ne!(net.uniform(0.0, 1.0), srv.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256StarStar,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256StarStar::from_seed(seed),
            seed,
        }
    }

    /// Returns the seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent substream identified by `label`.
    ///
    /// The substream seed is a stable hash of the parent seed and the label,
    /// so the same `(seed, label)` pair always yields the same stream
    /// regardless of how many draws the parent has made.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.  Stable across
        // platforms and Rust versions, unlike `DefaultHasher`.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::seed_from(h)
    }

    /// Derives an independent substream identified by an integer index.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        self.fork(&format!("{label}/{index}"))
    }

    /// Draws a uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low <= high, "uniform bounds out of order: {low} > {high}");
        if low == high {
            return low;
        }
        let draw = low + (high - low) * self.inner.next_f64();
        // Floating-point rounding can land exactly on `high` for extreme
        // ranges; keep the half-open contract.
        if draw >= high {
            low
        } else {
            draw
        }
    }

    /// Draws a uniform integer in `[low, high]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "uniform bounds out of order: {low} > {high}");
        let span = high - low;
        if span == u64::MAX {
            return self.inner.next_u64();
        }
        // Multiply-shift mapping of a 64-bit draw onto the span (Lemire);
        // the bias is far below anything the MFC models can observe.
        let mapped = ((self.inner.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
        low + mapped
    }

    /// Draws a `usize` index uniformly in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot draw an index from an empty range");
        self.uniform_u64(0, len as u64 - 1) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.next_f64() < p
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times of background traffic.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = self.inner.next_f64().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// Draws from a normal distribution via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1 = self.inner.next_f64().max(f64::EPSILON);
        let u2 = self.inner.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Draws from a normal distribution truncated to `[low, high]`.
    ///
    /// Truncation is by clamping rather than rejection so the cost is
    /// constant; the tails this shifts are irrelevant at the fidelity of the
    /// MFC models.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, low: f64, high: f64) -> f64 {
        self.normal(mean, std_dev).clamp(low, high)
    }

    /// Draws from a log-normal distribution parameterised by the mean and
    /// standard deviation of the underlying normal.
    ///
    /// Used for heavy-tailed quantities such as wide-area RTTs and static
    /// object sizes.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Draws from a Pareto distribution with scale `x_min` and shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0, "pareto scale must be positive");
        assert!(alpha > 0.0, "pareto shape must be positive");
        let u = self.inner.next_f64().max(f64::EPSILON);
        x_min / u.powf(1.0 / alpha)
    }

    /// Draws a random duration uniformly between `low` and `high`.
    pub fn duration_between(&mut self, low: SimDuration, high: SimDuration) -> SimDuration {
        let lo = low.as_micros();
        let hi = high.as_micros().max(lo);
        SimDuration::from_micros(self.uniform_u64(lo, hi))
    }

    /// Draws an exponentially distributed duration with the given mean.
    pub fn exponential_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Chooses `count` distinct elements uniformly at random from `items`,
    /// preserving no particular order.
    ///
    /// This mirrors the coordinator's behaviour of picking the participating
    /// clients for each epoch at random from the registered pool (paper
    /// §2.3).  If `count >= items.len()` a shuffled copy of the whole slice
    /// is returned.
    pub fn sample<T: Clone>(&mut self, items: &[T], count: usize) -> Vec<T> {
        let mut indices: Vec<usize> = (0..items.len()).collect();
        // Partial Fisher-Yates: only the first `count` positions are needed.
        let take = count.min(items.len());
        for i in 0..take {
            let j = i + self.uniform_u64(0, (indices.len() - i) as u64 - 1) as usize;
            indices.swap(i, j);
        }
        indices[..take].iter().map(|&i| items[i].clone()).collect()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Picks one element of `items` with probability proportional to its
    /// paired weight.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or all weights are non-positive.
    pub fn weighted_choice<'a, T>(&mut self, items: &'a [(T, f64)]) -> &'a T {
        assert!(!items.is_empty(), "weighted_choice on empty slice");
        let total: f64 = items.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "weighted_choice requires a positive weight");
        let mut target = self.uniform(0.0, total);
        for (item, w) in items {
            let w = w.max(0.0);
            if target < w {
                return item;
            }
            target -= w;
        }
        &items[items.len() - 1].0
    }

    /// Draws one raw 64-bit value from the underlying generator.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.uniform_u64(0, u64::MAX) == b.uniform_u64(0, u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_independent_of_parent_draws() {
        let parent = SimRng::seed_from(99);
        let mut f1 = parent.fork("net");
        let mut parent2 = SimRng::seed_from(99);
        // Burn some draws on the second parent before forking.
        for _ in 0..10 {
            parent2.uniform(0.0, 1.0);
        }
        let mut f2 = parent2.fork("net");
        for _ in 0..16 {
            assert_eq!(f1.uniform_u64(0, u64::MAX), f2.uniform_u64(0, u64::MAX));
        }
    }

    #[test]
    fn fork_labels_distinguish_streams() {
        let parent = SimRng::seed_from(5);
        let mut a = parent.fork("a");
        let mut b = parent.fork("b");
        assert_ne!(a.uniform_u64(0, u64::MAX), b.uniform_u64(0, u64::MAX));
        let mut i0 = parent.fork_indexed("client", 0);
        let mut i1 = parent.fork_indexed("client", 1);
        assert_ne!(i0.uniform_u64(0, u64::MAX), i1.uniform_u64(0, u64::MAX));
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from(42);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = total / n as f64;
        assert!((observed - mean).abs() < 0.2, "observed mean {observed}");
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = SimRng::seed_from(43);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from(44);
        for _ in 0..1_000 {
            assert!(rng.pareto(100.0, 1.2) >= 100.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(45);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn sample_returns_distinct_elements() {
        let mut rng = SimRng::seed_from(46);
        let items: Vec<u32> = (0..100).collect();
        let picked = rng.sample(&items, 30);
        assert_eq!(picked.len(), 30);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "sampled elements must be distinct");
    }

    #[test]
    fn sample_more_than_available_returns_all() {
        let mut rng = SimRng::seed_from(47);
        let items = vec![1, 2, 3];
        let picked = rng.sample(&items, 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn weighted_choice_prefers_heavy_items() {
        let mut rng = SimRng::seed_from(48);
        let items = [("rare", 1.0), ("common", 99.0)];
        let common = (0..1_000)
            .filter(|_| *rng.weighted_choice(&items) == "common")
            .count();
        assert!(common > 900, "common picked only {common} times");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(49);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn duration_helpers() {
        let mut rng = SimRng::seed_from(50);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..100 {
            let d = rng.duration_between(lo, hi);
            assert!(d >= lo && d <= hi);
        }
        let mean = SimDuration::from_millis(100);
        let n = 5_000;
        let total: SimDuration = (0..n).map(|_| rng.exponential_duration(mean)).sum();
        let observed = total.as_millis_f64() / n as f64;
        assert!(
            (observed - 100.0).abs() < 10.0,
            "observed mean {observed}ms"
        );
    }
}
