//! Summary statistics used throughout the MFC reproduction.
//!
//! The MFC detection rule is built on order statistics of the per-client
//! normalized response times: the coordinator uses the **median** for the
//! Base and Small Query stages and the **90th percentile** for the Large
//! Object stage (paper §2.2.3).  The experiment harness additionally needs
//! histograms for the §5 stopping-crowd-size breakdowns (Figures 7–9,
//! Tables 4–5) and time-weighted averages for the server-side utilization
//! curves (Figures 5–6).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Returns the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of `values` using linear
/// interpolation between closest ranks, or `None` for an empty slice.
///
/// The input does not need to be sorted.
///
/// # Examples
///
/// ```
/// use mfc_simcore::stats::percentile;
///
/// let xs = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(percentile(&xs, 0.5), Some(25.0));
/// assert_eq!(percentile(&xs, 0.0), Some(10.0));
/// assert_eq!(percentile(&xs, 1.0), Some(40.0));
/// assert_eq!(percentile(&[], 0.5), None);
/// ```
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    let mut scratch = values.to_vec();
    percentile_mut(&mut scratch, q)
}

/// [`percentile`] over a caller-owned scratch buffer.
///
/// Computes the quantile by *selection* (`select_nth_unstable`) instead of a
/// full sort — O(n) rather than O(n log n) — reordering `values` in the
/// process.  Callers that need several quantiles of the same sample can
/// reuse one buffer across calls (see [`Summary::from_values`]); repeated
/// selection on an already-partitioned buffer is nearly free.
pub fn percentile_mut(values: &mut [f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN in percentile input");
    let (_, lo_value, above) = values.select_nth_unstable_by(lo, cmp);
    let lo_value = *lo_value;
    if frac == 0.0 {
        return Some(lo_value);
    }
    // The rank straddles two order statistics; the (lo+1)-th is the minimum
    // of the partition above the pivot.
    let hi_value = above.iter().copied().fold(f64::INFINITY, f64::min);
    Some(lo_value * (1.0 - frac) + hi_value * frac)
}

/// Returns the median of `values`, or `None` for an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 0.5)
}

/// Returns the arithmetic mean, or `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// A five-number-style summary of a sample.
///
/// # Examples
///
/// ```
/// use mfc_simcore::Summary;
///
/// let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
/// assert_eq!(s.count, 5);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.max, 100.0);
/// assert!(s.mean > s.median, "the outlier drags the mean up");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 90th percentile — the detector used for the Large Object stage.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Builds a summary from raw samples, or `None` if the slice is empty.
    pub fn from_values(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mean_v = mean(values)?;
        let var = values.iter().map(|v| (v - mean_v).powi(2)).sum::<f64>() / values.len() as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        // One scratch buffer for all three selection-based quantiles.
        let mut scratch = values.to_vec();
        Some(Summary {
            count: values.len(),
            min,
            max,
            mean: mean_v,
            median: percentile_mut(&mut scratch, 0.5)?,
            p90: percentile_mut(&mut scratch, 0.90)?,
            p99: percentile_mut(&mut scratch, 0.99)?,
            std_dev: var.sqrt(),
        })
    }
}

/// Streaming mean / variance / extrema via Welford's algorithm.
///
/// Used where samples are produced one at a time and storing them all would
/// be wasteful (e.g. per-request service times inside the server simulator).
///
/// # Examples
///
/// ```
/// use mfc_simcore::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-9);
/// assert!((s.std_dev() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or zero if none were pushed.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or zero with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

/// A histogram over explicit bucket boundaries.
///
/// The §5 figures report the *fraction of servers* whose stopping crowd size
/// falls into buckets such as 10–20, 20–30, 30–40, 40–50 and "NoStop"; this
/// type produces exactly that kind of breakdown.
///
/// # Examples
///
/// ```
/// use mfc_simcore::Histogram;
///
/// let mut h = Histogram::new(&[10.0, 20.0, 30.0]);
/// h.record(5.0);   // bucket 0: < 10
/// h.record(15.0);  // bucket 1: [10, 20)
/// h.record(25.0);  // bucket 2: [20, 30)
/// h.record(99.0);  // bucket 3: >= 30 (overflow)
/// assert_eq!(h.counts(), &[1, 1, 1, 1]);
/// assert_eq!(h.total(), 4);
/// assert!((h.fraction(1) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket edges.
    ///
    /// With `n` edges there are `n + 1` buckets: `(-inf, e0)`, `[e0, e1)`,
    /// …, `[e(n-1), +inf)`.
    ///
    /// # Panics
    ///
    /// Panics if the edges are not strictly ascending.
    pub fn new(edges: &[f64]) -> Self {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        // Edges are validated strictly ascending at construction, so the
        // first edge above `value` is a partition point — binary search
        // instead of a linear scan.  The negated predicate keeps the old
        // NaN behaviour (all comparisons false => overflow bucket).
        let bucket = self
            .edges
            .partition_point(|&e| !matches!(value.partial_cmp(&e), Some(std::cmp::Ordering::Less)));
        self.counts[bucket] += 1;
    }

    /// Per-bucket counts (length = number of edges + 1).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket edges this histogram was built with.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of observations in bucket `index` (zero if nothing recorded).
    pub fn fraction(&self, index: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[index] as f64 / total as f64
        }
    }

    /// Fractions for all buckets, summing to 1 when any data was recorded.
    pub fn fractions(&self) -> Vec<f64> {
        // One total for the whole vector rather than re-summing every
        // bucket per element (which made this quadratic in bucket count).
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// A time-weighted average of a piecewise-constant signal, such as the
/// number of busy workers, resident memory, or access-link utilization.
///
/// The lab validation figures (Figures 5 and 6) plot server-side resource
/// usage against crowd size; the server simulator tracks each resource with
/// one of these and reports the mean level over the epoch.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{TimeWeighted, SimTime, SimDuration};
///
/// let mut util = TimeWeighted::new(SimTime::ZERO, 0.0);
/// util.set(SimTime::ZERO + SimDuration::from_secs(1), 10.0);
/// util.set(SimTime::ZERO + SimDuration::from_secs(3), 0.0);
/// // 1s at 0, 2s at 10, observed over 4s total.
/// assert!((util.average_until(SimTime::ZERO + SimDuration::from_secs(4)) - 5.0).abs() < 1e-9);
/// assert_eq!(util.peak(), 10.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Starts tracking a signal whose value is `initial` at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            peak: initial,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// Changes must be reported in non-decreasing time order; out-of-order
    /// updates are clamped to the last change time.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let now = now.max(self.last_change);
        let elapsed = (now - self.last_change).as_secs_f64();
        self.weighted_sum += self.current * elapsed;
        self.current = value;
        self.last_change = now;
        self.peak = self.peak.max(value);
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Largest value the signal has reached.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average of the signal from the start of tracking until
    /// `end`.  Returns the current value if no time has elapsed.
    pub fn average_until(&self, end: SimTime) -> f64 {
        let end = end.max(self.last_change);
        let total = (end - self.start).as_secs_f64();
        if total <= 0.0 {
            return self.current;
        }
        let tail = self.current * (end - self.last_change).as_secs_f64();
        (self.weighted_sum + tail) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
        assert_eq!(percentile(&[1.0, 2.0], 0.5), Some(1.5));
        // Quantiles outside [0,1] are clamped.
        assert_eq!(percentile(&[1.0, 2.0], 2.0), Some(2.0));
        assert_eq!(percentile(&[1.0, 2.0], -1.0), Some(1.0));
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 9.0, 3.0, 7.0];
        let mut b = a;
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(percentile(&a, q), percentile(&b, q));
        }
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_values(&[2.0, 4.0, 6.0, 8.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 5.0);
        assert!((s.std_dev - 5.0_f64.sqrt()).abs() < 1e-12);
        assert!(Summary::from_values(&[]).is_none());
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn online_stats_matches_batch() {
        let values = [1.0, 4.0, 9.0, 16.0, 25.0, 36.0];
        let mut s = OnlineStats::new();
        for v in values {
            s.push(v);
        }
        let batch = Summary::from_values(&values).unwrap();
        assert!((s.mean() - batch.mean).abs() < 1e-9);
        assert!((s.std_dev() - batch.std_dev).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        for v in [5.0, 10.0, 19.9, 20.0, 45.0, 500.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 0, 1, 1]);
        assert_eq!(h.total(), 6);
        let fr = h.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucketing_matches_linear_scan() {
        let edges = [1.0, 2.5, 10.0, 10.5, 100.0];
        let mut h = Histogram::new(&edges);
        let values = [
            -5.0,
            0.0,
            1.0,
            2.49,
            2.5,
            10.0,
            10.49,
            99.9,
            100.0,
            1e9,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NAN,
        ];
        for &v in &values {
            let expected = edges.iter().position(|&e| v < e).unwrap_or(edges.len());
            let before = h.counts()[expected];
            h.record(v);
            assert_eq!(h.counts()[expected], before + 1, "value {v}");
        }
        assert_eq!(h.total(), values.len() as u64);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(&[10.0, 5.0]);
    }

    #[test]
    fn histogram_empty_fraction_is_zero() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.fraction(0), 0.0);
    }

    #[test]
    fn time_weighted_average_and_peak() {
        let t0 = SimTime::ZERO;
        let mut w = TimeWeighted::new(t0, 2.0);
        w.set(t0 + SimDuration::from_secs(2), 6.0);
        w.add(t0 + SimDuration::from_secs(4), -6.0);
        // 2s at 2.0 + 2s at 6.0 + 1s at 0.0 over 5 seconds = 16 / 5.
        let avg = w.average_until(t0 + SimDuration::from_secs(5));
        assert!((avg - 3.2).abs() < 1e-9);
        assert_eq!(w.peak(), 6.0);
        assert_eq!(w.current(), 0.0);
    }

    #[test]
    fn time_weighted_no_elapsed_time() {
        let w = TimeWeighted::new(SimTime::ZERO, 7.0);
        assert_eq!(w.average_until(SimTime::ZERO), 7.0);
    }

    #[test]
    fn time_weighted_out_of_order_updates_clamp() {
        let t0 = SimTime::ZERO;
        let mut w = TimeWeighted::new(t0 + SimDuration::from_secs(10), 1.0);
        // An update "before" the last change is treated as happening at the
        // last change time instead of panicking.
        w.set(t0 + SimDuration::from_secs(5), 3.0);
        assert_eq!(w.current(), 3.0);
    }
}
