//! Common-Log-Format trace replay.
//!
//! Cooperating operators have access logs; replaying one against the
//! simulated server is the highest-fidelity background workload available.
//! [`TraceReplay::parse`] ingests CLF lines —
//!
//! ```text
//! 10.0.0.1 - alice [10/Oct/2000:13:55:36 -0700] "GET /index.html HTTP/1.0" 200 2326
//! ```
//!
//! — and turns them into a schedule of request offsets relative to the
//! first entry.  The replay is deterministic by construction: no draws are
//! involved, only the timestamps and paths the log recorded.

use mfc_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One parsed log line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Arrival offset from the trace's first entry.
    pub offset: SimDuration,
    /// The requested path, query string included.
    pub path: String,
    /// Whether the request used `HEAD`.
    pub head: bool,
    /// Whether the path looks dynamic (contains `?`).
    pub dynamic: bool,
    /// The logged response size in bytes (`-` parses as 0).
    pub bytes: u64,
    /// The logged HTTP status.
    pub status: u16,
}

/// A replayable request schedule parsed from an access log.
///
/// When used as a workload source, entry `i` arrives at absolute
/// simulation time `anchor + offset_i`; entries outside the stream's
/// window are skipped (before) or dropped (after).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceReplay {
    /// Entries ordered by offset.
    pub entries: Vec<TraceEntry>,
    /// Where on the absolute time axis the trace's first entry lands.
    pub anchor: SimTime,
}

impl TraceReplay {
    /// Parses CLF text, one request per non-empty line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    ///
    /// # Examples
    ///
    /// ```
    /// use mfc_workload::TraceReplay;
    ///
    /// let log = r#"
    /// 10.0.0.1 - - [10/Oct/2000:13:55:36 -0700] "GET /index.html HTTP/1.0" 200 2326
    /// 10.0.0.2 - - [10/Oct/2000:13:55:38 -0700] "GET /search?q=mfc HTTP/1.0" 200 412
    /// "#;
    /// let trace = TraceReplay::parse(log).unwrap();
    /// assert_eq!(trace.entries.len(), 2);
    /// assert_eq!(trace.entries[1].offset.as_secs_f64(), 2.0);
    /// assert!(trace.entries[1].dynamic);
    /// ```
    pub fn parse(text: &str) -> Result<TraceReplay, String> {
        let mut raw: Vec<(i64, TraceEntry)> = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed =
                parse_line(line).map_err(|e| format!("line {}: {e}: {line}", number + 1))?;
            raw.push(parsed);
        }
        // Stable sort by timestamp: CLF logs are written at completion
        // time, so arrival order can be locally shuffled.
        raw.sort_by_key(|(ts, _)| *ts);
        let first = raw.first().map(|(ts, _)| *ts).unwrap_or(0);
        let entries = raw
            .into_iter()
            .map(|(ts, mut entry)| {
                entry.offset = SimDuration::from_secs_f64((ts - first) as f64);
                entry
            })
            .collect();
        Ok(TraceReplay {
            entries,
            anchor: SimTime::ZERO,
        })
    }

    /// Re-anchors the trace so its first entry lands at `anchor`.
    pub fn anchored_at(mut self, anchor: SimTime) -> Self {
        self.anchor = anchor;
        self
    }

    /// The trace's span from first to last entry.
    pub fn span(&self) -> SimDuration {
        self.entries.last().map_or(SimDuration::ZERO, |e| e.offset)
    }

    /// Mean request rate over the trace's span, in requests per second.
    pub fn mean_rate(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        (self.entries.len().saturating_sub(1)) as f64 / span
    }

    /// Checks the replay for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self
            .entries
            .windows(2)
            .any(|pair| pair[0].offset > pair[1].offset)
        {
            return Err("trace entries must be ordered by offset".to_string());
        }
        Ok(())
    }
}

/// Parses one CLF line into `(unix-ish seconds, entry)`.
fn parse_line(line: &str) -> Result<(i64, TraceEntry), String> {
    let open = line.find('[').ok_or("missing [timestamp]")?;
    let close = line[open..]
        .find(']')
        .map(|i| open + i)
        .ok_or("unterminated timestamp")?;
    let timestamp = clf_timestamp(&line[open + 1..close])?;

    let rest = &line[close + 1..];
    let quote_start = rest.find('"').ok_or("missing request line")?;
    let quote_end = rest[quote_start + 1..]
        .find('"')
        .map(|i| quote_start + 1 + i)
        .ok_or("unterminated request line")?;
    let request = &rest[quote_start + 1..quote_end];
    let mut request_parts = request.split_whitespace();
    let method = request_parts.next().ok_or("empty request line")?;
    let path = request_parts.next().ok_or("request line has no path")?;

    let mut tail = rest[quote_end + 1..].split_whitespace();
    let status: u16 = tail
        .next()
        .ok_or("missing status")?
        .parse()
        .map_err(|_| "unparseable status")?;
    let bytes_field = tail.next().unwrap_or("-");
    let bytes: u64 = if bytes_field == "-" {
        0
    } else {
        bytes_field.parse().map_err(|_| "unparseable byte count")?
    };

    Ok((
        timestamp,
        TraceEntry {
            offset: SimDuration::ZERO, // rebased by the caller
            path: path.to_string(),
            head: method.eq_ignore_ascii_case("HEAD"),
            dynamic: path.contains('?'),
            bytes,
            status,
        },
    ))
}

/// Parses `10/Oct/2000:13:55:36 -0700` into seconds on a common axis
/// (days-from-civil algorithm; the absolute epoch does not matter, only
/// differences do).
fn clf_timestamp(text: &str) -> Result<i64, String> {
    let mut parts = text.split_whitespace();
    let datetime = parts.next().ok_or("empty timestamp")?;
    let zone = parts.next().unwrap_or("+0000");

    let mut fields = datetime.split(&['/', ':'][..]);
    let day: i64 = fields
        .next()
        .ok_or("missing day")?
        .parse()
        .map_err(|_| "bad day")?;
    let month = match fields.next().ok_or("missing month")? {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        other => return Err(format!("bad month {other}")),
    };
    let year: i64 = fields
        .next()
        .ok_or("missing year")?
        .parse()
        .map_err(|_| "bad year")?;
    let hour: i64 = fields
        .next()
        .ok_or("missing hour")?
        .parse()
        .map_err(|_| "bad hour")?;
    let minute: i64 = fields
        .next()
        .ok_or("missing minute")?
        .parse()
        .map_err(|_| "bad minute")?;
    let second: i64 = fields
        .next()
        .ok_or("missing second")?
        .parse()
        .map_err(|_| "bad second")?;

    // Howard Hinnant's days-from-civil.
    let (y, m) = if month <= 2 {
        (year - 1, month + 12)
    } else {
        (year, month)
    };
    let era = y.div_euclid(400);
    let yoe = y - era * 400;
    let doy = (153 * (m - 3) + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;

    let zone_sign = if zone.starts_with('-') { -1 } else { 1 };
    let zone_digits = zone.trim_start_matches(['+', '-']);
    let zone_minutes: i64 = if zone_digits.len() == 4 {
        let h: i64 = zone_digits[..2].parse().map_err(|_| "bad zone")?;
        let m: i64 = zone_digits[2..].parse().map_err(|_| "bad zone")?;
        h * 60 + m
    } else {
        0
    };

    Ok(days * 86_400 + hour * 3_600 + minute * 60 + second - zone_sign * zone_minutes * 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = r#"
192.168.1.9 - - [10/Oct/2000:13:55:36 -0700] "GET /index.html HTTP/1.0" 200 2326
192.168.1.9 - - [10/Oct/2000:13:55:37 -0700] "GET /img/logo.png HTTP/1.0" 200 14512
10.0.0.3 - bob [10/Oct/2000:13:56:06 -0700] "HEAD /index.html HTTP/1.1" 200 -
10.0.0.4 - - [10/Oct/2000:13:57:00 -0700] "GET /cgi/stats?table=t1 HTTP/1.1" 200 98
"#;

    #[test]
    fn parses_offsets_paths_and_classes() {
        let trace = TraceReplay::parse(LOG).unwrap();
        assert_eq!(trace.entries.len(), 4);
        assert_eq!(trace.entries[0].offset, SimDuration::ZERO);
        assert_eq!(trace.entries[1].offset, SimDuration::from_secs(1));
        assert_eq!(trace.entries[2].offset, SimDuration::from_secs(30));
        assert_eq!(trace.entries[3].offset, SimDuration::from_secs(84));
        assert!(trace.entries[2].head);
        assert!(trace.entries[3].dynamic);
        assert_eq!(trace.entries[1].bytes, 14512);
        assert_eq!(trace.entries[2].bytes, 0);
        assert!(trace.validate().is_ok());
        assert_eq!(trace.span(), SimDuration::from_secs(84));
        assert!((trace.mean_rate() - 3.0 / 84.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_lines_are_sorted() {
        let log = r#"
a - - [10/Oct/2000:13:55:40 +0000] "GET /b HTTP/1.0" 200 1
a - - [10/Oct/2000:13:55:36 +0000] "GET /a HTTP/1.0" 200 1
"#;
        let trace = TraceReplay::parse(log).unwrap();
        assert_eq!(trace.entries[0].path, "/a");
        assert_eq!(trace.entries[1].offset, SimDuration::from_secs(4));
    }

    #[test]
    fn timezone_offsets_are_applied() {
        let log = r#"
a - - [10/Oct/2000:12:00:00 -0100] "GET /a HTTP/1.0" 200 1
a - - [10/Oct/2000:14:00:00 +0100] "GET /b HTTP/1.0" 200 1
"#;
        // 12:00 -0100 = 13:00 UTC; 14:00 +0100 = 13:00 UTC.
        let trace = TraceReplay::parse(log).unwrap();
        assert_eq!(trace.entries[1].offset, SimDuration::ZERO);
    }

    #[test]
    fn month_boundaries_compute_correct_gaps() {
        let log = r#"
a - - [28/Feb/2001:23:59:59 +0000] "GET /a HTTP/1.0" 200 1
a - - [01/Mar/2001:00:00:00 +0000] "GET /b HTTP/1.0" 200 1
"#;
        let trace = TraceReplay::parse(log).unwrap();
        assert_eq!(trace.entries[1].offset, SimDuration::from_secs(1));
    }

    #[test]
    fn malformed_lines_are_reported_with_numbers() {
        let err = TraceReplay::parse("not a log line").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = TraceReplay::parse(
            "a - - [10/Oct/2000:13:55:36 +0000] \"GET /a HTTP/1.0\" twohundred 1",
        )
        .unwrap_err();
        assert!(err.contains("status"), "{err}");
    }

    #[test]
    fn empty_input_is_an_empty_trace() {
        let trace = TraceReplay::parse("\n\n").unwrap();
        assert!(trace.entries.is_empty());
        assert_eq!(trace.mean_rate(), 0.0);
    }
}
