//! Nonstationary arrival processes.
//!
//! Four generators cover the background conditions the paper asks for
//! (§4/§7: "run MFCs under diverse background conditions"):
//!
//! * [`ArrivalProcess::Poisson`] — the flat process the original model used
//!   (and the degenerate case `BackgroundTraffic` now adapts to);
//! * [`ArrivalProcess::Piecewise`] — piecewise-constant rate schedules,
//!   including the diurnal day/night cycle of real sites
//!   ([`ArrivalProcess::diurnal`]);
//! * [`ArrivalProcess::Mmpp`] — a Markov-modulated Poisson process whose
//!   state machine produces the bursty, overdispersed arrivals measured in
//!   production traces;
//! * [`ArrivalProcess::FlashCrowd`] — an organic surge event: a ramp to a
//!   peak, a hold, and a decay back to the base rate (the de Paula
//!   flash-crowd shape, arXiv:1410.2834).
//!
//! Sampling is *exact* for the piecewise-constant processes (the overshoot
//! past a rate boundary is discarded and redrawn, which the exponential's
//! memorylessness makes distributionally correct) and by Lewis–Shedler
//! thinning for the continuously varying flash-crowd rate.  All draws come
//! from the caller's [`SimRng`], so the stream is a pure function of
//! `(process, window, seed)` — and for the constant-Poisson case the draw
//! sequence (one exponential per arrival) is bit-compatible with the
//! pre-workload `BackgroundTraffic` generator.

use mfc_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One piece of a piecewise-constant rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSegment {
    /// How long the segment lasts.
    pub duration_secs: f64,
    /// Arrival rate during the segment, in events per second.
    pub rate_per_sec: f64,
}

/// One state of a Markov-modulated Poisson process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmppState {
    /// Arrival rate while the process sits in this state.
    pub rate_per_sec: f64,
    /// Mean (exponential) dwell time in this state.
    pub mean_dwell_secs: f64,
}

/// A stochastic arrival process over absolute simulation time.
///
/// Rates are defined on the absolute [`SimTime`] axis (a flash crowd's
/// onset is "120 s into the experiment", not "120 s into this epoch"), so a
/// stream windowed to a later interval fast-forwards deterministically to
/// its start before drawing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Constant-rate Poisson arrivals.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Piecewise-constant rate schedule.
    Piecewise {
        /// The schedule, walked in order from `t = 0`.
        segments: Vec<RateSegment>,
        /// Whether the schedule repeats forever (a diurnal cycle) or the
        /// process goes silent after the last segment.
        cycle: bool,
    },
    /// Markov-modulated Poisson process: exponential dwell in each state,
    /// uniform transition to one of the other states.
    Mmpp {
        /// The states; two states (quiet/burst) give the classic
        /// interrupted Poisson process.
        states: Vec<MmppState>,
    },
    /// An organic flash-crowd event: `base` rate until `onset`, linear ramp
    /// to `peak` over `ramp`, `hold` at the peak, linear decay back to
    /// `base` over `decay`.
    FlashCrowd {
        /// Rate outside the surge.
        base_rate: f64,
        /// Rate at the top of the surge.
        peak_rate: f64,
        /// When the ramp starts, seconds from `t = 0`.
        onset_secs: f64,
        /// Ramp-up duration.
        ramp_secs: f64,
        /// Time spent at the peak.
        hold_secs: f64,
        /// Ramp-down duration.
        decay_secs: f64,
    },
}

impl ArrivalProcess {
    /// A diurnal (sinusoidal) rate cycle: `steps` piecewise-constant
    /// segments approximating `mean · (1 + amplitude · sin)` over one
    /// `period_secs` cycle, repeating forever.
    pub fn diurnal(mean_rate: f64, amplitude: f64, period_secs: f64, steps: usize) -> Self {
        let steps = steps.max(2);
        let amplitude = amplitude.clamp(0.0, 1.0);
        let segments = (0..steps)
            .map(|i| {
                // Rate at the segment's midpoint, so the cycle mean stays
                // `mean_rate` as steps grow.
                let phase = (i as f64 + 0.5) / steps as f64 * std::f64::consts::TAU;
                RateSegment {
                    duration_secs: period_secs / steps as f64,
                    rate_per_sec: (mean_rate * (1.0 + amplitude * phase.sin())).max(0.0),
                }
            })
            .collect();
        ArrivalProcess::Piecewise {
            segments,
            cycle: true,
        }
    }

    /// The process's long-run mean rate in events per second (stationary
    /// mean for MMPP; cycle mean for a cyclic schedule; the base rate for a
    /// flash crowd, whose surge is a transient).
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec.max(0.0),
            ArrivalProcess::Piecewise { segments, .. } => {
                let total: f64 = segments.iter().map(|s| s.duration_secs).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                segments
                    .iter()
                    .map(|s| s.duration_secs * s.rate_per_sec.max(0.0))
                    .sum::<f64>()
                    / total
            }
            ArrivalProcess::Mmpp { states } => {
                let total: f64 = states.iter().map(|s| s.mean_dwell_secs).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                states
                    .iter()
                    .map(|s| s.mean_dwell_secs * s.rate_per_sec.max(0.0))
                    .sum::<f64>()
                    / total
            }
            ArrivalProcess::FlashCrowd { base_rate, .. } => base_rate.max(0.0),
        }
    }

    /// The instantaneous rate at `t_secs`, for the deterministic-rate
    /// processes (an MMPP's instantaneous rate is a random variable; its
    /// stationary mean is returned instead).
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec.max(0.0),
            ArrivalProcess::Piecewise { segments, cycle } => {
                let total: f64 = segments.iter().map(|s| s.duration_secs.max(0.0)).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                let mut offset = if *cycle {
                    t_secs.rem_euclid(total)
                } else if t_secs >= total {
                    return 0.0;
                } else {
                    t_secs
                };
                for segment in segments {
                    if offset < segment.duration_secs {
                        return segment.rate_per_sec.max(0.0);
                    }
                    offset -= segment.duration_secs;
                }
                segments.last().map_or(0.0, |s| s.rate_per_sec.max(0.0))
            }
            ArrivalProcess::Mmpp { .. } => self.mean_rate(),
            ArrivalProcess::FlashCrowd {
                base_rate,
                peak_rate,
                onset_secs,
                ramp_secs,
                hold_secs,
                decay_secs,
            } => {
                let base = base_rate.max(0.0);
                let peak = peak_rate.max(0.0);
                let ramp_end = onset_secs + ramp_secs;
                let hold_end = ramp_end + hold_secs;
                let decay_end = hold_end + decay_secs;
                if t_secs < *onset_secs || t_secs >= decay_end {
                    base
                } else if t_secs < ramp_end {
                    base + (peak - base) * (t_secs - onset_secs) / ramp_secs.max(f64::EPSILON)
                } else if t_secs < hold_end {
                    peak
                } else {
                    peak - (peak - base) * (t_secs - hold_end) / decay_secs.max(f64::EPSILON)
                }
            }
        }
    }

    /// The expected number of arrivals in `[start, end)` — the analytic
    /// value the mean-rate property tests compare generated streams to.
    /// (For MMPP this uses the stationary mean, exact as the window grows
    /// long relative to the dwell times.)
    pub fn expected_count(&self, start: SimTime, end: SimTime) -> f64 {
        let (a, b) = (start.as_secs_f64(), end.as_secs_f64());
        if b <= a {
            return 0.0;
        }
        match self {
            ArrivalProcess::Poisson { .. } | ArrivalProcess::Mmpp { .. } => {
                self.mean_rate() * (b - a)
            }
            // Numeric integration of the deterministic rate functions: the
            // segment/phase boundaries make closed forms fiddly, and at 10k
            // steps the trapezoid error is far below the test tolerances.
            ArrivalProcess::Piecewise { .. } | ArrivalProcess::FlashCrowd { .. } => {
                let steps = 10_000;
                let h = (b - a) / steps as f64;
                let mut total = 0.5 * (self.rate_at(a) + self.rate_at(b));
                for i in 1..steps {
                    total += self.rate_at(a + i as f64 * h);
                }
                total * h
            }
        }
    }

    /// Checks the process parameters for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                if !rate_per_sec.is_finite() || *rate_per_sec < 0.0 {
                    return Err(format!(
                        "poisson rate must be finite and >= 0: {rate_per_sec}"
                    ));
                }
            }
            ArrivalProcess::Piecewise { segments, .. } => {
                if segments.is_empty() {
                    return Err("piecewise schedule needs at least one segment".to_string());
                }
                for s in segments {
                    if s.duration_secs <= 0.0
                        || s.duration_secs.is_nan()
                        || !s.rate_per_sec.is_finite()
                        || s.rate_per_sec < 0.0
                    {
                        return Err(format!("bad rate segment: {s:?}"));
                    }
                }
            }
            ArrivalProcess::Mmpp { states } => {
                if states.is_empty() {
                    return Err("MMPP needs at least one state".to_string());
                }
                for s in states {
                    if s.mean_dwell_secs <= 0.0
                        || s.mean_dwell_secs.is_nan()
                        || !s.rate_per_sec.is_finite()
                        || s.rate_per_sec < 0.0
                    {
                        return Err(format!("bad MMPP state: {s:?}"));
                    }
                }
            }
            ArrivalProcess::FlashCrowd {
                base_rate,
                peak_rate,
                onset_secs,
                ramp_secs,
                hold_secs,
                decay_secs,
            } => {
                for (name, v) in [
                    ("base_rate", base_rate),
                    ("peak_rate", peak_rate),
                    ("onset_secs", onset_secs),
                    ("ramp_secs", ramp_secs),
                    ("hold_secs", hold_secs),
                    ("decay_secs", decay_secs),
                ] {
                    if !v.is_finite() || *v < 0.0 {
                        return Err(format!("flash crowd {name} must be finite and >= 0: {v}"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// An arrival process's live sampling state, positioned at an absolute
/// instant and stepped one arrival at a time.
#[derive(Debug, Clone)]
pub struct ArrivalState {
    process: ArrivalProcess,
    /// The current position on the time axis (the last arrival, or the
    /// window start before the first draw).
    t: SimTime,
    mode: Mode,
}

#[derive(Debug, Clone)]
enum Mode {
    Poisson,
    /// Walking the piecewise schedule: index of the current segment and its
    /// absolute end time.
    Piecewise {
        index: usize,
        segment_end: SimTime,
        /// `false` once a non-cyclic schedule is exhausted.
        live: bool,
    },
    Mmpp {
        state: usize,
        dwell_end: SimTime,
    },
    FlashCrowd {
        /// The thinning majorant: the largest rate the process ever takes.
        rate_max: f64,
    },
}

/// The smallest admissible inter-arrival gap: an exponential draw of
/// exactly zero would stall a generator loop, so gaps are floored at one
/// microsecond (the pre-workload `BackgroundTraffic` used the same guard,
/// which the bit-compatibility pin relies on).
const MIN_GAP: SimDuration = SimDuration::from_micros(1);

impl ArrivalState {
    /// Positions the process at absolute time `start`.  Deterministic-rate
    /// processes fast-forward analytically (no draws); an MMPP draws its
    /// stationary starting state and a residual dwell.
    pub fn new(process: &ArrivalProcess, start: SimTime, rng: &mut SimRng) -> Self {
        let mode = match process {
            ArrivalProcess::Poisson { .. } => Mode::Poisson,
            ArrivalProcess::Piecewise { segments, cycle } => {
                let total: f64 = segments.iter().map(|s| s.duration_secs).sum();
                let start_secs = start.as_secs_f64();
                if total <= 0.0 || (!cycle && start_secs >= total) {
                    Mode::Piecewise {
                        index: 0,
                        segment_end: start,
                        live: false,
                    }
                } else {
                    let mut offset = if *cycle {
                        start_secs.rem_euclid(total)
                    } else {
                        start_secs
                    };
                    let mut index = 0;
                    while offset >= segments[index].duration_secs && index + 1 < segments.len() {
                        offset -= segments[index].duration_secs;
                        index += 1;
                    }
                    let remaining = (segments[index].duration_secs - offset).max(0.0);
                    Mode::Piecewise {
                        index,
                        segment_end: start + SimDuration::from_secs_f64(remaining),
                        live: true,
                    }
                }
            }
            ArrivalProcess::Mmpp { states } => {
                // Stationary start: state probability proportional to its
                // mean dwell; the residual dwell of an exponential is again
                // exponential with the same mean.
                let weights: Vec<(usize, f64)> = states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, s.mean_dwell_secs.max(0.0)))
                    .collect();
                let state = if weights.iter().all(|(_, w)| *w <= 0.0) {
                    0
                } else {
                    *rng.weighted_choice(&weights)
                };
                let dwell = rng.exponential(states[state].mean_dwell_secs);
                Mode::Mmpp {
                    state,
                    dwell_end: start + SimDuration::from_secs_f64(dwell),
                }
            }
            ArrivalProcess::FlashCrowd {
                base_rate,
                peak_rate,
                ..
            } => Mode::FlashCrowd {
                rate_max: base_rate.max(*peak_rate).max(0.0),
            },
        };
        ArrivalState {
            process: process.clone(),
            t: start,
            mode,
        }
    }

    /// Draws the next arrival strictly before `end`, advancing the state.
    /// Returns `None` once the process produces nothing more in the window.
    pub fn next(&mut self, end: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        match &mut self.mode {
            Mode::Poisson => {
                let rate = match &self.process {
                    ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
                    _ => unreachable!("mode/process agree"),
                };
                if rate <= 0.0 {
                    return None;
                }
                // Bit-compatible with the pre-workload generator: one
                // exponential draw per arrival, floored at 1 us.
                let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / rate)).max(MIN_GAP);
                self.t += gap;
                (self.t < end).then_some(self.t)
            }
            Mode::Piecewise {
                index,
                segment_end,
                live,
            } => {
                let ArrivalProcess::Piecewise { segments, cycle } = &self.process else {
                    unreachable!("mode/process agree");
                };
                while *live && self.t < end {
                    let rate = segments[*index].rate_per_sec;
                    if rate > 0.0 {
                        let gap =
                            SimDuration::from_secs_f64(rng.exponential(1.0 / rate)).max(MIN_GAP);
                        let candidate = self.t + gap;
                        if candidate < *segment_end {
                            self.t = candidate;
                            return (self.t < end).then_some(self.t);
                        }
                    }
                    // Silent segment, or the draw overshot the boundary:
                    // jump to the boundary and redraw (exact by
                    // memorylessness).
                    self.t = *segment_end;
                    if *index + 1 < segments.len() {
                        *index += 1;
                    } else if *cycle {
                        *index = 0;
                    } else {
                        *live = false;
                        break;
                    }
                    *segment_end = self.t
                        + SimDuration::from_secs_f64(segments[*index].duration_secs.max(0.0));
                }
                None
            }
            Mode::Mmpp { state, dwell_end } => {
                let ArrivalProcess::Mmpp { states } = &self.process else {
                    unreachable!("mode/process agree");
                };
                while self.t < end {
                    let rate = states[*state].rate_per_sec;
                    if rate > 0.0 {
                        let gap =
                            SimDuration::from_secs_f64(rng.exponential(1.0 / rate)).max(MIN_GAP);
                        let candidate = self.t + gap;
                        if candidate < *dwell_end {
                            self.t = candidate;
                            return (self.t < end).then_some(self.t);
                        }
                    }
                    // Dwell expired (or a silent state): transition.
                    self.t = *dwell_end;
                    if states.len() > 1 {
                        let other = rng.index(states.len() - 1);
                        *state = if other >= *state { other + 1 } else { other };
                    }
                    let dwell = rng.exponential(states[*state].mean_dwell_secs);
                    *dwell_end = self.t + SimDuration::from_secs_f64(dwell).max(MIN_GAP);
                }
                None
            }
            Mode::FlashCrowd { rate_max } => {
                if *rate_max <= 0.0 {
                    return None;
                }
                // Lewis–Shedler thinning against the peak rate.
                let mean_gap = 1.0 / *rate_max;
                while self.t < end {
                    let gap = SimDuration::from_secs_f64(rng.exponential(mean_gap)).max(MIN_GAP);
                    self.t += gap;
                    if self.t >= end {
                        return None;
                    }
                    let rate = self.process.rate_at(self.t.as_secs_f64());
                    if rng.chance(rate / *rate_max) {
                        return Some(self.t);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(process: &ArrivalProcess, start_s: u64, end_s: u64, seed: u64) -> Vec<SimTime> {
        let start = SimTime::ZERO + SimDuration::from_secs(start_s);
        let end = SimTime::ZERO + SimDuration::from_secs(end_s);
        let mut rng = SimRng::seed_from(seed);
        let mut state = ArrivalState::new(process, start, &mut rng);
        let mut out = Vec::new();
        while let Some(t) = state.next(end, &mut rng) {
            assert!(t >= start && t < end, "{t:?} outside window");
            if let Some(last) = out.last() {
                assert!(t >= *last, "arrivals must be monotone");
            }
            out.push(t);
        }
        out
    }

    #[test]
    fn poisson_hits_its_mean_rate() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 8.0 };
        let n = collect(&p, 0, 300, 1).len() as f64;
        let expected = p.expected_count(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(300));
        assert!((n - expected).abs() < 0.15 * expected, "{n} vs {expected}");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        assert!(collect(&ArrivalProcess::Poisson { rate_per_sec: 0.0 }, 0, 100, 1).is_empty());
    }

    #[test]
    fn diurnal_cycle_modulates_the_rate() {
        let p = ArrivalProcess::diurnal(10.0, 0.9, 200.0, 8);
        let arrivals = collect(&p, 0, 200, 2);
        // The first half-cycle (rising sine) must carry far more arrivals
        // than the second (trough).
        let half = SimTime::ZERO + SimDuration::from_secs(100);
        let first = arrivals.iter().filter(|t| **t < half).count();
        let second = arrivals.len() - first;
        assert!(
            first as f64 > 2.0 * second as f64,
            "diurnal peak {first} vs trough {second}"
        );
        // And the cycle mean stays near the configured mean.
        let expected = p.expected_count(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(200));
        assert!((expected - 10.0 * 200.0).abs() < 0.02 * 2000.0);
    }

    #[test]
    fn piecewise_windows_fast_forward_consistently() {
        // Generating [0, 300) and slicing to [100, 200) must follow the
        // same schedule as generating [100, 200) directly — not the same
        // draws, but the same rate profile: compare counts loosely.
        let p = ArrivalProcess::Piecewise {
            segments: vec![
                RateSegment {
                    duration_secs: 100.0,
                    rate_per_sec: 1.0,
                },
                RateSegment {
                    duration_secs: 100.0,
                    rate_per_sec: 20.0,
                },
            ],
            cycle: true,
        };
        let direct = collect(&p, 100, 200, 3).len() as f64;
        assert!((direct - 2000.0).abs() < 0.15 * 2000.0, "{direct}");
    }

    #[test]
    fn non_cyclic_schedule_goes_silent() {
        let p = ArrivalProcess::Piecewise {
            segments: vec![RateSegment {
                duration_secs: 10.0,
                rate_per_sec: 50.0,
            }],
            cycle: false,
        };
        let arrivals = collect(&p, 0, 1000, 4);
        assert!(!arrivals.is_empty());
        assert!(arrivals
            .iter()
            .all(|t| *t < SimTime::ZERO + SimDuration::from_secs(10)));
        // Starting past the end of the schedule yields nothing at all.
        assert!(collect(&p, 20, 1000, 4).is_empty());
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_at_the_same_mean() {
        let mmpp = ArrivalProcess::Mmpp {
            states: vec![
                MmppState {
                    rate_per_sec: 0.5,
                    mean_dwell_secs: 90.0,
                },
                MmppState {
                    rate_per_sec: 50.0,
                    mean_dwell_secs: 10.0,
                },
            ],
        };
        let mean = mmpp.mean_rate();
        let poisson = ArrivalProcess::Poisson { rate_per_sec: mean };
        // Count arrivals in 10-second bins; the MMPP's bin-count variance
        // must far exceed the Poisson's (overdispersion).
        let dispersion = |p: &ArrivalProcess, seed: u64| {
            let arrivals = collect(p, 0, 2000, seed);
            let mut bins = vec![0f64; 200];
            for t in arrivals {
                bins[(t.as_secs_f64() / 10.0) as usize % 200] += 1.0;
            }
            let m = bins.iter().sum::<f64>() / bins.len() as f64;
            let v = bins.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / bins.len() as f64;
            v / m.max(f64::EPSILON)
        };
        let mmpp_d = dispersion(&mmpp, 5);
        let poisson_d = dispersion(&poisson, 5);
        assert!(
            mmpp_d > 3.0 * poisson_d,
            "MMPP dispersion {mmpp_d} vs Poisson {poisson_d}"
        );
    }

    #[test]
    fn flash_crowd_surges_and_recovers() {
        let p = ArrivalProcess::FlashCrowd {
            base_rate: 1.0,
            peak_rate: 40.0,
            onset_secs: 100.0,
            ramp_secs: 20.0,
            hold_secs: 60.0,
            decay_secs: 20.0,
        };
        assert_eq!(p.rate_at(0.0), 1.0);
        assert_eq!(p.rate_at(150.0), 40.0);
        assert_eq!(p.rate_at(500.0), 1.0);
        assert!((p.rate_at(110.0) - 20.5).abs() < 1e-9);
        let arrivals = collect(&p, 0, 300, 6);
        let in_window = |a: u64, b: u64| {
            arrivals
                .iter()
                .filter(|t| {
                    **t >= SimTime::ZERO + SimDuration::from_secs(a)
                        && **t < SimTime::ZERO + SimDuration::from_secs(b)
                })
                .count()
        };
        let before = in_window(0, 100);
        let during = in_window(120, 180);
        let after = in_window(220, 300);
        assert!(
            during > 10 * before.max(1),
            "surge {during} vs quiet {before}"
        );
        assert!(after < during / 5, "decay {after} vs surge {during}");
        let expected = p.expected_count(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(300));
        let n = arrivals.len() as f64;
        assert!((n - expected).abs() < 0.15 * expected, "{n} vs {expected}");
    }

    #[test]
    fn same_seed_same_stream() {
        let p = ArrivalProcess::diurnal(5.0, 0.5, 60.0, 6);
        assert_eq!(collect(&p, 0, 120, 9), collect(&p, 0, 120, 9));
    }

    #[test]
    fn validation_accepts_good_and_rejects_bad() {
        assert!(ArrivalProcess::Poisson { rate_per_sec: 2.0 }
            .validate()
            .is_ok());
        assert!(ArrivalProcess::Poisson { rate_per_sec: -1.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Piecewise {
            segments: vec![],
            cycle: true
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Mmpp { states: vec![] }.validate().is_err());
        assert!(ArrivalProcess::diurnal(3.0, 0.5, 600.0, 12)
            .validate()
            .is_ok());
        assert!(ArrivalProcess::FlashCrowd {
            base_rate: 1.0,
            peak_rate: f64::NAN,
            onset_secs: 0.0,
            ramp_secs: 1.0,
            hold_secs: 1.0,
            decay_secs: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn mean_rates_are_analytic() {
        assert_eq!(
            ArrivalProcess::Poisson { rate_per_sec: 4.0 }.mean_rate(),
            4.0
        );
        let mmpp = ArrivalProcess::Mmpp {
            states: vec![
                MmppState {
                    rate_per_sec: 0.0,
                    mean_dwell_secs: 30.0,
                },
                MmppState {
                    rate_per_sec: 40.0,
                    mean_dwell_secs: 10.0,
                },
            ],
        };
        assert!((mmpp.mean_rate() - 10.0).abs() < 1e-9);
    }
}
