//! The serializable workload description.
//!
//! A [`WorkloadSpec`] is a list of independent traffic sources, each pairing
//! an arrival process with a request model and a client profile.  The spec
//! is plain data — `serde`-serializable, comparable, clonable — so a
//! scenario matrix can carry "diurnal sessions plus a flash crowd of
//! downloads" the same way it carries a server configuration.

use mfc_simcore::SimDuration;
use mfc_simnet::Bandwidth;
use serde::{Deserialize, Serialize};

use crate::arrival::ArrivalProcess;
use crate::session::SessionModel;
use crate::trace::TraceReplay;

/// Mix of request classes, as weights (need not sum to one).
///
/// This is the request model of the original flat-Poisson background
/// generator, kept as the degenerate case: one independent request per
/// arrival, class drawn from these weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixWeights {
    /// Weight of HEAD/base-page requests.
    pub head: f64,
    /// Weight of small static objects (pages, images).
    pub static_small: f64,
    /// Weight of large static objects (downloads).
    pub static_large: f64,
    /// Weight of dynamic queries.
    pub dynamic: f64,
}

impl Default for MixWeights {
    fn default() -> Self {
        // A browsing-dominated mix: mostly pages and images, some queries,
        // occasional downloads.
        MixWeights {
            head: 0.05,
            static_small: 0.65,
            static_large: 0.05,
            dynamic: 0.25,
        }
    }
}

impl MixWeights {
    /// A download-heavy mix (the class of surge that saturates an access
    /// link — what a popular release day or a hotlinked file looks like).
    pub fn downloads() -> Self {
        MixWeights {
            head: 0.02,
            static_small: 0.18,
            static_large: 0.75,
            dynamic: 0.05,
        }
    }

    /// True when every weight is zero or negative (the degenerate mix the
    /// sampler maps to bare HEAD requests).
    pub fn is_degenerate(&self) -> bool {
        self.head <= 0.0
            && self.static_small <= 0.0
            && self.static_large <= 0.0
            && self.dynamic <= 0.0
    }
}

/// The network profile of the synthetic clients a source models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Client downlink bandwidth in bytes per second.
    pub downlink: Bandwidth,
    /// Client round-trip time to the server.
    pub rtt: SimDuration,
}

impl Default for ClientSpec {
    fn default() -> Self {
        // The profile the pre-workload background generator assumed.
        ClientSpec {
            downlink: 2_000_000.0,
            rtt: SimDuration::from_millis(60),
        }
    }
}

/// What each arrival of an open source produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestModel {
    /// One independent request per arrival, class drawn from the mix.
    Mix(MixWeights),
    /// One *session* per arrival: a Markov page walk issuing a correlated
    /// train of requests.
    Sessions(SessionModel),
}

/// How a source produces load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceKind {
    /// An open-loop stochastic source: an arrival process feeding a request
    /// model.
    Open {
        /// When arrivals (requests or sessions) occur.
        arrivals: ArrivalProcess,
        /// What each arrival produces.
        requests: RequestModel,
    },
    /// Replay of a parsed access log.
    Trace(TraceReplay),
}

/// One traffic source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Human-readable label (also keeps multi-source specs auditable in
    /// serialized form).
    pub label: String,
    /// Client network profile for the requests this source emits.
    pub client: ClientSpec,
    /// The load generator.
    pub kind: SourceKind,
}

/// A complete workload: zero or more sources merged into one time-ordered
/// request stream by [`crate::WorkloadStream`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The sources; order is part of the spec (it fixes the stream's
    /// tie-breaking and RNG forking).
    pub sources: Vec<SourceSpec>,
}

impl WorkloadSpec {
    /// A workload with no traffic at all.
    pub fn empty() -> Self {
        WorkloadSpec::default()
    }

    /// The degenerate spec equivalent to the original flat-Poisson
    /// background generator.
    pub fn poisson_mix(rate_per_sec: f64, mix: MixWeights, client: ClientSpec) -> Self {
        WorkloadSpec::empty().with_source(SourceSpec {
            label: "poisson".to_string(),
            client,
            kind: SourceKind::Open {
                arrivals: ArrivalProcess::Poisson { rate_per_sec },
                requests: RequestModel::Mix(mix),
            },
        })
    }

    /// A session-structured workload: sessions arrive by `arrivals`, each
    /// walking `model`'s page graph.
    pub fn sessions(arrivals: ArrivalProcess, model: SessionModel, client: ClientSpec) -> Self {
        WorkloadSpec::empty().with_source(SourceSpec {
            label: "sessions".to_string(),
            client,
            kind: SourceKind::Open {
                arrivals,
                requests: RequestModel::Sessions(model),
            },
        })
    }

    /// A trace-replay workload.
    pub fn replay(trace: TraceReplay, client: ClientSpec) -> Self {
        WorkloadSpec::empty().with_source(SourceSpec {
            label: "trace".to_string(),
            client,
            kind: SourceKind::Trace(trace),
        })
    }

    /// Appends a source.
    pub fn with_source(mut self, source: SourceSpec) -> Self {
        self.sources.push(source);
        self
    }

    /// True when the workload has no sources (no traffic will be
    /// generated; the backend then skips the stream entirely).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The long-run mean *request* rate across every source, in requests
    /// per second: sessions count every page view and embedded object.
    pub fn mean_request_rate(&self) -> f64 {
        self.sources
            .iter()
            .map(|source| match &source.kind {
                SourceKind::Open { arrivals, requests } => match requests {
                    RequestModel::Mix(_) => arrivals.mean_rate(),
                    RequestModel::Sessions(model) => {
                        arrivals.mean_rate() * model.mean_requests_per_session()
                    }
                },
                SourceKind::Trace(trace) => trace.mean_rate(),
            })
            .sum()
    }

    /// Validates every source.
    pub fn validate(&self) -> Result<(), String> {
        for (index, source) in self.sources.iter().enumerate() {
            let check = match &source.kind {
                SourceKind::Open { arrivals, requests } => {
                    arrivals.validate().and(match requests {
                        RequestModel::Mix(_) => Ok(()),
                        RequestModel::Sessions(model) => model.validate(),
                    })
                }
                SourceKind::Trace(trace) => trace.validate(),
            };
            check.map_err(|e| format!("source {index} ({}): {e}", source.label))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_matches_the_browsing_profile() {
        let mix = MixWeights::default();
        assert_eq!(mix.head, 0.05);
        assert_eq!(mix.static_small, 0.65);
        assert!(!mix.is_degenerate());
        assert!(MixWeights {
            head: 0.0,
            static_small: 0.0,
            static_large: 0.0,
            dynamic: 0.0
        }
        .is_degenerate());
    }

    #[test]
    fn constructors_build_valid_specs() {
        let spec = WorkloadSpec::poisson_mix(3.0, MixWeights::default(), ClientSpec::default());
        assert_eq!(spec.sources.len(), 1);
        assert!(spec.validate().is_ok());
        assert!((spec.mean_request_rate() - 3.0).abs() < 1e-12);

        let sessions = WorkloadSpec::sessions(
            ArrivalProcess::diurnal(0.5, 0.6, 600.0, 12),
            SessionModel::browsing(),
            ClientSpec::default(),
        );
        assert!(sessions.validate().is_ok());
        // Each session issues several requests, so the request rate exceeds
        // the session rate.
        assert!(sessions.mean_request_rate() > 0.5);

        assert!(WorkloadSpec::empty().is_empty());
        assert_eq!(WorkloadSpec::empty().mean_request_rate(), 0.0);
    }

    #[test]
    fn validation_flags_the_offending_source() {
        let spec = WorkloadSpec::empty()
            .with_source(SourceSpec {
                label: "good".to_string(),
                client: ClientSpec::default(),
                kind: SourceKind::Open {
                    arrivals: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
                    requests: RequestModel::Mix(MixWeights::default()),
                },
            })
            .with_source(SourceSpec {
                label: "bad".to_string(),
                client: ClientSpec::default(),
                kind: SourceKind::Open {
                    arrivals: ArrivalProcess::Poisson { rate_per_sec: -2.0 },
                    requests: RequestModel::Mix(MixWeights::default()),
                },
            });
        let err = spec.validate().unwrap_err();
        assert!(err.contains("source 1 (bad)"), "{err}");
    }

    #[test]
    fn specs_serialize_round_trip() {
        let spec = WorkloadSpec::sessions(
            ArrivalProcess::Mmpp {
                states: vec![
                    crate::MmppState {
                        rate_per_sec: 0.2,
                        mean_dwell_secs: 60.0,
                    },
                    crate::MmppState {
                        rate_per_sec: 10.0,
                        mean_dwell_secs: 5.0,
                    },
                ],
            },
            SessionModel::browsing(),
            ClientSpec::default(),
        );
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
