//! Heavy-tailed scalar distributions with analytic quantiles.
//!
//! Web workload characterization consistently finds heavy tails: object
//! sizes, think times and session lengths are log-normal or Pareto rather
//! than exponential (Aghili et al., arXiv:2409.12299).  The workload spec
//! names its distributions explicitly so that a generated population can be
//! *checked* against the spec — [`TailDistribution::quantile`] gives the
//! exact inverse CDF the property tests compare empirical samples to.

use mfc_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// A named heavy-tailed (or degenerate) distribution over positive reals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TailDistribution {
    /// Every draw returns exactly this value.
    Constant {
        /// The value.
        value: f64,
    },
    /// Log-normal parameterised by its *median* (`exp(mu)`) and the standard
    /// deviation `sigma` of the underlying normal — the parameterisation
    /// operators think in ("typical think time 8 s, a long tail").
    LogNormal {
        /// Median of the distribution (`exp(mu)`).
        median: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Pareto with scale `x_min` and shape `alpha` (smaller `alpha` =
    /// heavier tail; `alpha <= 1` has infinite mean).
    Pareto {
        /// Scale (minimum value).
        x_min: f64,
        /// Shape.
        alpha: f64,
    },
}

impl TailDistribution {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            TailDistribution::Constant { value } => value,
            TailDistribution::LogNormal { median, sigma } => {
                rng.log_normal(median.max(f64::MIN_POSITIVE).ln(), sigma.max(0.0))
            }
            TailDistribution::Pareto { x_min, alpha } => rng.pareto(x_min, alpha),
        }
    }

    /// The exact `q`-quantile (inverse CDF), for `q` in `(0, 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mfc_workload::TailDistribution;
    ///
    /// let d = TailDistribution::Pareto { x_min: 100.0, alpha: 1.2 };
    /// // The median of a Pareto is x_min * 2^(1/alpha).
    /// assert!((d.quantile(0.5) - 100.0 * 2f64.powf(1.0 / 1.2)).abs() < 1e-9);
    /// ```
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(f64::EPSILON, 1.0 - f64::EPSILON);
        match *self {
            TailDistribution::Constant { value } => value,
            TailDistribution::LogNormal { median, sigma } => {
                median * (sigma.max(0.0) * normal_quantile(q)).exp()
            }
            TailDistribution::Pareto { x_min, alpha } => x_min / (1.0 - q).powf(1.0 / alpha),
        }
    }

    /// Basic sanity checks (used by [`crate::WorkloadSpec::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            TailDistribution::Constant { value } if value < 0.0 => {
                Err(format!("constant distribution is negative: {value}"))
            }
            TailDistribution::LogNormal { median, sigma } if median <= 0.0 || sigma < 0.0 => Err(
                format!("log-normal needs median > 0 and sigma >= 0: {median}, {sigma}"),
            ),
            TailDistribution::Pareto { x_min, alpha } if x_min <= 0.0 || alpha <= 0.0 => Err(
                format!("pareto needs x_min > 0 and alpha > 0: {x_min}, {alpha}"),
            ),
            _ => Ok(()),
        }
    }
}

/// The standard normal quantile function (Acklam's rational approximation,
/// relative error below 1.15e-9 — far tighter than any tolerance the
/// property tests use).
fn normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_matches_known_points() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn lognormal_median_is_the_median() {
        let d = TailDistribution::LogNormal {
            median: 8.0,
            sigma: 1.1,
        };
        assert!((d.quantile(0.5) - 8.0).abs() < 1e-9);
        // Heavy upper tail: p99 far above the median.
        assert!(d.quantile(0.99) > 8.0 * 5.0);
    }

    #[test]
    fn pareto_quantiles_are_exact() {
        let d = TailDistribution::Pareto {
            x_min: 50.0,
            alpha: 1.5,
        };
        for q in [0.1, 0.5, 0.9, 0.99] {
            let x = d.quantile(q);
            // CDF(x) = 1 - (x_min/x)^alpha must equal q.
            let cdf = 1.0 - (50.0 / x).powf(1.5);
            assert!((cdf - q).abs() < 1e-9, "q={q} x={x} cdf={cdf}");
        }
    }

    #[test]
    fn sampling_respects_supports() {
        let mut rng = SimRng::seed_from(7);
        let pareto = TailDistribution::Pareto {
            x_min: 10.0,
            alpha: 1.2,
        };
        for _ in 0..1000 {
            assert!(pareto.sample(&mut rng) >= 10.0);
        }
        let constant = TailDistribution::Constant { value: 3.5 };
        assert_eq!(constant.sample(&mut rng), 3.5);
    }

    #[test]
    fn validation_catches_nonsense() {
        assert!(TailDistribution::Constant { value: -1.0 }
            .validate()
            .is_err());
        assert!(TailDistribution::LogNormal {
            median: 0.0,
            sigma: 1.0
        }
        .validate()
        .is_err());
        assert!(TailDistribution::Pareto {
            x_min: 1.0,
            alpha: 0.0
        }
        .validate()
        .is_err());
        assert!(TailDistribution::LogNormal {
            median: 2.0,
            sigma: 0.5
        }
        .validate()
        .is_ok());
    }
}
