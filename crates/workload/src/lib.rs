//! Deterministic streaming workload generation for the MFC reproduction.
//!
//! Every cooperating-site experiment in the paper runs against a server that
//! is simultaneously serving its regular users, and the paper explicitly
//! recommends running MFCs under *diverse* background conditions: Univ-3's
//! Base-stage stopping size visibly shifted with background load, and the
//! QTP production system served millions of non-MFC requests during the test
//! window (§4).  Real web traffic is nothing like the flat Poisson process
//! the early model used: it is session-structured, heavy-tailed and diurnal
//! (Aghili et al., arXiv:2409.12299), and organic flash-crowd surges mimic
//! exactly the degradation an MFC probes for (de Paula et al.,
//! arXiv:1410.2834).
//!
//! This crate provides that realism behind one serializable
//! [`WorkloadSpec`]:
//!
//! * **arrival processes** ([`ArrivalProcess`]) — constant Poisson,
//!   piecewise/diurnal rate schedules, Markov-modulated Poisson burstiness
//!   and organic flash-crowd ramp events;
//! * **session models** ([`SessionModel`]) — Markov page graphs with
//!   think times and embedded-object fetches, so load arrives as correlated
//!   request *trains* instead of independent requests;
//! * **trace replay** ([`TraceReplay`]) — Common-Log-Format lines become a
//!   replayable request schedule;
//! * **a lazily evaluated merged stream** ([`WorkloadStream`]) — a heap of
//!   per-source next-arrivals, O(log S) per emitted request with S the
//!   number of sources plus *currently active* sessions, so million-session
//!   populations stream through a simulation without ever materializing the
//!   request list up front.
//!
//! The crate deliberately knows nothing about the web-server model: concrete
//! requests are produced by a caller-supplied [`RequestSampler`], which maps
//! each abstract [`RequestIntent`] (plus the shared per-source RNG, so the
//! draw order is part of the contract) onto whatever request type the
//! simulation consumes.  `mfc-webserver` provides the sampler over its
//! `ContentCatalog`; this crate provides the arithmetic.
//!
//! Everything is driven by [`mfc_simcore::SimRng`]: the same spec, window
//! and seed produce bit-identical streams on any platform and any
//! `MFC_THREADS` setting (the stream never reads environment or wall-clock
//! state).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod session;
pub mod spec;
pub mod stream;
pub mod tail;
pub mod trace;

pub use arrival::{ArrivalProcess, MmppState, RateSegment};
pub use session::{PageSpec, SessionModel, SESSION_REQUEST_CAP};
pub use spec::{ClientSpec, MixWeights, RequestModel, SourceKind, SourceSpec, WorkloadSpec};
pub use stream::{
    KindSampler, RequestContext, RequestIntent, RequestKind, RequestSampler, WorkloadStream,
};
pub use tail::TailDistribution;
pub use trace::{TraceEntry, TraceReplay};
