//! The lazily evaluated merged request stream.
//!
//! [`WorkloadStream`] turns a [`WorkloadSpec`] into a single time-ordered
//! sequence of concrete requests without ever materializing it: a binary
//! heap holds one pending instant per *source* plus one per *currently
//! active session*, so producing the next request costs O(log S) with S
//! the number of sources plus in-flight sessions — a million-session
//! population streams through a simulation in bounded memory.
//!
//! The stream is generic over a [`RequestSampler`], which turns each
//! abstract [`RequestIntent`] into the caller's request type using the
//! per-source RNG *at the emission point*.  That contract (the sampler's
//! draws interleave with the arrival draws on one stream) is what lets the
//! webserver's `BackgroundTraffic` adapter reproduce the pre-workload
//! generator bit for bit.
//!
//! Determinism: the heap is ordered by `(time, insertion sequence)`, every
//! source owns a forked RNG, and every session owns an RNG seeded from its
//! source's stream at session start — the output is a pure function of
//! `(spec, window, id_base, seed)` and never observes thread count,
//! environment or iteration batching.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mfc_simcore::{SimDuration, SimRng, SimTime};
use mfc_simnet::Bandwidth;
use serde::{Deserialize, Serialize};

use crate::session::SessionState;
use crate::spec::{MixWeights, RequestModel, SourceKind, WorkloadSpec};
use crate::trace::TraceEntry;

/// Abstract request classes a workload can ask for; the sampler maps them
/// onto the target's actual content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// A view of the site's base page.
    BasePage,
    /// A small static object (page, image).
    StaticSmall,
    /// A large static object (download).
    StaticLarge,
    /// A dynamic query.
    Dynamic,
}

/// What the stream wants the sampler to produce.
#[derive(Debug, Clone, Copy)]
pub enum RequestIntent<'a> {
    /// Draw the request class from the mix (and then a concrete object of
    /// that class) — the degenerate per-arrival model.
    Mix(&'a MixWeights),
    /// A request of this specific class (session page views and embedded
    /// objects).
    Kind(RequestKind),
    /// Replay this trace entry verbatim.
    Trace(&'a TraceEntry),
}

/// Everything the sampler needs to build one concrete request.
#[derive(Debug, Clone, Copy)]
pub struct RequestContext<'a> {
    /// Arrival time of the request at the target.
    pub time: SimTime,
    /// The stream-assigned request id (`id_base` plus emission index).
    pub id: u64,
    /// A stable synthetic user: one id per mix arrival or trace entry, one
    /// per *session* for session sources (so a session's requests share a
    /// client address).
    pub user: u64,
    /// What to produce.
    pub intent: RequestIntent<'a>,
    /// The source's client downlink, bytes per second.
    pub downlink: Bandwidth,
    /// The source's client RTT.
    pub rtt: SimDuration,
}

/// Maps abstract request intents onto concrete requests.
///
/// The sampler receives the stream's per-source RNG and may draw from it;
/// its draws are part of the deterministic stream.  Samplers must not
/// consult any other source of randomness.
pub trait RequestSampler {
    /// The concrete request type produced.
    type Request;

    /// Builds the request for one emission.
    fn sample(&mut self, ctx: RequestContext<'_>, rng: &mut SimRng) -> Self::Request;
}

/// A sampler for tests and rate studies: emits `(time, kind)` tuples,
/// resolving mixes by weight like the real catalog sampler (one
/// `weighted_choice` draw, no object-index draw).
pub struct KindSampler;

impl RequestSampler for KindSampler {
    type Request = (SimTime, RequestKind);

    fn sample(&mut self, ctx: RequestContext<'_>, rng: &mut SimRng) -> Self::Request {
        let kind = match ctx.intent {
            RequestIntent::Kind(kind) => kind,
            RequestIntent::Mix(mix) => {
                if mix.is_degenerate() {
                    RequestKind::BasePage
                } else {
                    *rng.weighted_choice(&[
                        (RequestKind::BasePage, mix.head),
                        (RequestKind::StaticSmall, mix.static_small),
                        (RequestKind::StaticLarge, mix.static_large),
                        (RequestKind::Dynamic, mix.dynamic),
                    ])
                }
            }
            RequestIntent::Trace(entry) => {
                if entry.head {
                    RequestKind::BasePage
                } else if entry.dynamic {
                    RequestKind::Dynamic
                } else {
                    RequestKind::StaticSmall
                }
            }
        };
        (ctx.time, kind)
    }
}

/// Who owns a pending heap instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Actor {
    /// A source's next arrival (or next trace entry).
    Source(u32),
    /// An active session's next step (index into the session slab).
    Session(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    time: SimTime,
    /// Insertion sequence: the deterministic tie-breaker for equal times.
    seq: u64,
    actor: Actor,
}

/// Live state of one source.
struct SourceRuntime {
    rng: SimRng,
    arrivals: Option<crate::arrival::ArrivalState>,
    /// Next entry to replay, for trace sources.
    trace_index: usize,
}

/// The merged, lazily evaluated request stream.  See the module docs.
pub struct WorkloadStream<'a, S: RequestSampler> {
    spec: &'a WorkloadSpec,
    sampler: S,
    end: SimTime,
    heap: BinaryHeap<Reverse<Pending>>,
    sources: Vec<SourceRuntime>,
    /// Slab of active sessions; freed slots are reused so the slab size
    /// tracks peak concurrency, not total session count.
    sessions: Vec<Option<SessionState>>,
    free_sessions: Vec<u32>,
    id_base: u64,
    next_id: u64,
    next_user: u64,
    next_seq: u64,
    /// Peak number of simultaneously active sessions (observability for
    /// the scaling tests: memory is O(peak), not O(total)).
    peak_active_sessions: usize,
}

impl<'a, S: RequestSampler> WorkloadStream<'a, S> {
    /// Opens the stream over `[start, end)` with per-source RNGs forked
    /// from `master` (by source index), request ids starting at `id_base`.
    pub fn new(
        spec: &'a WorkloadSpec,
        start: SimTime,
        end: SimTime,
        id_base: u64,
        master: &SimRng,
        sampler: S,
    ) -> Self {
        let rngs = (0..spec.sources.len())
            .map(|index| master.fork_indexed("workload-source", index as u64))
            .collect();
        WorkloadStream::with_source_rngs(spec, start, end, id_base, rngs, sampler)
    }

    /// Opens the stream with explicit per-source RNGs (one per source, in
    /// order).  The `BackgroundTraffic` adapter uses this to drive its
    /// single source from the caller's RNG, preserving the pre-workload
    /// draw sequence bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the RNG count does not match the source count.
    pub fn with_source_rngs(
        spec: &'a WorkloadSpec,
        start: SimTime,
        end: SimTime,
        id_base: u64,
        rngs: Vec<SimRng>,
        sampler: S,
    ) -> Self {
        assert_eq!(
            rngs.len(),
            spec.sources.len(),
            "one RNG per workload source"
        );
        let mut stream = WorkloadStream {
            spec,
            sampler,
            end,
            heap: BinaryHeap::new(),
            sources: Vec::with_capacity(spec.sources.len()),
            sessions: Vec::new(),
            free_sessions: Vec::new(),
            id_base,
            next_id: id_base,
            next_user: 0,
            next_seq: 0,
            peak_active_sessions: 0,
        };
        for (index, (source, mut rng)) in spec.sources.iter().zip(rngs).enumerate() {
            let mut runtime = match &source.kind {
                SourceKind::Open { arrivals, .. } => {
                    let state = crate::arrival::ArrivalState::new(arrivals, start, &mut rng);
                    SourceRuntime {
                        rng,
                        arrivals: Some(state),
                        trace_index: 0,
                    }
                }
                SourceKind::Trace(trace) => {
                    let first = trace
                        .entries
                        .partition_point(|e| trace.anchor + e.offset < start);
                    SourceRuntime {
                        rng,
                        arrivals: None,
                        trace_index: first,
                    }
                }
            };
            let first_time = match &source.kind {
                SourceKind::Open { .. } => runtime
                    .arrivals
                    .as_mut()
                    .expect("open source has arrival state")
                    .next(end, &mut runtime.rng),
                SourceKind::Trace(trace) => trace
                    .entries
                    .get(runtime.trace_index)
                    .map(|e| trace.anchor + e.offset)
                    .filter(|t| *t < end),
            };
            stream.sources.push(runtime);
            if let Some(time) = first_time {
                stream.push(time, Actor::Source(index as u32));
            }
        }
        stream
    }

    /// Hands the per-source RNGs back (advanced by every draw the stream
    /// made), in source order.  Consumes the stream.
    pub fn into_source_rngs(self) -> Vec<SimRng> {
        self.sources.into_iter().map(|s| s.rng).collect()
    }

    /// Requests emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_id - self.id_base
    }

    /// Sessions started so far.
    pub fn sessions_started(&self) -> u64 {
        self.next_user
    }

    /// The largest number of simultaneously active sessions observed — the
    /// quantity the stream's memory footprint scales with.
    pub fn peak_active_sessions(&self) -> usize {
        self.peak_active_sessions
    }

    fn push(&mut self, time: SimTime, actor: Actor) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Pending { time, seq, actor }));
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn store_session(&mut self, state: SessionState) -> u32 {
        let slot = match self.free_sessions.pop() {
            Some(slot) => {
                self.sessions[slot as usize] = Some(state);
                slot
            }
            None => {
                self.sessions.push(Some(state));
                (self.sessions.len() - 1) as u32
            }
        };
        let active = self.sessions.len() - self.free_sessions.len();
        self.peak_active_sessions = self.peak_active_sessions.max(active);
        slot
    }

    /// Emits the request for a source arrival and schedules the follow-ups.
    fn emit_source(&mut self, index: u32, time: SimTime) -> S::Request {
        let source_spec = &self.spec.sources[index as usize];
        match &source_spec.kind {
            SourceKind::Open { requests, .. } => match requests {
                RequestModel::Mix(mix) => {
                    let id = self.alloc_id();
                    let runtime = &mut self.sources[index as usize];
                    let request = self.sampler.sample(
                        RequestContext {
                            time,
                            id,
                            user: id,
                            intent: RequestIntent::Mix(mix),
                            downlink: source_spec.client.downlink,
                            rtt: source_spec.client.rtt,
                        },
                        &mut runtime.rng,
                    );
                    let next = runtime
                        .arrivals
                        .as_mut()
                        .expect("open source has arrival state")
                        .next(self.end, &mut runtime.rng);
                    if let Some(t) = next {
                        self.push(t, Actor::Source(index));
                    }
                    request
                }
                RequestModel::Sessions(model) => {
                    // Schedule the source's next session arrival first, so
                    // the source RNG only ever produces arrival draws and
                    // session seeds, in arrival order.
                    let runtime = &mut self.sources[index as usize];
                    let next_arrival = runtime
                        .arrivals
                        .as_mut()
                        .expect("open source has arrival state")
                        .next(self.end, &mut runtime.rng);
                    let session_seed = runtime.rng.next_u64();
                    if let Some(t) = next_arrival {
                        self.push(t, Actor::Source(index));
                    }
                    let user = self.next_user;
                    self.next_user += 1;
                    let mut session =
                        SessionState::start(model, user, index, SimRng::seed_from(session_seed));
                    let (kind, next_step) = session.step(model, time);
                    let id = self.alloc_id();
                    let request = self.sampler.sample(
                        RequestContext {
                            time,
                            id,
                            user,
                            intent: RequestIntent::Kind(kind),
                            downlink: source_spec.client.downlink,
                            rtt: source_spec.client.rtt,
                        },
                        &mut session.rng,
                    );
                    if let Some(t) = next_step.filter(|t| *t < self.end) {
                        let slot = self.store_session(session);
                        self.push(t, Actor::Session(slot));
                    }
                    request
                }
            },
            SourceKind::Trace(trace) => {
                let runtime = &mut self.sources[index as usize];
                let entry = &trace.entries[runtime.trace_index];
                runtime.trace_index += 1;
                let id = self.alloc_id();
                let request = self.sampler.sample(
                    RequestContext {
                        time,
                        id,
                        user: id,
                        intent: RequestIntent::Trace(entry),
                        downlink: source_spec.client.downlink,
                        rtt: source_spec.client.rtt,
                    },
                    &mut self.sources[index as usize].rng,
                );
                let runtime = &self.sources[index as usize];
                if let Some(next) = trace.entries.get(runtime.trace_index) {
                    let t = trace.anchor + next.offset;
                    if t < self.end {
                        self.push(t, Actor::Source(index));
                    }
                }
                request
            }
        }
    }

    /// Advances an active session: emits its due request, reschedules or
    /// retires it.
    fn emit_session(&mut self, slot: u32, time: SimTime) -> S::Request {
        let mut session = self.sessions[slot as usize]
            .take()
            .expect("scheduled session is live");
        let source_spec = &self.spec.sources[session.source as usize];
        let SourceKind::Open {
            requests: RequestModel::Sessions(model),
            ..
        } = &source_spec.kind
        else {
            unreachable!("sessions only spawn from session sources");
        };
        let (kind, next_step) = session.step(model, time);
        let id = self.alloc_id();
        let request = self.sampler.sample(
            RequestContext {
                time,
                id,
                user: session.user,
                intent: RequestIntent::Kind(kind),
                downlink: source_spec.client.downlink,
                rtt: source_spec.client.rtt,
            },
            &mut session.rng,
        );
        match next_step.filter(|t| *t < self.end) {
            Some(t) => {
                self.sessions[slot as usize] = Some(session);
                self.push(t, Actor::Session(slot));
            }
            None => self.free_sessions.push(slot),
        }
        request
    }
}

impl<'a, S: RequestSampler> Iterator for WorkloadStream<'a, S> {
    type Item = S::Request;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse(pending) = self.heap.pop()?;
        debug_assert!(pending.time < self.end, "stream scheduled past its window");
        Some(match pending.actor {
            Actor::Source(index) => self.emit_source(index, pending.time),
            Actor::Session(slot) => self.emit_session(slot, pending.time),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::session::SessionModel;
    use crate::spec::{ClientSpec, SourceSpec};

    fn window(secs: u64) -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(secs))
    }

    fn collect(spec: &WorkloadSpec, secs: u64, seed: u64) -> Vec<(SimTime, RequestKind)> {
        let (start, end) = window(secs);
        let master = SimRng::seed_from(seed);
        WorkloadStream::new(spec, start, end, 0, &master, KindSampler).collect()
    }

    #[test]
    fn merged_stream_is_time_ordered_and_windowed() {
        let spec = WorkloadSpec::poisson_mix(4.0, MixWeights::default(), ClientSpec::default())
            .with_source(SourceSpec {
                label: "surge".to_string(),
                client: ClientSpec::default(),
                kind: SourceKind::Open {
                    arrivals: ArrivalProcess::FlashCrowd {
                        base_rate: 0.0,
                        peak_rate: 30.0,
                        onset_secs: 20.0,
                        ramp_secs: 5.0,
                        hold_secs: 20.0,
                        decay_secs: 5.0,
                    },
                    requests: RequestModel::Mix(MixWeights::downloads()),
                },
            });
        let (start, end) = window(60);
        let requests = collect(&spec, 60, 1);
        assert!(!requests.is_empty());
        for pair in requests.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "stream must be time-ordered");
        }
        assert!(requests.iter().all(|(t, _)| *t >= start && *t < end));
        // The surge is visible: more arrivals in [20, 50) than [0, 20).
        let mid = |a: u64, b: u64| {
            requests
                .iter()
                .filter(|(t, _)| {
                    *t >= SimTime::ZERO + SimDuration::from_secs(a)
                        && *t < SimTime::ZERO + SimDuration::from_secs(b)
                })
                .count()
        };
        assert!(mid(20, 50) > mid(0, 20));
    }

    #[test]
    fn ids_are_sequential_in_emission_order() {
        let spec = WorkloadSpec::poisson_mix(5.0, MixWeights::default(), ClientSpec::default());
        struct IdSampler;
        impl RequestSampler for IdSampler {
            type Request = u64;
            fn sample(&mut self, ctx: RequestContext<'_>, _rng: &mut SimRng) -> u64 {
                ctx.id
            }
        }
        let (start, end) = window(30);
        let master = SimRng::seed_from(2);
        let mut stream = WorkloadStream::new(&spec, start, end, 700, &master, IdSampler);
        let ids: Vec<u64> = stream.by_ref().collect();
        assert!(!ids.is_empty());
        for (offset, id) in ids.iter().enumerate() {
            assert_eq!(*id, 700 + offset as u64);
        }
        // `emitted` is a count, not an id: the base is subtracted.
        assert_eq!(stream.emitted() as usize, ids.len());
    }

    #[test]
    fn sessions_emit_correlated_trains() {
        let spec = WorkloadSpec::sessions(
            ArrivalProcess::Poisson { rate_per_sec: 0.5 },
            SessionModel::browsing(),
            ClientSpec::default(),
        );
        struct UserSampler;
        impl RequestSampler for UserSampler {
            type Request = (u64, RequestKind);
            fn sample(&mut self, ctx: RequestContext<'_>, _rng: &mut SimRng) -> Self::Request {
                let RequestIntent::Kind(kind) = ctx.intent else {
                    panic!("session sources emit kinds");
                };
                (ctx.user, kind)
            }
        }
        let (start, end) = window(600);
        let master = SimRng::seed_from(3);
        let mut stream = WorkloadStream::new(&spec, start, end, 0, &master, UserSampler);
        let requests: Vec<(u64, RequestKind)> = stream.by_ref().collect();
        let sessions = stream.sessions_started();
        assert!(sessions > 100, "expected ~300 sessions, got {sessions}");
        // Correlated trains: far more requests than sessions.
        assert!(
            requests.len() as u64 > 2 * sessions,
            "{} requests from {sessions} sessions",
            requests.len()
        );
        // The slab stayed bounded by concurrency, not total sessions.
        assert!(
            stream.peak_active_sessions() < sessions as usize / 2,
            "peak {} vs {} sessions",
            stream.peak_active_sessions(),
            sessions
        );
        // Multiple requests share each user id.
        let mut users: Vec<u64> = requests.iter().map(|(u, _)| *u).collect();
        users.sort_unstable();
        users.dedup();
        assert_eq!(users.len() as u64, sessions);
    }

    #[test]
    fn session_request_rate_tracks_the_analytic_mean() {
        let model = SessionModel::browsing();
        let per_session = model.mean_requests_per_session();
        let spec = WorkloadSpec::sessions(
            ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            model,
            ClientSpec::default(),
        );
        let requests = collect(&spec, 2_000, 4);
        // Sessions that straddle the window end are truncated, so allow a
        // generous tolerance around rate × per_session × window.
        let expected = 1.0 * per_session * 2_000.0;
        let n = requests.len() as f64;
        assert!(
            (n - expected).abs() < 0.2 * expected,
            "{n} requests vs expected {expected}"
        );
    }

    #[test]
    fn trace_sources_replay_their_entries() {
        let log = r#"
a - - [10/Oct/2000:00:00:00 +0000] "GET /a.html HTTP/1.0" 200 100
a - - [10/Oct/2000:00:00:05 +0000] "HEAD / HTTP/1.0" 200 -
a - - [10/Oct/2000:00:00:30 +0000] "GET /q?x=1 HTTP/1.0" 200 55
a - - [10/Oct/2000:00:10:00 +0000] "GET /late.html HTTP/1.0" 200 1
"#;
        let trace = crate::trace::TraceReplay::parse(log).unwrap();
        let spec = WorkloadSpec::replay(trace, ClientSpec::default());
        // The window cuts off the last entry.
        let requests = collect(&spec, 60, 5);
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].0, SimTime::ZERO);
        assert_eq!(requests[1].0, SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(requests[1].1, RequestKind::BasePage);
        assert_eq!(requests[2].1, RequestKind::Dynamic);
    }

    #[test]
    fn windowed_trace_skips_earlier_entries() {
        let log = r#"
a - - [10/Oct/2000:00:00:00 +0000] "GET /a.html HTTP/1.0" 200 100
a - - [10/Oct/2000:00:01:40 +0000] "GET /b.html HTTP/1.0" 200 100
"#;
        let trace = crate::trace::TraceReplay::parse(log).unwrap();
        let spec = WorkloadSpec::replay(trace, ClientSpec::default());
        let start = SimTime::ZERO + SimDuration::from_secs(50);
        let end = SimTime::ZERO + SimDuration::from_secs(200);
        let master = SimRng::seed_from(6);
        let requests: Vec<(SimTime, RequestKind)> =
            WorkloadStream::new(&spec, start, end, 0, &master, KindSampler).collect();
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].0, SimTime::ZERO + SimDuration::from_secs(100));
    }

    #[test]
    fn same_seed_same_stream_and_rngs_round_trip() {
        let spec = WorkloadSpec::sessions(
            ArrivalProcess::diurnal(1.0, 0.7, 120.0, 8),
            SessionModel::browsing(),
            ClientSpec::default(),
        );
        let a = collect(&spec, 300, 9);
        let b = collect(&spec, 300, 9);
        assert_eq!(a, b);
        // into_source_rngs hands back one RNG per source.
        let (start, end) = window(10);
        let master = SimRng::seed_from(9);
        let mut stream = WorkloadStream::new(&spec, start, end, 0, &master, KindSampler);
        while stream.next().is_some() {}
        assert_eq!(stream.into_source_rngs().len(), 1);
    }

    #[test]
    fn empty_spec_streams_nothing() {
        let spec = WorkloadSpec::empty();
        assert!(collect(&spec, 100, 1).is_empty());
    }
}
