//! Session models: Markov page graphs with think times and embedded
//! objects.
//!
//! Real users do not issue independent requests — they arrive, fetch a
//! page plus its embedded objects, think, follow a link, and eventually
//! leave (Aghili et al., arXiv:2409.12299, find the session structure is
//! what shapes server load: bursts of correlated requests separated by
//! heavy-tailed think times).  [`SessionModel`] captures that as a Markov
//! chain over abstract page classes; the concrete URL for each page view is
//! chosen downstream by the [`crate::RequestSampler`] against the site's
//! actual catalog.

use mfc_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::stream::RequestKind;
use crate::tail::TailDistribution;

/// Hard cap on requests a single session may issue, so a miswritten
/// transition matrix (exit weight zero) cannot generate an unbounded
/// request train.
pub const SESSION_REQUEST_CAP: u32 = 256;

/// One page class in the session graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageSpec {
    /// The request class a view of this page issues.
    pub kind: RequestKind,
    /// Minimum number of embedded objects fetched right after the page.
    pub embedded_min: u32,
    /// Maximum number of embedded objects (inclusive).
    pub embedded_max: u32,
    /// The request class of the embedded objects (images, typically).
    pub embedded_kind: RequestKind,
    /// Upper bound of the uniform gap between successive embedded-object
    /// fetches (browser pipelining jitter).
    pub embedded_gap: SimDuration,
}

impl PageSpec {
    /// A page with no embedded objects.
    pub fn bare(kind: RequestKind) -> Self {
        PageSpec {
            kind,
            embedded_min: 0,
            embedded_max: 0,
            embedded_kind: RequestKind::StaticSmall,
            embedded_gap: SimDuration::ZERO,
        }
    }
}

/// A Markov page graph: entry distribution, per-page transition weights,
/// exit weights, and a heavy-tailed think-time distribution between page
/// views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionModel {
    /// The page classes (states of the chain).
    pub pages: Vec<PageSpec>,
    /// Entry weights: where a session starts (need not be normalized).
    pub entry_weights: Vec<f64>,
    /// `transitions[i][j]` is the weight of moving from page `i` to page
    /// `j` after the think time; rows need not be normalized.
    pub transitions: Vec<Vec<f64>>,
    /// `exit_weights[i]` competes with `transitions[i]`: the weight of the
    /// session ending after page `i`.
    pub exit_weights: Vec<f64>,
    /// Think time between the completion of a page (and its embedded
    /// objects) and the next page view.
    pub think_time: TailDistribution,
}

impl SessionModel {
    /// A browsing-dominated default session: home page with a couple of
    /// embedded images, article pages, a search action and an occasional
    /// download, with a log-normal think time whose heavy tail matches
    /// measured browsing behaviour.  Mean session length ≈ 4 page views
    /// (≈ 9 requests including embedded objects).
    pub fn browsing() -> Self {
        let home = PageSpec {
            kind: RequestKind::BasePage,
            embedded_min: 1,
            embedded_max: 3,
            embedded_kind: RequestKind::StaticSmall,
            embedded_gap: SimDuration::from_millis(120),
        };
        let article = PageSpec {
            kind: RequestKind::StaticSmall,
            embedded_min: 0,
            embedded_max: 2,
            embedded_kind: RequestKind::StaticSmall,
            embedded_gap: SimDuration::from_millis(120),
        };
        let search = PageSpec::bare(RequestKind::Dynamic);
        let download = PageSpec::bare(RequestKind::StaticLarge);
        SessionModel {
            pages: vec![home, article, search, download],
            entry_weights: vec![0.7, 0.2, 0.1, 0.0],
            transitions: vec![
                // home -> mostly articles or a search
                vec![0.05, 0.45, 0.20, 0.05],
                // article -> more articles, back home, occasional download
                vec![0.10, 0.40, 0.10, 0.08],
                // search -> an article (the result) or another search
                vec![0.05, 0.55, 0.20, 0.02],
                // download -> usually the end of the visit
                vec![0.05, 0.10, 0.05, 0.00],
            ],
            exit_weights: vec![0.25, 0.32, 0.18, 0.80],
            think_time: TailDistribution::LogNormal {
                median: 6.0,
                sigma: 1.2,
            },
        }
    }

    /// Expected number of requests (page views plus embedded objects) per
    /// session, from the chain's fundamental matrix — used to translate a
    /// target *request* rate into a session arrival rate.  Computed by
    /// power iteration on the absorbing chain (exact as iterations grow;
    /// truncated at the [`SESSION_REQUEST_CAP`] the generator enforces).
    pub fn mean_requests_per_session(&self) -> f64 {
        let n = self.pages.len();
        if n == 0 {
            return 0.0;
        }
        let per_view: Vec<f64> = self
            .pages
            .iter()
            .map(|p| 1.0 + f64::from(p.embedded_min + p.embedded_max) / 2.0)
            .collect();
        // Normalized entry distribution.
        let entry_total: f64 = self.entry_weights.iter().map(|w| w.max(0.0)).sum();
        if entry_total <= 0.0 {
            return 0.0;
        }
        let mut occupancy: Vec<f64> = self
            .entry_weights
            .iter()
            .map(|w| w.max(0.0) / entry_total)
            .collect();
        // Row-normalized continue probabilities.
        let mut expected = 0.0;
        for _ in 0..SESSION_REQUEST_CAP {
            let mass: f64 = occupancy.iter().sum();
            if mass < 1e-12 {
                break;
            }
            for (i, occ) in occupancy.iter().enumerate() {
                expected += occ * per_view[i];
            }
            let mut next = vec![0.0; n];
            for (i, occ) in occupancy.iter().enumerate() {
                if *occ <= 0.0 {
                    continue;
                }
                let row_total: f64 = self.transitions[i].iter().map(|w| w.max(0.0)).sum::<f64>()
                    + self.exit_weights[i].max(0.0);
                if row_total <= 0.0 {
                    continue; // certain exit
                }
                for (j, w) in self.transitions[i].iter().enumerate() {
                    next[j] += occ * w.max(0.0) / row_total;
                }
            }
            occupancy = next;
        }
        expected
    }

    /// Checks shape and weight consistency.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.pages.len();
        if n == 0 {
            return Err("session model needs at least one page".to_string());
        }
        if self.entry_weights.len() != n
            || self.transitions.len() != n
            || self.exit_weights.len() != n
        {
            return Err(format!(
                "session model shape mismatch: {n} pages, {} entry weights, {} transition rows, \
                 {} exit weights",
                self.entry_weights.len(),
                self.transitions.len(),
                self.exit_weights.len()
            ));
        }
        if self.transitions.iter().any(|row| row.len() != n) {
            return Err("every transition row must cover every page".to_string());
        }
        let non_negative = |w: &f64| *w >= 0.0 && w.is_finite();
        if !self.entry_weights.iter().all(non_negative)
            || !self.exit_weights.iter().all(non_negative)
            || !self.transitions.iter().flatten().all(non_negative)
        {
            return Err("session weights must be finite and non-negative".to_string());
        }
        if self.entry_weights.iter().sum::<f64>() <= 0.0 {
            return Err("entry weights must not all be zero".to_string());
        }
        for (i, page) in self.pages.iter().enumerate() {
            if page.embedded_min > page.embedded_max {
                return Err(format!("page {i}: embedded_min > embedded_max"));
            }
        }
        self.think_time.validate()
    }
}

/// The live state of one in-flight session inside a
/// [`crate::WorkloadStream`].
#[derive(Debug, Clone)]
pub(crate) struct SessionState {
    /// The session's private RNG: seeded once at session start, so its draw
    /// pattern is independent of how concurrent sessions interleave.
    pub rng: SimRng,
    /// Stable session identifier (used for the synthetic client address).
    pub user: u64,
    /// Index of the source that spawned the session.
    pub source: u32,
    /// Current page (state of the chain).
    pub page: u32,
    /// Embedded objects still to fetch for the current page.
    pub embedded_left: u32,
    /// Requests issued so far (capped at [`SESSION_REQUEST_CAP`]).
    pub issued: u32,
}

impl SessionState {
    /// Starts a session: picks the entry page.  The first page view fires
    /// at the session's arrival instant.
    pub fn start(model: &SessionModel, user: u64, source: u32, mut rng: SimRng) -> Self {
        let weights: Vec<(u32, f64)> = model
            .entry_weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i as u32, w.max(0.0)))
            .collect();
        let page = *rng.weighted_choice(&weights);
        SessionState {
            rng,
            user,
            source,
            page,
            embedded_left: 0,
            issued: 0,
        }
    }

    /// Produces the request kind due now and schedules the following one:
    /// `Some(next_time)` while the session lives, `None` when it exits
    /// after this request.
    pub fn step(&mut self, model: &SessionModel, now: SimTime) -> (RequestKind, Option<SimTime>) {
        let page = &model.pages[self.page as usize];
        let kind = if self.embedded_left > 0 {
            self.embedded_left -= 1;
            page.embedded_kind
        } else {
            // A fresh page view: draw how many embedded objects follow.
            self.embedded_left = if page.embedded_max > page.embedded_min {
                self.rng
                    .uniform_u64(u64::from(page.embedded_min), u64::from(page.embedded_max))
                    as u32
            } else {
                page.embedded_min
            };
            page.kind
        };
        self.issued += 1;
        if self.issued >= SESSION_REQUEST_CAP {
            return (kind, None);
        }
        let next = if self.embedded_left > 0 {
            // Embedded objects follow the page almost immediately.
            let gap_micros = page.embedded_gap.as_micros();
            let gap = if gap_micros == 0 {
                SimDuration::from_micros(1)
            } else {
                SimDuration::from_micros(self.rng.uniform_u64(1, gap_micros))
            };
            Some(now + gap)
        } else {
            // Think, then follow a link or leave.
            let row = &model.transitions[self.page as usize];
            let exit = model.exit_weights[self.page as usize].max(0.0);
            let total: f64 = row.iter().map(|w| w.max(0.0)).sum::<f64>() + exit;
            if total <= 0.0 {
                return (kind, None);
            }
            let mut choices: Vec<(Option<u32>, f64)> = row
                .iter()
                .enumerate()
                .map(|(j, w)| (Some(j as u32), w.max(0.0)))
                .collect();
            choices.push((None, exit));
            match *self.rng.weighted_choice(&choices) {
                Some(next_page) => {
                    self.page = next_page;
                    let think = self.rng.sample_tail(&model.think_time);
                    Some(now + SimDuration::from_secs_f64(think).max(SimDuration::from_micros(1)))
                }
                None => None,
            }
        };
        (kind, next)
    }
}

/// Draw helper so [`SessionState`] can sample a [`TailDistribution`]
/// through its own RNG handle.
trait SampleTail {
    fn sample_tail(&mut self, d: &TailDistribution) -> f64;
}

impl SampleTail for SimRng {
    fn sample_tail(&mut self, d: &TailDistribution) -> f64 {
        d.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browsing_model_validates() {
        let model = SessionModel::browsing();
        assert!(model.validate().is_ok());
        let mean = model.mean_requests_per_session();
        assert!(
            (2.0..30.0).contains(&mean),
            "mean requests per session out of range: {mean}"
        );
    }

    #[test]
    fn sessions_terminate_and_respect_the_cap() {
        let model = SessionModel::browsing();
        let mut rng = SimRng::seed_from(11);
        for user in 0..200 {
            let mut session =
                SessionState::start(&model, user, 0, SimRng::seed_from(rng.next_u64()));
            let mut now = SimTime::ZERO;
            let mut requests = 0u32;
            loop {
                let (_, next) = session.step(&model, now);
                requests += 1;
                assert!(requests <= SESSION_REQUEST_CAP);
                match next {
                    Some(t) => {
                        assert!(t > now, "time must advance");
                        now = t;
                    }
                    None => break,
                }
            }
            assert!(requests >= 1);
        }
    }

    #[test]
    fn empirical_session_length_matches_the_analytic_mean() {
        let model = SessionModel::browsing();
        let analytic = model.mean_requests_per_session();
        let mut rng = SimRng::seed_from(23);
        let mut total = 0u64;
        let sessions = 4_000;
        for user in 0..sessions {
            let mut session =
                SessionState::start(&model, user, 0, SimRng::seed_from(rng.next_u64()));
            let mut now = SimTime::ZERO;
            loop {
                let (_, next) = session.step(&model, now);
                total += 1;
                match next {
                    Some(t) => now = t,
                    None => break,
                }
            }
        }
        let empirical = total as f64 / sessions as f64;
        assert!(
            (empirical - analytic).abs() < 0.1 * analytic,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn validation_catches_shape_mismatches() {
        let mut model = SessionModel::browsing();
        model.entry_weights.pop();
        assert!(model.validate().is_err());
        let mut model = SessionModel::browsing();
        model.transitions[0].push(1.0);
        assert!(model.validate().is_err());
        let mut model = SessionModel::browsing();
        model.entry_weights = vec![0.0; 4];
        assert!(model.validate().is_err());
        let mut model = SessionModel::browsing();
        model.pages[1].embedded_min = 9;
        model.pages[1].embedded_max = 2;
        assert!(model.validate().is_err());
    }
}
