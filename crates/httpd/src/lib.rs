//! A small threaded HTTP/1.1 server used as a *live* MFC target.
//!
//! The paper's §3.1 validation experiments run against "a simple server
//! (with no real content and background traffic) running a lightweight HTTP
//! server", instrumented to track request arrival times and to apply
//! synthetic response-time models.  `mfc-httpd` is that server, rebuilt in
//! Rust on `std::net`:
//!
//! * it serves a configurable synthetic site — a base page whose HTML links
//!   to the other objects (so the live MFC profiler can crawl it), large
//!   binary objects of arbitrary size, and query endpoints that burn a
//!   configurable amount of per-request work;
//! * it can inject an artificial delay that grows with the number of
//!   requests currently in flight ([`DelayModel`]), which is how the
//!   synthetic linear/exponential curves of Figure 4 are produced on a real
//!   socket;
//! * it records an arrival log (wall-clock timestamp per request) so
//!   synchronization spread can be measured exactly as the cooperating
//!   operators' server logs allowed in §4;
//! * it bounds concurrency with a worker-thread pool and a bounded accept
//!   queue, so worker-exhaustion effects (the Univ-2 artifact) can be
//!   reproduced live as well.
//!
//! This crate is *not* used by the simulation path; it exists so the MFC
//! library can also be exercised end-to-end over real TCP connections (see
//! the `live_localhost` example and the live integration tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod delay;
pub mod server;

pub use content::{SiteContent, SiteObject};
pub use delay::DelayModel;
pub use server::{HttpServer, ServerHandle, ServerOptions, ServerStats};
