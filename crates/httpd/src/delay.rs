//! Artificial delay injection for the live validation server.
//!
//! The §3.1 experiments instrument the lab server with "synthetic response
//! time models [that define] the average increase in response time … per
//! incoming request as a function of the number of simultaneous requests at
//! the server".  [`DelayModel`] is that function for the live server: the
//! handler thread evaluates it against the current in-flight request count
//! and sleeps for the result before answering.

use std::time::Duration;

/// A response-delay function of the number of simultaneous requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DelayModel {
    /// No artificial delay (resource effects only).
    #[default]
    None,
    /// A fixed delay regardless of load.
    Constant {
        /// Added delay per request.
        delay: Duration,
    },
    /// Delay grows linearly: `per_request × n`.
    Linear {
        /// Added delay per concurrent request.
        per_request: Duration,
    },
    /// Delay grows exponentially: `base × (growth^n − 1)`.
    Exponential {
        /// Scale of the exponential term.
        base: Duration,
        /// Per-request growth factor.
        growth: f64,
    },
}

impl DelayModel {
    /// Evaluates the model for `concurrent` simultaneous requests.
    pub fn delay_for(&self, concurrent: usize) -> Duration {
        match *self {
            DelayModel::None => Duration::ZERO,
            DelayModel::Constant { delay } => delay,
            DelayModel::Linear { per_request } => per_request
                .checked_mul(concurrent as u32)
                .unwrap_or(Duration::from_secs(30)),
            DelayModel::Exponential { base, growth } => {
                let factor = growth.powi(concurrent as i32) - 1.0;
                if !factor.is_finite() || factor <= 0.0 {
                    Duration::ZERO
                } else {
                    base.mul_f64(factor.min(1.0e4))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_and_constant() {
        assert_eq!(DelayModel::None.delay_for(100), Duration::ZERO);
        let c = DelayModel::Constant {
            delay: Duration::from_millis(7),
        };
        assert_eq!(c.delay_for(0), Duration::from_millis(7));
        assert_eq!(c.delay_for(50), Duration::from_millis(7));
    }

    #[test]
    fn linear_scales_with_concurrency() {
        let m = DelayModel::Linear {
            per_request: Duration::from_millis(5),
        };
        assert_eq!(m.delay_for(1), Duration::from_millis(5));
        assert_eq!(m.delay_for(10), Duration::from_millis(50));
        assert!(m.delay_for(2) < m.delay_for(3));
    }

    #[test]
    fn exponential_grows_and_stays_finite() {
        let m = DelayModel::Exponential {
            base: Duration::from_millis(1),
            growth: 1.2,
        };
        assert_eq!(m.delay_for(0), Duration::ZERO);
        assert!(m.delay_for(10) < m.delay_for(30));
        // Even absurd concurrency stays bounded rather than overflowing.
        assert!(m.delay_for(10_000) <= Duration::from_secs(10 * 60));
    }

    #[test]
    fn default_is_none() {
        assert_eq!(DelayModel::default(), DelayModel::None);
    }
}
