//! Synthetic content served by the live validation server.
//!
//! The live MFC profiler discovers content by fetching the base page and
//! following the links it finds, so [`SiteContent::base_page_html`] emits a
//! small HTML document whose anchors point at every other object — the same
//! role `ContentCatalog` plays for the simulated servers.

use std::collections::BTreeMap;

/// One URL the live server responds to.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteObject {
    /// Path (optionally including a query string) as it appears in URLs.
    pub path: String,
    /// Size of the generated response body in bytes.
    pub size_bytes: usize,
    /// Extra service time the handler sleeps per request, in microseconds,
    /// to emulate back-end work (database scans, template rendering).
    pub work_us: u64,
    /// MIME type reported in `Content-Type`.
    pub content_type: &'static str,
}

impl SiteObject {
    /// A static binary object of the given size with no extra work.
    pub fn binary(path: impl Into<String>, size_bytes: usize) -> Self {
        SiteObject {
            path: path.into(),
            size_bytes,
            work_us: 0,
            content_type: "application/octet-stream",
        }
    }

    /// A query endpoint returning a small body after `work_us` of simulated
    /// back-end work.
    pub fn query(path: impl Into<String>, size_bytes: usize, work_us: u64) -> Self {
        SiteObject {
            path: path.into(),
            size_bytes,
            work_us,
            content_type: "text/plain",
        }
    }
}

/// The complete set of objects the live server serves.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteContent {
    objects: BTreeMap<String, SiteObject>,
}

impl SiteContent {
    /// Creates a site from a list of objects (paths must be unique; later
    /// duplicates replace earlier ones).
    pub fn new(objects: Vec<SiteObject>) -> Self {
        let mut map = BTreeMap::new();
        for o in objects {
            map.insert(o.path.clone(), o);
        }
        SiteContent { objects: map }
    }

    /// The default validation site: one large 100 KB object and 64 distinct
    /// small query endpoints, mirroring the §3 lab content.
    pub fn validation_site() -> Self {
        let mut objects = vec![SiteObject::binary("/objects/large_100k.bin", 100 * 1024)];
        objects.push(SiteObject::binary("/objects/large_1m.bin", 1024 * 1024));
        for i in 0..64 {
            objects.push(SiteObject::query(
                format!("/cgi/stats?item={i}"),
                256,
                2_000,
            ));
        }
        SiteContent::new(objects)
    }

    /// Looks up an object by its full path-and-query string.
    pub fn lookup(&self, path_and_query: &str) -> Option<&SiteObject> {
        self.objects.get(path_and_query)
    }

    /// All objects, in path order.
    pub fn objects(&self) -> impl Iterator<Item = &SiteObject> {
        self.objects.values()
    }

    /// Number of objects (excluding the implicit base page).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects besides the base page exist.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Renders the base page: an HTML document that links to every object so
    /// a crawler can discover the full site.
    pub fn base_page_html(&self) -> String {
        let mut html = String::from(
            "<!DOCTYPE html>\n<html><head><title>mfc-httpd validation site</title></head><body>\n\
             <h1>mfc-httpd validation site</h1>\n<ul>\n",
        );
        for object in self.objects.values() {
            html.push_str(&format!(
                "<li><a href=\"{}\">{}</a> ({} bytes)</li>\n",
                object.path, object.path, object.size_bytes
            ));
        }
        html.push_str("</ul>\n</body></html>\n");
        html
    }

    /// Generates the body bytes for an object (a repeating pattern of the
    /// requested size — content is irrelevant to the MFC, only its size).
    pub fn body_for(object: &SiteObject) -> Vec<u8> {
        let pattern = b"mfc-payload-";
        let mut body = Vec::with_capacity(object.size_bytes);
        while body.len() < object.size_bytes {
            let take = pattern.len().min(object.size_bytes - body.len());
            body.extend_from_slice(&pattern[..take]);
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_site_has_large_and_query_objects() {
        let site = SiteContent::validation_site();
        assert!(site.lookup("/objects/large_100k.bin").is_some());
        assert!(site.lookup("/cgi/stats?item=0").is_some());
        assert!(site.lookup("/missing").is_none());
        assert!(site.len() > 60);
        assert!(!site.is_empty());
    }

    #[test]
    fn base_page_links_every_object() {
        let site = SiteContent::validation_site();
        let html = site.base_page_html();
        for object in site.objects() {
            assert!(
                html.contains(&format!("href=\"{}\"", object.path)),
                "base page must link {}",
                object.path
            );
        }
    }

    #[test]
    fn body_has_exact_size() {
        for size in [0usize, 1, 11, 12, 13, 100 * 1024] {
            let object = SiteObject::binary("/x", size);
            assert_eq!(SiteContent::body_for(&object).len(), size);
        }
    }

    #[test]
    fn duplicate_paths_are_deduplicated() {
        let site = SiteContent::new(vec![
            SiteObject::binary("/a", 10),
            SiteObject::binary("/a", 20),
        ]);
        assert_eq!(site.len(), 1);
        assert_eq!(site.lookup("/a").unwrap().size_bytes, 20);
    }
}
