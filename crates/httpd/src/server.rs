//! The threaded HTTP server.
//!
//! Architecture: one acceptor thread plus a fixed pool of worker threads fed
//! through a bounded channel.  The bounded channel doubles as the listen
//! queue — when it is full the acceptor answers `503 Service Unavailable`
//! immediately, which is how worker exhaustion becomes *visible* to a live
//! MFC instead of silently queueing forever.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Mutex;

use mfc_http::{Method, Request, Response, StatusCode};

use crate::content::SiteContent;
use crate::delay::DelayModel;

/// Configuration of the live server.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Number of worker threads serving requests.
    pub workers: usize,
    /// Capacity of the pending-connection queue (the "listen queue").
    pub queue_depth: usize,
    /// Artificial delay model applied per request.
    pub delay: DelayModel,
    /// Socket read/write timeout for each connection.
    pub io_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 16,
            queue_depth: 128,
            delay: DelayModel::None,
            io_timeout: Duration::from_secs(15),
        }
    }
}

/// Counters and the arrival log collected while the server runs.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Total requests parsed successfully.
    pub requests: AtomicUsize,
    /// Requests answered 404.
    pub not_found: AtomicUsize,
    /// Connections refused with 503 because the queue was full.
    pub refused: AtomicUsize,
    /// Largest number of requests in flight at once.
    pub peak_in_flight: AtomicUsize,
    /// Arrival timestamps (relative to server start) and targets.
    pub arrival_log: Mutex<Vec<(Duration, String)>>,
}

/// A running server; dropping the handle shuts it down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// The live HTTP server.
#[derive(Debug, Clone)]
pub struct HttpServer {
    content: Arc<SiteContent>,
    options: ServerOptions,
}

impl HttpServer {
    /// Creates a server that will serve `content` with the given options.
    pub fn new(content: SiteContent, options: ServerOptions) -> Self {
        HttpServer {
            content: Arc::new(content),
            options,
        }
    }

    /// Binds to `127.0.0.1` on an ephemeral port and starts serving.
    pub fn start(&self) -> std::io::Result<ServerHandle> {
        self.start_on("127.0.0.1:0")
    }

    /// Binds to the given address and starts serving.
    pub fn start_on(&self, bind: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let started = Instant::now();

        // `std::sync::mpsc` receivers are single-consumer; sharing one
        // behind a mutex turns the bounded channel into the same MPMC work
        // queue the crossbeam version provided.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(self.options.queue_depth);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(self.options.workers);
        for _ in 0..self.options.workers.max(1) {
            let rx = Arc::clone(&rx);
            let content = Arc::clone(&self.content);
            let stats = Arc::clone(&stats);
            let in_flight = Arc::clone(&in_flight);
            let options = self.options.clone();
            workers.push(thread::spawn(move || loop {
                // Hold the lock only for the dequeue, never while serving.
                let next = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                let Ok(stream) = next else { break };
                let _ = handle_connection(stream, &content, &options, &stats, &in_flight, started);
            }));
        }

        let acceptor_shutdown = Arc::clone(&shutdown);
        let acceptor_stats = Arc::clone(&stats);
        let io_timeout = self.options.io_timeout;
        let acceptor = thread::spawn(move || {
            for stream in listener.incoming() {
                if acceptor_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = stream.set_read_timeout(Some(io_timeout));
                let _ = stream.set_write_timeout(Some(io_timeout));
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        acceptor_stats.refused.fetch_add(1, Ordering::SeqCst);
                        let resp = Response::new(
                            StatusCode::SERVICE_UNAVAILABLE,
                            b"server overloaded\n".to_vec(),
                        );
                        let _ = stream.write_all(&resp.to_bytes(false));
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        });

        Ok(ServerHandle {
            addr,
            stats,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL of the server (`http://127.0.0.1:PORT`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Live statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Returns a copy of the arrival log (relative timestamp, target path).
    pub fn arrival_log(&self) -> Vec<(Duration, String)> {
        self.stats
            .arrival_log
            .lock()
            .expect("arrival log lock")
            .clone()
    }

    /// Requests the server to stop and joins its threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the acceptor so it notices the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Dropping the last sender (owned by the acceptor thread) closes the
        // channel; workers then drain and exit.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_inner();
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    content: &SiteContent,
    options: &ServerOptions,
    stats: &ServerStats,
    in_flight: &AtomicUsize,
    started: Instant,
) -> std::io::Result<()> {
    let peer_stream = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let Ok(request) = Request::read_from(&mut reader) else {
        // Either a malformed request or the shutdown poke; just drop it.
        return Ok(());
    };

    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
    stats.peak_in_flight.fetch_max(now, Ordering::SeqCst);
    stats.requests.fetch_add(1, Ordering::SeqCst);
    stats
        .arrival_log
        .lock()
        .expect("arrival log lock")
        .push((started.elapsed(), request.target.clone()));

    let result = respond(peer_stream, &request, content, options, stats, now);

    in_flight.fetch_sub(1, Ordering::SeqCst);
    // A client that timed out and closed its socket produces a broken pipe
    // here; that is expected under MFC load and not a server error.
    let _ = result;
    Ok(())
}

fn respond(
    mut stream: TcpStream,
    request: &Request,
    content: &SiteContent,
    options: &ServerOptions,
    stats: &ServerStats,
    concurrent: usize,
) -> std::io::Result<()> {
    // Artificial load-dependent delay (validation experiments).
    let delay = options.delay.delay_for(concurrent);
    if !delay.is_zero() {
        thread::sleep(delay);
    }

    let head_only = request.method == Method::Head;
    let response = if request.target == "/" || request.target == "/index.html" {
        Response::new(StatusCode::OK, content.base_page_html().into_bytes())
            .with_header("content-type", "text/html")
    } else {
        match content.lookup(&request.target) {
            Some(object) => {
                if object.work_us > 0 {
                    // Simulated back-end work (database scan, rendering).
                    thread::sleep(Duration::from_micros(object.work_us));
                }
                Response::new(StatusCode::OK, SiteContent::body_for(object))
                    .with_header("content-type", object.content_type)
            }
            None => {
                stats.not_found.fetch_add(1, Ordering::SeqCst);
                Response::new(StatusCode::NOT_FOUND, b"not found\n".to_vec())
            }
        }
    };
    stream.write_all(&response.to_bytes(head_only))?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_http::{Client, Url};

    fn start_default() -> ServerHandle {
        HttpServer::new(SiteContent::validation_site(), ServerOptions::default())
            .start()
            .expect("server starts")
    }

    #[test]
    fn serves_base_page_and_objects() {
        let server = start_default();
        let client = Client::default();
        let base = Url::parse(&format!("{}/", server.base_url())).unwrap();
        let response = client.get(&base).unwrap();
        assert_eq!(response.status, StatusCode::OK);
        assert!(String::from_utf8_lossy(&response.body).contains("large_100k.bin"));

        let object = Url::parse(&format!("{}/objects/large_100k.bin", server.base_url())).unwrap();
        let response = client.get(&object).unwrap();
        assert_eq!(response.body.len(), 100 * 1024);
        server.shutdown();
    }

    #[test]
    fn head_requests_return_headers_only() {
        let server = start_default();
        let client = Client::default();
        let url = Url::parse(&format!("{}/objects/large_100k.bin", server.base_url())).unwrap();
        let response = client.head(&url).unwrap();
        assert_eq!(response.content_length(), Some(100 * 1024));
        assert!(response.body.is_empty());
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404() {
        let server = start_default();
        let client = Client::default();
        let url = Url::parse(&format!("{}/no/such/thing", server.base_url())).unwrap();
        let response = client.get(&url).unwrap();
        assert_eq!(response.status, StatusCode::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn arrival_log_records_requests() {
        let server = start_default();
        let client = Client::default();
        for i in 0..5 {
            let url = Url::parse(&format!("{}/cgi/stats?item={i}", server.base_url())).unwrap();
            let _ = client.get(&url).unwrap();
        }
        let log = server.arrival_log();
        assert_eq!(log.len(), 5);
        assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(server.stats().requests.load(Ordering::SeqCst), 5);
        server.shutdown();
    }

    #[test]
    fn linear_delay_model_slows_responses() {
        let fast = HttpServer::new(SiteContent::validation_site(), ServerOptions::default())
            .start()
            .unwrap();
        let slow = HttpServer::new(
            SiteContent::validation_site(),
            ServerOptions {
                delay: DelayModel::Constant {
                    delay: Duration::from_millis(80),
                },
                ..ServerOptions::default()
            },
        )
        .start()
        .unwrap();
        let client = Client::default();
        let fast_url = Url::parse(&format!("{}/cgi/stats?item=1", fast.base_url())).unwrap();
        let slow_url = Url::parse(&format!("{}/cgi/stats?item=1", slow.base_url())).unwrap();
        let fast_time = client.fetch_timed(Method::Get, &fast_url).elapsed;
        let slow_time = client.fetch_timed(Method::Get, &slow_url).elapsed;
        assert!(
            slow_time > fast_time + Duration::from_millis(40),
            "delayed server must be visibly slower: {fast_time:?} vs {slow_time:?}"
        );
        fast.shutdown();
        slow.shutdown();
    }

    #[test]
    fn concurrent_requests_all_succeed() {
        let server = start_default();
        let base = server.base_url();
        let mut handles = Vec::new();
        for i in 0..16 {
            let base = base.clone();
            handles.push(thread::spawn(move || {
                let client = Client::default();
                let url = Url::parse(&format!("{base}/cgi/stats?item={i}")).unwrap();
                client.fetch_timed(Method::Get, &url)
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|r| r.is_success()));
        assert!(server.stats().peak_in_flight.load(Ordering::SeqCst) >= 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let server = start_default();
        drop(server);
    }
}
