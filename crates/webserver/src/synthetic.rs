//! Synthetic response-time models for the §3.1 validation experiments.
//!
//! Before exercising real resources, the paper validates that the MFC
//! machinery can *track* a server's response-time curve at all: the authors
//! instrument a lightweight HTTP server with "synthetic response time
//! models" in which the average increase in response time per request is an
//! explicit function of the number of simultaneous requests, and check that
//! the median normalized response time measured by the clients follows the
//! model (Figure 4 shows the linear and exponential cases).
//!
//! [`SyntheticServer`] is that instrumented server: it applies no resource
//! model at all, just `response = base + f(pending_requests)`.

use mfc_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::request::{RequestOutcome, RequestStatus, ServerRequest};

/// The shape of the synthetic response-time function `f(n)`, where `n` is
/// the number of simultaneous requests being served.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResponseModel {
    /// `f(n) = slope × n` milliseconds.
    Linear {
        /// Added milliseconds per concurrent request.
        slope_ms: f64,
    },
    /// `f(n) = scale × (growth^n − 1)` milliseconds.
    Exponential {
        /// Multiplier applied to the exponential term.
        scale_ms: f64,
        /// Per-request growth factor (> 1).
        growth: f64,
    },
    /// `f(n) = 0` for `n < knee`, `jump_ms` afterwards — a buffer-exhaustion
    /// style cliff.
    Step {
        /// Crowd size at which the response time jumps.
        knee: usize,
        /// Added milliseconds beyond the knee.
        jump_ms: f64,
    },
    /// `f(n) = 0`: an ideally provisioned (unconstrained) server.
    Flat,
}

impl ResponseModel {
    /// Evaluates the model for `n` simultaneous requests, returning the
    /// added response time.
    pub fn added_delay(&self, n: usize) -> SimDuration {
        let ms = match *self {
            ResponseModel::Linear { slope_ms } => slope_ms * n as f64,
            ResponseModel::Exponential { scale_ms, growth } => {
                scale_ms * (growth.powi(n as i32) - 1.0)
            }
            ResponseModel::Step { knee, jump_ms } => {
                if n >= knee {
                    jump_ms
                } else {
                    0.0
                }
            }
            ResponseModel::Flat => 0.0,
        };
        SimDuration::from_millis_f64(ms.max(0.0))
    }
}

/// A validation server that answers requests according to a
/// [`ResponseModel`] instead of a resource pipeline.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{SimDuration, SimTime};
/// use mfc_webserver::{RequestClass, ResponseModel, ServerRequest, SyntheticServer};
///
/// let server = SyntheticServer::new(SimDuration::from_millis(20),
///                                   ResponseModel::Linear { slope_ms: 5.0 });
/// let reqs: Vec<ServerRequest> = (0..10).map(|i| ServerRequest {
///     id: i,
///     arrival: SimTime::ZERO,
///     class: RequestClass::Head,
///     path: "/".into(),
///     client_downlink: 1e7,
///     client_rtt: SimDuration::from_millis(10),
///     client_addr: i as u32,
///     background: false,
/// }).collect();
/// let outcomes = server.run(reqs);
/// // Ten simultaneous requests: every response is delayed by 10 * 5 ms on
/// // top of the 20 ms base service time.
/// assert!(outcomes.iter().all(|o| o.latency() >= SimDuration::from_millis(70)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticServer {
    /// Service time of a request arriving at an idle server.
    pub base_service: SimDuration,
    /// The response-time model applied on top of the base service time.
    pub model: ResponseModel,
}

impl SyntheticServer {
    /// Creates a synthetic server.
    pub fn new(base_service: SimDuration, model: ResponseModel) -> Self {
        SyntheticServer {
            base_service,
            model,
        }
    }

    /// Serves a batch of requests.
    ///
    /// The number of "simultaneous" requests seen by a given request is the
    /// number of requests whose service overlaps its own: requests arriving
    /// within one base service time of it (a synchronized MFC crowd all
    /// lands inside that window) plus any earlier request whose computed
    /// service still extends past its arrival.  This matches how the
    /// paper's instrumented server tracks its pending-request queue — every
    /// member of a tightly synchronized crowd of `N` observes `≈ N`
    /// simultaneous requests, which is why Figure 4's "Ideal" curve is
    /// `f(crowd size)`.  Outcomes are returned in submission order.
    pub fn run(&self, requests: Vec<ServerRequest>) -> Vec<RequestOutcome> {
        // Process arrivals in time order while remembering submission order.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].arrival, requests[i].id));

        let mut completions: Vec<(SimTime, SimTime)> = Vec::new();
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; requests.len()];
        for &idx in &order {
            let req = &requests[idx];
            // Members of the same synchronized crowd (arrivals within one
            // base service time) all count each other; earlier requests
            // additionally count if they are still being served.
            let window = self.base_service;
            let crowd_members = requests
                .iter()
                .filter(|other| {
                    let gap = if other.arrival >= req.arrival {
                        other.arrival - req.arrival
                    } else {
                        req.arrival - other.arrival
                    };
                    gap <= window
                })
                .count();
            let still_pending = completions
                .iter()
                .filter(|(arrival, completion)| {
                    req.arrival.saturating_since(*arrival) > window && *completion > req.arrival
                })
                .count();
            let n = crowd_members + still_pending;
            let latency =
                self.base_service + self.model.added_delay(n) + req.client_rtt.mul_f64(0.5);
            let completion = req.arrival + latency;
            completions.push((req.arrival, completion));
            outcomes[idx] = Some(RequestOutcome {
                id: req.id,
                arrival: req.arrival,
                status: RequestStatus::Ok,
                completion,
                body_bytes: 0,
                background: req.background,
            });
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every request produced an outcome"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestClass;

    fn req(id: u64, arrival_ms: u64) -> ServerRequest {
        ServerRequest {
            id,
            arrival: SimTime::ZERO + SimDuration::from_millis(arrival_ms),
            class: RequestClass::Head,
            path: "/".to_string(),
            client_downlink: 1e7,
            client_rtt: SimDuration::ZERO,
            client_addr: id as u32,
            background: false,
        }
    }

    #[test]
    fn flat_model_gives_base_service_only() {
        let server = SyntheticServer::new(SimDuration::from_millis(25), ResponseModel::Flat);
        let outcomes = server.run((0..40).map(|i| req(i, 0)).collect());
        for o in outcomes {
            assert_eq!(o.latency(), SimDuration::from_millis(25));
        }
    }

    #[test]
    fn linear_model_scales_with_crowd_size() {
        let server = SyntheticServer::new(
            SimDuration::from_millis(10),
            ResponseModel::Linear { slope_ms: 4.0 },
        );
        for crowd in [1usize, 10, 30, 60] {
            let outcomes = server.run((0..crowd as u64).map(|i| req(i, 0)).collect());
            let max = outcomes.iter().map(|o| o.latency()).max().unwrap();
            let expected =
                SimDuration::from_millis(10) + SimDuration::from_millis_f64(4.0 * crowd as f64);
            assert_eq!(max, expected, "crowd {crowd}");
        }
    }

    #[test]
    fn exponential_model_grows_faster_than_linear() {
        let linear = SyntheticServer::new(
            SimDuration::from_millis(10),
            ResponseModel::Linear { slope_ms: 5.0 },
        );
        let exponential = SyntheticServer::new(
            SimDuration::from_millis(10),
            ResponseModel::Exponential {
                scale_ms: 1.0,
                growth: 1.12,
            },
        );
        let crowd: Vec<ServerRequest> = (0..60).map(|i| req(i, 0)).collect();
        let lin_max = linear
            .run(crowd.clone())
            .iter()
            .map(|o| o.latency())
            .max()
            .unwrap();
        let exp_max = exponential
            .run(crowd)
            .iter()
            .map(|o| o.latency())
            .max()
            .unwrap();
        assert!(exp_max > lin_max);
    }

    #[test]
    fn step_model_jumps_at_knee() {
        let server = SyntheticServer::new(
            SimDuration::from_millis(5),
            ResponseModel::Step {
                knee: 20,
                jump_ms: 500.0,
            },
        );
        let below = server.run((0..10).map(|i| req(i, 0)).collect());
        assert!(below
            .iter()
            .all(|o| o.latency() == SimDuration::from_millis(5)));
        let above = server.run((0..30).map(|i| req(i, 0)).collect());
        assert!(above
            .iter()
            .any(|o| o.latency() >= SimDuration::from_millis(505)));
    }

    #[test]
    fn sequential_requests_do_not_interfere() {
        let server = SyntheticServer::new(
            SimDuration::from_millis(10),
            ResponseModel::Linear { slope_ms: 100.0 },
        );
        // Requests spaced far apart never overlap, so each sees n = 1.
        let outcomes = server.run(vec![req(1, 0), req(2, 10_000), req(3, 20_000)]);
        for o in outcomes {
            assert_eq!(o.latency(), SimDuration::from_millis(110));
        }
    }

    #[test]
    fn outcomes_preserve_submission_order() {
        let server = SyntheticServer::new(SimDuration::from_millis(1), ResponseModel::Flat);
        let outcomes = server.run(vec![req(5, 30), req(6, 10), req(7, 20)]);
        let ids: Vec<u64> = outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![5, 6, 7]);
    }

    #[test]
    fn added_delay_never_negative() {
        let model = ResponseModel::Exponential {
            scale_ms: -5.0,
            growth: 1.5,
        };
        assert_eq!(model.added_delay(10), SimDuration::ZERO);
        assert_eq!(ResponseModel::Flat.added_delay(1_000), SimDuration::ZERO);
    }
}
