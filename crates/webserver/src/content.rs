//! The content hosted by a simulated server.
//!
//! The MFC profiling step crawls a target site and buckets what it finds
//! into *Large Objects* (static files over 100 KB — used to exercise the
//! access link) and *Small Queries* (dynamic URLs with responses under
//! 15 KB — used to exercise the back-end), plus the base page used for the
//! Base stage's HEAD requests (paper §2.2.1).  [`ContentCatalog`] is the
//! simulated equivalent of "what a crawl of this site would discover".

use serde::{Deserialize, Serialize};

/// Broad content categories, mirroring the classification heuristics of the
/// paper's profiler (file-name extensions plus a `?` marking CGI queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Regular text content: `.html`, `.txt`, plain pages.
    Text,
    /// Binary downloads: `.pdf`, `.exe`, `.tar.gz`, media files.
    Binary,
    /// Images: `.gif`, `.jpg`, `.png`.
    Image,
    /// Dynamically generated responses (URLs containing `?`).
    Query,
}

impl ObjectKind {
    /// Returns `true` for content that is generated per request rather than
    /// read from storage.
    pub fn is_dynamic(self) -> bool {
        matches!(self, ObjectKind::Query)
    }
}

/// One URL the simulated server can serve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// Site-relative path, e.g. `/pub/dataset.tar.gz` or `/search?q=42`.
    pub path: String,
    /// Content category.
    pub kind: ObjectKind,
    /// Size of the response body in bytes.
    pub size_bytes: u64,
    /// For dynamic objects: how many database rows the query touches.  Zero
    /// for static content.
    pub db_rows: u64,
    /// For dynamic objects: whether the back-end result is cacheable (the
    /// same query repeated may be served from the query cache).
    pub cacheable: bool,
}

impl ObjectSpec {
    /// A static object of the given kind and size.
    pub fn static_object(path: impl Into<String>, kind: ObjectKind, size_bytes: u64) -> Self {
        ObjectSpec {
            path: path.into(),
            kind,
            size_bytes,
            db_rows: 0,
            cacheable: true,
        }
    }

    /// A dynamic query touching `db_rows` rows and returning `size_bytes`.
    pub fn query(path: impl Into<String>, size_bytes: u64, db_rows: u64) -> Self {
        ObjectSpec {
            path: path.into(),
            kind: ObjectKind::Query,
            size_bytes,
            db_rows,
            cacheable: true,
        }
    }

    /// Returns `true` if this object qualifies as a *Large Object* per the
    /// paper's 100 KB lower bound.
    pub fn is_large_object(&self) -> bool {
        !self.kind.is_dynamic() && self.size_bytes >= LARGE_OBJECT_MIN_BYTES
    }

    /// Returns `true` if this object qualifies as a *Small Query* per the
    /// paper's rules: a dynamic URL whose response is under 15 KB.
    pub fn is_small_query(&self) -> bool {
        self.kind.is_dynamic() && self.size_bytes <= SMALL_QUERY_MAX_BYTES
    }
}

/// Lower size bound for the Large Objects class (paper §2.2.1: > 100 KB).
pub const LARGE_OBJECT_MIN_BYTES: u64 = 100 * 1024;

/// Upper size bound for the Small Queries class (paper §2.2.1: < 15 KB).
pub const SMALL_QUERY_MAX_BYTES: u64 = 15 * 1024;

/// Everything a crawl of the simulated site would discover.
///
/// # Examples
///
/// ```
/// use mfc_webserver::{ContentCatalog, ObjectKind};
///
/// let catalog = ContentCatalog::typical_site(12345);
/// assert!(catalog.base_page().size_bytes > 0);
/// assert!(!catalog.large_objects().is_empty());
/// assert!(!catalog.small_queries().is_empty());
/// assert!(catalog.lookup(&catalog.base_page().path).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentCatalog {
    base_page: ObjectSpec,
    objects: Vec<ObjectSpec>,
}

impl ContentCatalog {
    /// Creates a catalog from an explicit base page and object list.
    pub fn new(base_page: ObjectSpec, objects: Vec<ObjectSpec>) -> Self {
        ContentCatalog { base_page, objects }
    }

    /// The page served at `/` — the object the Base stage issues HEAD
    /// requests for.
    pub fn base_page(&self) -> &ObjectSpec {
        &self.base_page
    }

    /// All objects other than the base page.
    pub fn objects(&self) -> &[ObjectSpec] {
        &self.objects
    }

    /// Finds an object by path (including the base page).
    pub fn lookup(&self, path: &str) -> Option<&ObjectSpec> {
        if self.base_page.path == path {
            return Some(&self.base_page);
        }
        self.objects.iter().find(|o| o.path == path)
    }

    /// Objects that qualify for the Large Object stage.
    pub fn large_objects(&self) -> Vec<&ObjectSpec> {
        self.objects
            .iter()
            .filter(|o| o.is_large_object())
            .collect()
    }

    /// Objects that qualify for the Small Query stage.
    pub fn small_queries(&self) -> Vec<&ObjectSpec> {
        self.objects.iter().filter(|o| o.is_small_query()).collect()
    }

    /// Adds an object to the catalog.
    pub fn push(&mut self, object: ObjectSpec) {
        self.objects.push(object);
    }

    /// A catalog resembling a small-to-medium production web site: an HTML
    /// base page, a handful of images and text pages, several large binary
    /// downloads and a set of distinct small queries.
    ///
    /// `seed_tag` only varies the URL names so that multi-site experiments
    /// do not accidentally share query-cache keys.
    pub fn typical_site(seed_tag: u64) -> Self {
        let base_page = ObjectSpec::static_object("/index.html", ObjectKind::Text, 18 * 1024);
        let mut objects = Vec::new();
        for i in 0..8 {
            objects.push(ObjectSpec::static_object(
                format!("/pages/article_{seed_tag}_{i}.html"),
                ObjectKind::Text,
                6 * 1024 + i * 1024,
            ));
        }
        for i in 0..6 {
            objects.push(ObjectSpec::static_object(
                format!("/img/photo_{seed_tag}_{i}.jpg"),
                ObjectKind::Image,
                40 * 1024 + i * 10 * 1024,
            ));
        }
        for i in 0..4 {
            objects.push(ObjectSpec::static_object(
                format!("/pub/release_{seed_tag}_{i}.tar.gz"),
                ObjectKind::Binary,
                (300 + 150 * i) * 1024,
            ));
        }
        for i in 0..32 {
            objects.push(ObjectSpec::query(
                format!("/search?site={seed_tag}&q=item{i}"),
                4 * 1024,
                50_000,
            ));
        }
        ContentCatalog::new(base_page, objects)
    }

    /// A catalog whose static-object sizes are drawn from an explicit
    /// heavy-tailed distribution — the measured shape of real sites, where
    /// a few huge downloads coexist with thousands of small pages.  The
    /// object kind follows from the drawn size (text under the small-query
    /// bound, images up to the large-object bound, binaries above), and a
    /// block of small queries keeps every MFC stage probeable.
    ///
    /// Because the sizes name their distribution, a generated catalog can
    /// be *audited* against it: the property tests compare the empirical
    /// size quantiles with [`mfc_workload::TailDistribution::quantile`].
    pub fn heavy_tailed_site(
        seed_tag: u64,
        static_objects: usize,
        sizes: &mfc_workload::TailDistribution,
        rng: &mut mfc_simcore::SimRng,
    ) -> Self {
        let base_page = ObjectSpec::static_object("/index.html", ObjectKind::Text, 18 * 1024);
        let mut objects = Vec::with_capacity(static_objects + 16);
        for i in 0..static_objects {
            let size = sizes.sample(rng).round().max(64.0) as u64;
            let kind = if size <= SMALL_QUERY_MAX_BYTES {
                ObjectKind::Text
            } else if size < LARGE_OBJECT_MIN_BYTES {
                ObjectKind::Image
            } else {
                ObjectKind::Binary
            };
            objects.push(ObjectSpec::static_object(
                format!("/files/object_{seed_tag}_{i}.bin"),
                kind,
                size,
            ));
        }
        for i in 0..16 {
            objects.push(ObjectSpec::query(
                format!("/search?site={seed_tag}&q=item{i}"),
                4 * 1024,
                50_000,
            ));
        }
        ContentCatalog::new(base_page, objects)
    }

    /// The minimal catalog used by the §3 lab validation experiments: one
    /// 100 KB object for the Large Object workload and one query that scans
    /// 50 000 rows and returns a sub-100-byte response, mirroring the
    /// MySQL-backed setup of §3.2.
    pub fn lab_validation() -> Self {
        let base_page = ObjectSpec::static_object("/index.html", ObjectKind::Text, 4 * 1024);
        let objects = vec![
            ObjectSpec::static_object("/objects/large_100k.bin", ObjectKind::Binary, 100 * 1024),
            ObjectSpec::query("/cgi/stats?table=t1", 100, 50_000),
        ];
        ContentCatalog::new(base_page, objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_thresholds_match_paper() {
        let just_large =
            ObjectSpec::static_object("/a.bin", ObjectKind::Binary, LARGE_OBJECT_MIN_BYTES);
        assert!(just_large.is_large_object());
        let too_small =
            ObjectSpec::static_object("/b.bin", ObjectKind::Binary, LARGE_OBJECT_MIN_BYTES - 1);
        assert!(!too_small.is_large_object());

        let small_query = ObjectSpec::query("/q?x=1", SMALL_QUERY_MAX_BYTES, 1000);
        assert!(small_query.is_small_query());
        let big_query = ObjectSpec::query("/q?x=2", SMALL_QUERY_MAX_BYTES + 1, 1000);
        assert!(!big_query.is_small_query());
    }

    #[test]
    fn dynamic_objects_are_never_large_objects() {
        let huge_query = ObjectSpec::query("/q?x=3", 10_000_000, 10);
        assert!(!huge_query.is_large_object());
        assert!(ObjectKind::Query.is_dynamic());
        assert!(!ObjectKind::Binary.is_dynamic());
    }

    #[test]
    fn typical_site_has_all_classes() {
        let catalog = ContentCatalog::typical_site(7);
        assert!(!catalog.large_objects().is_empty());
        assert!(!catalog.small_queries().is_empty());
        assert!(catalog.objects().len() > 20);
        // Large objects and small queries are disjoint.
        for o in catalog.large_objects() {
            assert!(!o.is_small_query());
        }
    }

    #[test]
    fn lookup_finds_base_and_objects() {
        let catalog = ContentCatalog::lab_validation();
        assert!(catalog.lookup("/index.html").is_some());
        assert!(catalog.lookup("/objects/large_100k.bin").is_some());
        assert!(catalog.lookup("/missing").is_none());
    }

    #[test]
    fn push_extends_catalog() {
        let mut catalog = ContentCatalog::lab_validation();
        let before = catalog.objects().len();
        catalog.push(ObjectSpec::query("/new?x=1", 100, 10));
        assert_eq!(catalog.objects().len(), before + 1);
        assert!(catalog.lookup("/new?x=1").is_some());
    }

    #[test]
    fn distinct_seed_tags_produce_distinct_query_paths() {
        let a = ContentCatalog::typical_site(1);
        let b = ContentCatalog::typical_site(2);
        let a_queries: Vec<_> = a.small_queries().iter().map(|o| o.path.clone()).collect();
        for q in b.small_queries() {
            assert!(!a_queries.contains(&q.path));
        }
    }
}
