//! Requests entering the simulated server and their outcomes.
//!
//! `mfc-core` (or the background-traffic generator) decides *when* a request
//! arrives and *what* it asks for; this module defines the shapes of those
//! inputs and of what the server reports back — completion times, status and
//! the per-request arrival log that stands in for the cooperating operators'
//! server logs (used for Figure 3 and Table 2).

use mfc_simcore::{SimDuration, SimTime};
use mfc_simnet::Bandwidth;
use serde::{Deserialize, Serialize};

/// What kind of HTTP request this is, which determines which server
/// sub-systems it exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestClass {
    /// `HEAD /` — the Base stage: exercises connection handling and basic
    /// HTTP processing only; the response carries headers only.
    Head,
    /// `GET` of a static object — the Large Object stage when the object is
    /// big: exercises the object cache / disk and, above all, the access
    /// link.
    Static,
    /// `GET` of a dynamically generated object — the Small Query stage:
    /// exercises the dynamic handler and the back-end database.
    Dynamic,
}

/// A single request arrival as seen by the server simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerRequest {
    /// Caller-chosen identifier, echoed back in the outcome.
    pub id: u64,
    /// Time at which the first byte of the HTTP request reaches the server
    /// (i.e. after the TCP handshake).
    pub arrival: SimTime,
    /// Request class.
    pub class: RequestClass,
    /// Path of the requested object; must exist in the server's catalog for
    /// static/dynamic requests.
    pub path: String,
    /// Downstream bandwidth of the requesting client in bytes/s (caps the
    /// response transfer rate).
    pub client_downlink: Bandwidth,
    /// Round-trip time between the client and the server (used for TCP
    /// window/slow-start effects on the response).
    pub client_rtt: SimDuration,
    /// Stable identifier of the requesting client — the stand-in for the
    /// source IP address that per-client server defenses (rate limiters)
    /// key on.  Requests from the same client share one identifier across
    /// epochs; background traffic uses a disjoint identifier space.
    pub client_addr: u32,
    /// True for regular (non-MFC) background traffic; background requests
    /// are excluded from MFC statistics but compete for every resource.
    pub background: bool,
}

/// Terminal status of a request inside the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestStatus {
    /// The full response was sent.
    Ok,
    /// The connection was refused because the listen queue was full.
    Refused,
    /// The requested path does not exist in the catalog.
    NotFound,
    /// The request was deliberately shed by an admission-control or
    /// rate-limiting defense before consuming a worker (an HTTP 503).
    Shed,
}

/// What happened to one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// The id supplied in [`ServerRequest::id`].
    pub id: u64,
    /// Arrival time echoed back.
    pub arrival: SimTime,
    /// Terminal status.
    pub status: RequestStatus,
    /// Time at which the last byte of the response left the server-side
    /// model (including the transfer over the access link and the client's
    /// downlink).  For refused requests this is the refusal time.
    pub completion: SimTime,
    /// Number of body bytes in the response (0 for HEAD and refused
    /// requests).
    pub body_bytes: u64,
    /// True if this was a background request.
    pub background: bool,
}

impl RequestOutcome {
    /// Server-side latency: completion minus arrival.
    pub fn latency(&self) -> SimDuration {
        self.completion.saturating_since(self.arrival)
    }

    /// Returns `true` if the request was served successfully.
    pub fn is_ok(&self) -> bool {
        self.status == RequestStatus::Ok
    }
}

/// One line of the simulated server's access log: which request arrived
/// when.  This is the reproduction's stand-in for the logs the cooperating
/// site operators shared with the authors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalRecord {
    /// Request id.
    pub id: u64,
    /// Arrival time of the first byte of the request.
    pub arrival: SimTime,
    /// Whether the request belonged to the MFC (false) or to background
    /// traffic (true).
    pub background: bool,
}

/// Computes the time spread containing the middle `fraction` of the given
/// arrival times — the statistic Table 2 reports as "Spread for 90% of
/// reqs".
///
/// Returns `None` when fewer than two arrivals are provided.
///
/// # Examples
///
/// ```
/// use mfc_simcore::SimTime;
/// use mfc_webserver::request::central_spread;
///
/// let arrivals: Vec<SimTime> = (0..100).map(|i| SimTime::from_micros(i * 1_000)).collect();
/// // The middle 90% of 100 evenly spaced arrivals spans ~90 ms.
/// let spread = central_spread(&arrivals, 0.9).unwrap();
/// assert!((spread.as_millis_f64() - 89.0).abs() < 2.0);
/// ```
pub fn central_spread(arrivals: &[SimTime], fraction: f64) -> Option<SimDuration> {
    if arrivals.len() < 2 {
        return None;
    }
    let fraction = fraction.clamp(0.0, 1.0);
    let mut sorted: Vec<SimTime> = arrivals.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let keep = ((n as f64 * fraction).round() as usize).clamp(1, n);
    let drop_total = n - keep;
    let drop_low = drop_total / 2;
    let low = sorted[drop_low];
    let high = sorted[drop_low + keep - 1];
    Some(high - low)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn outcome_latency_and_ok() {
        let outcome = RequestOutcome {
            id: 1,
            arrival: t(100),
            status: RequestStatus::Ok,
            completion: t(350),
            body_bytes: 1024,
            background: false,
        };
        assert_eq!(outcome.latency(), SimDuration::from_millis(250));
        assert!(outcome.is_ok());
        let refused = RequestOutcome {
            status: RequestStatus::Refused,
            ..outcome
        };
        assert!(!refused.is_ok());
    }

    #[test]
    fn latency_never_negative() {
        let outcome = RequestOutcome {
            id: 1,
            arrival: t(100),
            status: RequestStatus::Ok,
            completion: t(50),
            body_bytes: 0,
            background: false,
        };
        assert_eq!(outcome.latency(), SimDuration::ZERO);
    }

    #[test]
    fn central_spread_full_range() {
        let arrivals = vec![t(0), t(10), t(20), t(30)];
        assert_eq!(
            central_spread(&arrivals, 1.0),
            Some(SimDuration::from_millis(30))
        );
    }

    #[test]
    fn central_spread_drops_outliers() {
        // 18 tightly packed arrivals plus two stragglers.
        let mut arrivals: Vec<SimTime> = (0..18).map(|i| t(100 + i)).collect();
        arrivals.push(t(0));
        arrivals.push(t(5_000));
        let spread90 = central_spread(&arrivals, 0.9).unwrap();
        assert!(
            spread90 <= SimDuration::from_millis(20),
            "spread {spread90}"
        );
        let spread100 = central_spread(&arrivals, 1.0).unwrap();
        assert_eq!(spread100, SimDuration::from_millis(5_000));
    }

    #[test]
    fn central_spread_small_inputs() {
        assert_eq!(central_spread(&[], 0.9), None);
        assert_eq!(central_spread(&[t(5)], 0.9), None);
        assert_eq!(
            central_spread(&[t(5), t(9)], 0.9),
            Some(SimDuration::from_millis(4))
        );
    }

    #[test]
    fn central_spread_unsorted_input() {
        let arrivals = vec![t(30), t(0), t(20), t(10)];
        assert_eq!(
            central_spread(&arrivals, 1.0),
            Some(SimDuration::from_millis(30))
        );
    }
}
