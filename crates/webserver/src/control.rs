//! The mid-run mutation seam between a running server and a control loop.
//!
//! The paper profiles *static* targets: the server's capacity, replica
//! count and admission behaviour are fixed for the duration of an MFC run.
//! Real deployments react — clouds scale out under flash crowds, overloaded
//! front ends shed load, rate limiters clamp abusive clients.  This module
//! defines the seam those reactions act through: a [`ServerControl`]
//! observes fresh [`TickSample`] telemetry on a fixed virtual-time tick and
//! answers with [`ControlAction`]s (replica / capacity mutations) and
//! per-arrival [`AdmissionVerdict`]s (shed / throttle decisions).
//!
//! The concrete defense policies (autoscaler, admission controller, token
//! bucket, capacity schedule) live in the `mfc-dynamics` crate; this crate
//! only knows how to *host* a control loop inside
//! [`crate::ServerEngine::run_controlled`] and
//! [`crate::ServerCluster::run_controlled`].

use mfc_simcore::{SimDuration, SimTime};
use mfc_simnet::Bandwidth;

use crate::request::ServerRequest;

/// One per-tick snapshot of the running server, aggregated over all active
/// replicas — what a control loop's metrics pipeline would scrape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickSample {
    /// Virtual time of the tick.
    pub now: SimTime,
    /// Replicas currently routable (1 for a single server).
    pub active_replicas: usize,
    /// Requests admitted but not yet completed, summed over replicas.
    pub in_flight: u64,
    /// Busy worker slots, summed over replicas.
    pub busy_workers: u64,
    /// Connections waiting in listen queues, summed over replicas.
    pub queued: u64,
    /// Instantaneous CPU utilization in 0–1, averaged over replicas.
    pub cpu_utilization: f64,
    /// Instantaneous access-link utilization in 0–1, averaged over
    /// replicas.
    pub link_utilization: f64,
    /// Resident memory in bytes, summed over replicas.
    pub memory_used: u64,
    /// Requests completed successfully so far (cumulative).
    pub completed: u64,
    /// Requests refused by listen-queue overflow so far (cumulative).
    pub refused: u64,
    /// Requests shed by the control loop itself so far (cumulative).
    pub shed: u64,
    /// Requests that have arrived at the front door so far (cumulative,
    /// including shed ones).
    pub arrivals: u64,
}

impl TickSample {
    /// A zero sample (server idle, nothing observed yet).
    pub fn idle(now: SimTime, active_replicas: usize) -> TickSample {
        TickSample {
            now,
            active_replicas,
            in_flight: 0,
            busy_workers: 0,
            queued: 0,
            cpu_utilization: 0.0,
            link_utilization: 0.0,
            memory_used: 0,
            completed: 0,
            refused: 0,
            shed: 0,
            arrivals: 0,
        }
    }

    /// Mean in-flight requests per active replica.
    pub fn in_flight_per_replica(&self) -> f64 {
        self.in_flight as f64 / self.active_replicas.max(1) as f64
    }
}

/// What the control loop decides about one arriving request, before the
/// request consumes any server resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionVerdict {
    /// Serve normally.
    Accept,
    /// Reject with a 503 before worker admission (load shedding).
    Shed,
    /// Serve, but clamp the response transfer to at most this many
    /// bytes/second (per-client rate limiting).
    Throttle(Bandwidth),
}

/// A mutation the control loop applies to the running server at a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// Set the number of routable replicas.  Clamped to at least 1; ignored
    /// by single-server hosts.  New replicas start cold (empty caches) and
    /// only receive requests arriving after the action.
    SetReplicas(usize),
    /// Set the outbound access-link capacity (bytes/second) of every
    /// replica.
    SetAccessLink(Bandwidth),
    /// Scale every replica's total CPU capacity by this factor relative to
    /// the configured hardware (1.0 = nominal).
    ScaleCpu(f64),
}

/// A control loop hosted by a tick-driven server run.
///
/// The host calls [`ServerControl::on_arrival`] for every request in
/// arrival order and [`ServerControl::on_tick`] every
/// [`ServerControl::tick_interval`] of virtual time, interleaved
/// deterministically with the arrivals.  All state lives in the
/// implementation, so a control loop carried across epoch runs (token
/// bucket fill levels, autoscaler cooldowns) keeps its memory between
/// batches.
pub trait ServerControl {
    /// Spacing of telemetry ticks; `None` disables ticks entirely (the
    /// control loop then only sees arrivals).
    fn tick_interval(&self) -> Option<SimDuration>;

    /// Decides the fate of one arriving request.
    fn on_arrival(&mut self, now: SimTime, request: &ServerRequest) -> AdmissionVerdict;

    /// Observes one telemetry tick and appends any actions to apply.
    fn on_tick(&mut self, now: SimTime, sample: &TickSample, actions: &mut Vec<ControlAction>);
}

/// The do-nothing control loop: accepts everything, never ticks.  Hosting a
/// run under [`NullControl`] reproduces the plain batch run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullControl;

impl ServerControl for NullControl {
    fn tick_interval(&self) -> Option<SimDuration> {
        None
    }

    fn on_arrival(&mut self, _now: SimTime, _request: &ServerRequest) -> AdmissionVerdict {
        AdmissionVerdict::Accept
    }

    fn on_tick(&mut self, _now: SimTime, _sample: &TickSample, _actions: &mut Vec<ControlAction>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_sample_is_zeroed() {
        let s = TickSample::idle(SimTime::ZERO, 4);
        assert_eq!(s.active_replicas, 4);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.in_flight_per_replica(), 0.0);
    }

    #[test]
    fn per_replica_load_divides_by_active_count() {
        let s = TickSample {
            in_flight: 12,
            ..TickSample::idle(SimTime::ZERO, 3)
        };
        assert!((s.in_flight_per_replica() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn null_control_accepts_and_never_ticks() {
        let mut ctrl = NullControl;
        assert_eq!(ctrl.tick_interval(), None);
        let req = ServerRequest {
            id: 1,
            arrival: SimTime::ZERO,
            class: crate::request::RequestClass::Head,
            path: "/".to_string(),
            client_downlink: 1e6,
            client_rtt: mfc_simcore::SimDuration::from_millis(10),
            client_addr: 1,
            background: false,
        };
        assert_eq!(
            ctrl.on_arrival(SimTime::ZERO, &req),
            AdmissionVerdict::Accept
        );
    }
}
