//! Server-side caches: the static-object cache and the database query cache.
//!
//! Caching is central to two of the paper's observations.  In the Large
//! Object stage all clients fetch the *same* object precisely so that "the
//! likely caching of the object reduces the chance that the server's storage
//! sub-system is exercised" (§2.2.2).  In the Small Query stage, whether
//! repeated identical queries hit a query cache decides how hard the
//! back-end is exercised — Univ-3's operators traced their poor Small Query
//! results to a legacy stack that "was not caching responses appropriately"
//! (§4.2).
//!
//! [`CacheState`] lives *outside* the per-window engine so that cache warmth
//! carries across MFC epochs, exactly as it would on a real server.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::config::{DatabaseConfig, ObjectCacheConfig};

/// Persistent cache contents of one server instance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheState {
    /// Paths of static objects currently held in the in-memory object
    /// cache, with their sizes.
    object_cache: HashMap<String, u64>,
    /// Bytes used by the object cache.
    object_bytes: u64,
    /// Keys (paths) present in the database query cache.
    query_cache: HashSet<String>,
    object_hits: u64,
    object_misses: u64,
    query_hits: u64,
    query_misses: u64,
}

impl CacheState {
    /// Creates empty (cold) caches.
    pub fn new() -> Self {
        CacheState::default()
    }

    /// Looks up a static object; records a hit or miss.
    pub fn object_lookup(&mut self, path: &str, config: &ObjectCacheConfig) -> bool {
        if !config.enabled {
            self.object_misses += 1;
            return false;
        }
        if self.object_cache.contains_key(path) {
            self.object_hits += 1;
            true
        } else {
            self.object_misses += 1;
            false
        }
    }

    /// Inserts a static object after it has been read from disk, if it fits
    /// in the remaining cache capacity.  (No eviction: the MFC workloads
    /// touch a handful of distinct objects, far below any realistic cache
    /// size, so an eviction policy would never be exercised.)
    pub fn object_insert(&mut self, path: &str, size: u64, config: &ObjectCacheConfig) {
        if !config.enabled || self.object_cache.contains_key(path) {
            return;
        }
        if self.object_bytes + size <= config.capacity_bytes {
            self.object_cache.insert(path.to_string(), size);
            self.object_bytes += size;
        }
    }

    /// Looks up a dynamic query in the query cache; records a hit or miss.
    ///
    /// `cacheable` is false for queries the application marks uncacheable;
    /// those always miss and are not inserted.
    pub fn query_lookup(&mut self, key: &str, cacheable: bool, config: &DatabaseConfig) -> bool {
        if !config.query_cache || !cacheable {
            self.query_misses += 1;
            return false;
        }
        if self.query_cache.contains(key) {
            self.query_hits += 1;
            true
        } else {
            self.query_misses += 1;
            false
        }
    }

    /// Records that a query's result is now cached.
    pub fn query_insert(&mut self, key: &str, cacheable: bool, config: &DatabaseConfig) {
        if config.query_cache && cacheable {
            self.query_cache.insert(key.to_string());
        }
    }

    /// Bytes currently held by the object cache.
    pub fn object_cache_bytes(&self) -> u64 {
        self.object_bytes
    }

    /// Number of distinct cached query keys.
    pub fn query_cache_entries(&self) -> usize {
        self.query_cache.len()
    }

    /// (hits, misses) for the object cache.
    pub fn object_stats(&self) -> (u64, u64) {
        (self.object_hits, self.object_misses)
    }

    /// (hits, misses) for the query cache.
    pub fn query_stats(&self) -> (u64, u64) {
        (self.query_hits, self.query_misses)
    }

    /// Drops all cached content but keeps the hit/miss counters.
    pub fn invalidate(&mut self) {
        self.object_cache.clear();
        self.object_bytes = 0;
        self.query_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj_cfg(enabled: bool, capacity: u64) -> ObjectCacheConfig {
        ObjectCacheConfig {
            enabled,
            capacity_bytes: capacity,
        }
    }

    fn db_cfg(query_cache: bool) -> DatabaseConfig {
        DatabaseConfig {
            query_cache,
            ..DatabaseConfig::default()
        }
    }

    #[test]
    fn object_cache_miss_then_hit() {
        let mut cache = CacheState::new();
        let cfg = obj_cfg(true, 1_000_000);
        assert!(!cache.object_lookup("/a", &cfg));
        cache.object_insert("/a", 500, &cfg);
        assert!(cache.object_lookup("/a", &cfg));
        assert_eq!(cache.object_stats(), (1, 1));
        assert_eq!(cache.object_cache_bytes(), 500);
    }

    #[test]
    fn object_cache_respects_capacity() {
        let mut cache = CacheState::new();
        let cfg = obj_cfg(true, 1_000);
        cache.object_insert("/big", 900, &cfg);
        cache.object_insert("/too-big", 200, &cfg);
        assert!(cache.object_lookup("/big", &cfg));
        assert!(!cache.object_lookup("/too-big", &cfg));
        assert_eq!(cache.object_cache_bytes(), 900);
    }

    #[test]
    fn disabled_object_cache_never_hits() {
        let mut cache = CacheState::new();
        let cfg = obj_cfg(false, 1_000_000);
        cache.object_insert("/a", 10, &cfg);
        assert!(!cache.object_lookup("/a", &cfg));
    }

    #[test]
    fn duplicate_insert_does_not_double_count() {
        let mut cache = CacheState::new();
        let cfg = obj_cfg(true, 1_000);
        cache.object_insert("/a", 400, &cfg);
        cache.object_insert("/a", 400, &cfg);
        assert_eq!(cache.object_cache_bytes(), 400);
    }

    #[test]
    fn query_cache_behaviour() {
        let mut cache = CacheState::new();
        let cfg = db_cfg(true);
        assert!(!cache.query_lookup("/q?x=1", true, &cfg));
        cache.query_insert("/q?x=1", true, &cfg);
        assert!(cache.query_lookup("/q?x=1", true, &cfg));
        assert_eq!(cache.query_cache_entries(), 1);
        assert_eq!(cache.query_stats(), (1, 1));
    }

    #[test]
    fn uncacheable_queries_always_miss() {
        let mut cache = CacheState::new();
        let cfg = db_cfg(true);
        cache.query_insert("/q?x=2", false, &cfg);
        assert!(!cache.query_lookup("/q?x=2", false, &cfg));
        assert_eq!(cache.query_cache_entries(), 0);
    }

    #[test]
    fn disabled_query_cache_always_misses() {
        let mut cache = CacheState::new();
        let cfg = db_cfg(false);
        cache.query_insert("/q?x=3", true, &cfg);
        assert!(!cache.query_lookup("/q?x=3", true, &cfg));
    }

    #[test]
    fn invalidate_clears_contents_but_not_counters() {
        let mut cache = CacheState::new();
        let ocfg = obj_cfg(true, 1_000);
        let dcfg = db_cfg(true);
        cache.object_insert("/a", 10, &ocfg);
        cache.query_insert("/q", true, &dcfg);
        cache.object_lookup("/a", &ocfg);
        cache.invalidate();
        assert_eq!(cache.object_cache_bytes(), 0);
        assert_eq!(cache.query_cache_entries(), 0);
        assert_eq!(cache.object_stats().0, 1);
        assert!(!cache.object_lookup("/a", &ocfg));
    }
}
