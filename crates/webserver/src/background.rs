//! Background (non-MFC) traffic generation.
//!
//! Every cooperating-site experiment in the paper runs against a server
//! that is simultaneously serving its regular users: Univ-1 saw ~0.15
//! requests/s, Univ-2 2.9–4.2 requests/s, Univ-3 12.5–20.3 requests/s, and
//! the QTP production system handled millions of non-MFC requests during
//! the test window (§4).  The paper observes that background load shifts
//! the Base-stage stopping size at Univ-3 and recommends running MFCs under
//! diverse background conditions.  [`BackgroundTraffic`] generates that
//! competing load as a Poisson arrival process over the server's own
//! content.

use mfc_simcore::{SimDuration, SimRng, SimTime};
use mfc_simnet::Bandwidth;
use serde::{Deserialize, Serialize};

use crate::content::ContentCatalog;
use crate::request::{RequestClass, ServerRequest};

/// Mix of request classes in the background workload, as weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundMix {
    /// Weight of HEAD/base-page requests.
    pub head: f64,
    /// Weight of small static objects (pages, images).
    pub static_small: f64,
    /// Weight of large static objects (downloads).
    pub static_large: f64,
    /// Weight of dynamic queries.
    pub dynamic: f64,
}

impl Default for BackgroundMix {
    fn default() -> Self {
        // A browsing-dominated mix: mostly pages and images, some queries,
        // occasional downloads.
        BackgroundMix {
            head: 0.05,
            static_small: 0.65,
            static_large: 0.05,
            dynamic: 0.25,
        }
    }
}

/// A Poisson background-traffic source for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundTraffic {
    /// Mean request rate in requests per second.
    pub rate_per_sec: f64,
    /// Request-class mix.
    pub mix: BackgroundMix,
    /// Downlink bandwidth assumed for background clients (bytes/s).
    pub client_downlink: Bandwidth,
    /// RTT assumed for background clients.
    pub client_rtt: SimDuration,
}

impl BackgroundTraffic {
    /// No background traffic at all (the "raw infrastructure" mode the
    /// paper offers cooperating operators).
    pub fn idle() -> Self {
        BackgroundTraffic {
            rate_per_sec: 0.0,
            mix: BackgroundMix::default(),
            client_downlink: 2_000_000.0,
            client_rtt: SimDuration::from_millis(60),
        }
    }

    /// Background traffic at the given request rate with the default mix.
    pub fn at_rate(rate_per_sec: f64) -> Self {
        BackgroundTraffic {
            rate_per_sec,
            ..BackgroundTraffic::idle()
        }
    }

    /// Generates the background arrivals falling inside `[start, end)`.
    ///
    /// Request ids start at `id_base` so callers can keep them disjoint
    /// from MFC request ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use mfc_simcore::{SimDuration, SimRng, SimTime};
    /// use mfc_webserver::{BackgroundTraffic, ContentCatalog};
    ///
    /// let catalog = ContentCatalog::typical_site(1);
    /// let bg = BackgroundTraffic::at_rate(5.0);
    /// let mut rng = SimRng::seed_from(9);
    /// let arrivals = bg.generate(
    ///     &catalog,
    ///     SimTime::ZERO,
    ///     SimTime::ZERO + SimDuration::from_secs(60),
    ///     1_000_000,
    ///     &mut rng,
    /// );
    /// // ~300 requests expected over a minute at 5 req/s.
    /// assert!(arrivals.len() > 200 && arrivals.len() < 400);
    /// assert!(arrivals.iter().all(|r| r.background));
    /// ```
    pub fn generate(
        &self,
        catalog: &ContentCatalog,
        start: SimTime,
        end: SimTime,
        id_base: u64,
        rng: &mut SimRng,
    ) -> Vec<ServerRequest> {
        let mut requests = Vec::new();
        if self.rate_per_sec <= 0.0 || end <= start {
            return requests;
        }
        let mean_gap = 1.0 / self.rate_per_sec;
        let mut t = start;
        let mut id = id_base;
        loop {
            let gap = SimDuration::from_secs_f64(rng.exponential(mean_gap));
            // An exponential draw of exactly zero would stall the loop; the
            // distribution makes this vanishingly rare but guard anyway.
            let gap = gap.max(SimDuration::from_micros(1));
            t += gap;
            if t >= end {
                break;
            }
            requests.push(self.sample_request(catalog, t, id, rng));
            id += 1;
        }
        requests
    }

    fn sample_request(
        &self,
        catalog: &ContentCatalog,
        arrival: SimTime,
        id: u64,
        rng: &mut SimRng,
    ) -> ServerRequest {
        // Weighted selection over the four mix entries; fall back to HEAD
        // requests if the caller zeroed every weight.
        let weights: [(usize, f64); 4] = [
            (0, self.mix.head),
            (1, self.mix.static_small),
            (2, self.mix.static_large),
            (3, self.mix.dynamic),
        ];
        let slot = if weights.iter().all(|(_, w)| *w <= 0.0) {
            0
        } else {
            *rng.weighted_choice(&weights)
        };
        let (class, path) = match slot {
            0 => (RequestClass::Head, catalog.base_page().path.clone()),
            1 => {
                let small: Vec<&crate::content::ObjectSpec> = catalog
                    .objects()
                    .iter()
                    .filter(|o| !o.kind.is_dynamic() && !o.is_large_object())
                    .collect();
                if small.is_empty() {
                    (RequestClass::Head, catalog.base_page().path.clone())
                } else {
                    let idx = rng.index(small.len());
                    (RequestClass::Static, small[idx].path.clone())
                }
            }
            2 => {
                let large = catalog.large_objects();
                if large.is_empty() {
                    (RequestClass::Head, catalog.base_page().path.clone())
                } else {
                    let idx = rng.index(large.len());
                    (RequestClass::Static, large[idx].path.clone())
                }
            }
            _ => {
                let queries = catalog.small_queries();
                if queries.is_empty() {
                    (RequestClass::Head, catalog.base_page().path.clone())
                } else {
                    let idx = rng.index(queries.len());
                    (RequestClass::Dynamic, queries[idx].path.clone())
                }
            }
        };
        ServerRequest {
            id,
            arrival,
            class,
            path,
            client_downlink: self.client_downlink,
            client_rtt: self.client_rtt,
            // Background users come from a large, churned population: derive
            // a source address from the id in a space disjoint from MFC
            // clients (which use small ClientId values).
            client_addr: 0x8000_0000 | (id % 4093) as u32,
            background: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(120))
    }

    #[test]
    fn idle_generates_nothing() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(1);
        let arrivals = BackgroundTraffic::idle().generate(&catalog, start, end, 0, &mut rng);
        assert!(arrivals.is_empty());
    }

    #[test]
    fn rate_is_approximately_respected() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(2);
        let arrivals = BackgroundTraffic::at_rate(10.0).generate(&catalog, start, end, 0, &mut rng);
        let expected = 10.0 * 120.0;
        let n = arrivals.len() as f64;
        assert!((n - expected).abs() < expected * 0.2, "got {n} arrivals");
    }

    #[test]
    fn arrivals_are_ordered_and_inside_window() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(3);
        let arrivals = BackgroundTraffic::at_rate(4.2).generate(&catalog, start, end, 0, &mut rng);
        for pair in arrivals.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        assert!(arrivals
            .iter()
            .all(|r| r.arrival >= start && r.arrival < end));
    }

    #[test]
    fn ids_start_at_base_and_are_unique() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(4);
        let arrivals =
            BackgroundTraffic::at_rate(5.0).generate(&catalog, start, end, 7_000, &mut rng);
        assert!(arrivals.iter().all(|r| r.id >= 7_000));
        let mut ids: Vec<u64> = arrivals.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), arrivals.len());
    }

    #[test]
    fn paths_exist_in_catalog() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(5);
        let arrivals = BackgroundTraffic::at_rate(8.0).generate(&catalog, start, end, 0, &mut rng);
        for r in &arrivals {
            assert!(
                catalog.lookup(&r.path).is_some(),
                "background request for unknown path {}",
                r.path
            );
        }
    }

    #[test]
    fn mix_produces_multiple_classes() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(6);
        let arrivals = BackgroundTraffic::at_rate(20.0).generate(&catalog, start, end, 0, &mut rng);
        let dynamic = arrivals
            .iter()
            .filter(|r| r.class == RequestClass::Dynamic)
            .count();
        let static_reqs = arrivals
            .iter()
            .filter(|r| r.class == RequestClass::Static)
            .count();
        assert!(dynamic > 0);
        assert!(static_reqs > 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng_a = SimRng::seed_from(7);
        let mut rng_b = SimRng::seed_from(7);
        let a = BackgroundTraffic::at_rate(3.0).generate(&catalog, start, end, 0, &mut rng_a);
        let b = BackgroundTraffic::at_rate(3.0).generate(&catalog, start, end, 0, &mut rng_b);
        assert_eq!(a, b);
    }
}
