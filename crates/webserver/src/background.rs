//! Background (non-MFC) traffic generation.
//!
//! Every cooperating-site experiment in the paper runs against a server
//! that is simultaneously serving its regular users: Univ-1 saw ~0.15
//! requests/s, Univ-2 2.9–4.2 requests/s, Univ-3 12.5–20.3 requests/s, and
//! the QTP production system handled millions of non-MFC requests during
//! the test window (§4).  The paper observes that background load shifts
//! the Base-stage stopping size at Univ-3 and recommends running MFCs under
//! diverse background conditions.
//!
//! The heavy lifting now lives in `mfc-workload`: [`BackgroundTraffic`] is
//! a thin adapter that expresses the original flat-Poisson background as
//! the degenerate [`WorkloadSpec`] (one constant-rate source with a
//! class-mix request model) and streams it through the same
//! [`WorkloadStream`] every richer workload uses.  The adapter is
//! *bit-compatible* with the pre-workload generator — same draws from the
//! same RNG in the same order — which the pin tests at the bottom of this
//! file hold it to.
//!
//! [`CatalogSampler`] is the bridge for every workload, not just this one:
//! it maps the abstract request intents a [`WorkloadStream`] emits (mix
//! draws, session page views, trace entries) onto concrete
//! [`ServerRequest`]s against a server's [`ContentCatalog`].

use mfc_simcore::{SimDuration, SimRng, SimTime};
use mfc_simnet::Bandwidth;
use mfc_workload::{
    ClientSpec, MixWeights, RequestContext, RequestIntent, RequestKind, RequestSampler,
    WorkloadSpec, WorkloadStream,
};
use serde::{Deserialize, Serialize};

use crate::content::ContentCatalog;
use crate::request::{RequestClass, ServerRequest};

/// Mix of request classes in the background workload, as weights.
///
/// This is [`mfc_workload::MixWeights`] under its historical name; the
/// serialized form (field names and defaults) is unchanged.
pub type BackgroundMix = MixWeights;

/// A Poisson background-traffic source for one server: the degenerate
/// workload (constant rate, independent requests) kept for the paper's
/// scenarios and as the compatibility surface of `SimTargetSpec`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundTraffic {
    /// Mean request rate in requests per second.
    pub rate_per_sec: f64,
    /// Request-class mix.
    pub mix: BackgroundMix,
    /// Downlink bandwidth assumed for background clients (bytes/s).
    pub client_downlink: Bandwidth,
    /// RTT assumed for background clients.
    pub client_rtt: SimDuration,
}

impl BackgroundTraffic {
    /// No background traffic at all (the "raw infrastructure" mode the
    /// paper offers cooperating operators).
    pub fn idle() -> Self {
        BackgroundTraffic {
            rate_per_sec: 0.0,
            mix: BackgroundMix::default(),
            client_downlink: 2_000_000.0,
            client_rtt: SimDuration::from_millis(60),
        }
    }

    /// Background traffic at the given request rate with the default mix.
    pub fn at_rate(rate_per_sec: f64) -> Self {
        BackgroundTraffic {
            rate_per_sec,
            ..BackgroundTraffic::idle()
        }
    }

    /// The equivalent [`WorkloadSpec`]: one constant-rate Poisson source
    /// with this mix and client profile.
    pub fn workload_spec(&self) -> WorkloadSpec {
        WorkloadSpec::poisson_mix(
            self.rate_per_sec,
            self.mix,
            ClientSpec {
                downlink: self.client_downlink,
                rtt: self.client_rtt,
            },
        )
    }

    /// Generates the background arrivals falling inside `[start, end)`.
    ///
    /// Request ids start at `id_base` so callers can keep them disjoint
    /// from MFC request ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use mfc_simcore::{SimDuration, SimRng, SimTime};
    /// use mfc_webserver::{BackgroundTraffic, ContentCatalog};
    ///
    /// let catalog = ContentCatalog::typical_site(1);
    /// let bg = BackgroundTraffic::at_rate(5.0);
    /// let mut rng = SimRng::seed_from(9);
    /// let arrivals = bg.generate(
    ///     &catalog,
    ///     SimTime::ZERO,
    ///     SimTime::ZERO + SimDuration::from_secs(60),
    ///     1_000_000,
    ///     &mut rng,
    /// );
    /// // ~300 requests expected over a minute at 5 req/s.
    /// assert!(arrivals.len() > 200 && arrivals.len() < 400);
    /// assert!(arrivals.iter().all(|r| r.background));
    /// ```
    pub fn generate(
        &self,
        catalog: &ContentCatalog,
        start: SimTime,
        end: SimTime,
        id_base: u64,
        rng: &mut SimRng,
    ) -> Vec<ServerRequest> {
        if self.rate_per_sec <= 0.0 || end <= start {
            return Vec::new();
        }
        let spec = self.workload_spec();
        let sampler = CatalogSampler::background(catalog);
        let mut stream = WorkloadStream::with_source_rngs(
            &spec,
            start,
            end,
            id_base,
            vec![rng.clone()],
            sampler,
        );
        let requests: Vec<ServerRequest> = stream.by_ref().collect();
        // Hand the advanced RNG back so the caller's stream position is
        // exactly where the pre-workload generator would have left it.
        *rng = stream
            .into_source_rngs()
            .pop()
            .expect("the degenerate spec has one source");
        requests
    }
}

/// Maps workload request intents onto concrete [`ServerRequest`]s against a
/// server's [`ContentCatalog`].
///
/// The mix path reproduces the pre-workload `BackgroundTraffic` sampling
/// logic draw for draw (one weighted-choice draw, then one index draw for
/// the chosen class), which is what keeps the adapter bit-compatible.
/// Session page views and trace entries use the same catalog buckets with
/// a base-page fallback when the site lacks the requested class.
#[derive(Debug)]
pub struct CatalogSampler<'a> {
    catalog: &'a ContentCatalog,
    background: bool,
}

impl<'a> CatalogSampler<'a> {
    /// A sampler producing *background* requests (the non-MFC traffic the
    /// server serves alongside the probes).
    pub fn background(catalog: &'a ContentCatalog) -> Self {
        CatalogSampler {
            catalog,
            background: true,
        }
    }

    /// A sampler producing foreground requests (workload-as-subject
    /// experiments that drive the engine directly).
    pub fn foreground(catalog: &'a ContentCatalog) -> Self {
        CatalogSampler {
            catalog,
            background: false,
        }
    }

    /// Picks a concrete `(class, path)` from one catalog bucket: one index
    /// draw when the bucket is non-empty, otherwise the base page with the
    /// caller's `fallback` class (`Head` on the mix path, a plain `Static`
    /// GET for session page views).  `BasePage` itself is the fallback
    /// object and draws nothing.
    fn pick_bucket(
        &self,
        kind: RequestKind,
        fallback: RequestClass,
        rng: &mut SimRng,
    ) -> (RequestClass, String) {
        let base_page = |class: RequestClass| (class, self.catalog.base_page().path.clone());
        match kind {
            RequestKind::BasePage => base_page(fallback),
            RequestKind::StaticSmall => {
                let small: Vec<&crate::content::ObjectSpec> = self
                    .catalog
                    .objects()
                    .iter()
                    .filter(|o| !o.kind.is_dynamic() && !o.is_large_object())
                    .collect();
                if small.is_empty() {
                    base_page(fallback)
                } else {
                    let index = rng.index(small.len());
                    (RequestClass::Static, small[index].path.clone())
                }
            }
            RequestKind::StaticLarge => {
                let large = self.catalog.large_objects();
                if large.is_empty() {
                    base_page(fallback)
                } else {
                    let index = rng.index(large.len());
                    (RequestClass::Static, large[index].path.clone())
                }
            }
            RequestKind::Dynamic => {
                let queries = self.catalog.small_queries();
                if queries.is_empty() {
                    base_page(fallback)
                } else {
                    let index = rng.index(queries.len());
                    (RequestClass::Dynamic, queries[index].path.clone())
                }
            }
        }
    }

    /// A session page view or embedded object: missing buckets fall back
    /// to a plain GET of the base page.
    fn pick_kind(&self, kind: RequestKind, rng: &mut SimRng) -> (RequestClass, String) {
        self.pick_bucket(kind, RequestClass::Static, rng)
    }

    /// The mix path of the pre-workload generator, preserved draw for
    /// draw: one weighted-choice draw for the class (skipped for an
    /// all-zero mix), then the bucket's index draw, with HEAD fallbacks.
    fn pick_mix(&self, mix: &MixWeights, rng: &mut SimRng) -> (RequestClass, String) {
        const SLOTS: [RequestKind; 4] = [
            RequestKind::BasePage,
            RequestKind::StaticSmall,
            RequestKind::StaticLarge,
            RequestKind::Dynamic,
        ];
        let weights: [(usize, f64); 4] = [
            (0, mix.head),
            (1, mix.static_small),
            (2, mix.static_large),
            (3, mix.dynamic),
        ];
        let slot = if weights.iter().all(|(_, w)| *w <= 0.0) {
            0
        } else {
            *rng.weighted_choice(&weights)
        };
        self.pick_bucket(SLOTS[slot], RequestClass::Head, rng)
    }
}

impl RequestSampler for CatalogSampler<'_> {
    type Request = ServerRequest;

    fn sample(&mut self, ctx: RequestContext<'_>, rng: &mut SimRng) -> ServerRequest {
        let (class, path) = match ctx.intent {
            RequestIntent::Mix(mix) => self.pick_mix(mix, rng),
            RequestIntent::Kind(kind) => self.pick_kind(kind, rng),
            RequestIntent::Trace(entry) => {
                if entry.head {
                    (RequestClass::Head, self.catalog.base_page().path.clone())
                } else {
                    // Replayed paths are issued verbatim; paths the catalog
                    // does not host come back 404, exactly like replaying a
                    // mismatched log against a real server.
                    let class = match self.catalog.lookup(&entry.path) {
                        Some(object) if object.kind.is_dynamic() => RequestClass::Dynamic,
                        Some(_) => RequestClass::Static,
                        None if entry.dynamic => RequestClass::Dynamic,
                        None => RequestClass::Static,
                    };
                    (class, entry.path.clone())
                }
            }
        };
        ServerRequest {
            id: ctx.id,
            arrival: ctx.time,
            class,
            path,
            client_downlink: ctx.downlink,
            client_rtt: ctx.rtt,
            // Background users come from a large, churned population:
            // derive a source address from the synthetic user in a space
            // disjoint from MFC clients (which use small ClientId values).
            // A session's requests share one user, hence one address.
            client_addr: 0x8000_0000 | (ctx.user % 4093) as u32,
            background: self.background,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_workload::{ArrivalProcess, RequestModel, SessionModel, SourceKind, SourceSpec};

    fn window() -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(120))
    }

    #[test]
    fn idle_generates_nothing() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(1);
        let arrivals = BackgroundTraffic::idle().generate(&catalog, start, end, 0, &mut rng);
        assert!(arrivals.is_empty());
    }

    #[test]
    fn rate_is_approximately_respected() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(2);
        let arrivals = BackgroundTraffic::at_rate(10.0).generate(&catalog, start, end, 0, &mut rng);
        let expected = 10.0 * 120.0;
        let n = arrivals.len() as f64;
        assert!((n - expected).abs() < expected * 0.2, "got {n} arrivals");
    }

    #[test]
    fn arrivals_are_ordered_and_inside_window() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(3);
        let arrivals = BackgroundTraffic::at_rate(4.2).generate(&catalog, start, end, 0, &mut rng);
        for pair in arrivals.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        assert!(arrivals
            .iter()
            .all(|r| r.arrival >= start && r.arrival < end));
    }

    #[test]
    fn ids_start_at_base_and_are_unique() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(4);
        let arrivals =
            BackgroundTraffic::at_rate(5.0).generate(&catalog, start, end, 7_000, &mut rng);
        assert!(arrivals.iter().all(|r| r.id >= 7_000));
        let mut ids: Vec<u64> = arrivals.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), arrivals.len());
    }

    #[test]
    fn paths_exist_in_catalog() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(5);
        let arrivals = BackgroundTraffic::at_rate(8.0).generate(&catalog, start, end, 0, &mut rng);
        for r in &arrivals {
            assert!(
                catalog.lookup(&r.path).is_some(),
                "background request for unknown path {}",
                r.path
            );
        }
    }

    #[test]
    fn mix_produces_multiple_classes() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng = SimRng::seed_from(6);
        let arrivals = BackgroundTraffic::at_rate(20.0).generate(&catalog, start, end, 0, &mut rng);
        let dynamic = arrivals
            .iter()
            .filter(|r| r.class == RequestClass::Dynamic)
            .count();
        let static_reqs = arrivals
            .iter()
            .filter(|r| r.class == RequestClass::Static)
            .count();
        assert!(dynamic > 0);
        assert!(static_reqs > 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let catalog = ContentCatalog::typical_site(1);
        let (start, end) = window();
        let mut rng_a = SimRng::seed_from(7);
        let mut rng_b = SimRng::seed_from(7);
        let a = BackgroundTraffic::at_rate(3.0).generate(&catalog, start, end, 0, &mut rng_a);
        let b = BackgroundTraffic::at_rate(3.0).generate(&catalog, start, end, 0, &mut rng_b);
        assert_eq!(a, b);
    }

    // ---------------------------------------------------------------
    // The compatibility pin: the adapter must reproduce the
    // pre-workload generator bit for bit — same requests *and* the same
    // final RNG state.  `reference_generate` below is a verbatim copy of
    // the generator this adapter replaced.
    // ---------------------------------------------------------------

    fn reference_sample_request(
        bg: &BackgroundTraffic,
        catalog: &ContentCatalog,
        arrival: SimTime,
        id: u64,
        rng: &mut SimRng,
    ) -> ServerRequest {
        let weights: [(usize, f64); 4] = [
            (0, bg.mix.head),
            (1, bg.mix.static_small),
            (2, bg.mix.static_large),
            (3, bg.mix.dynamic),
        ];
        let slot = if weights.iter().all(|(_, w)| *w <= 0.0) {
            0
        } else {
            *rng.weighted_choice(&weights)
        };
        let (class, path) = match slot {
            0 => (RequestClass::Head, catalog.base_page().path.clone()),
            1 => {
                let small: Vec<&crate::content::ObjectSpec> = catalog
                    .objects()
                    .iter()
                    .filter(|o| !o.kind.is_dynamic() && !o.is_large_object())
                    .collect();
                if small.is_empty() {
                    (RequestClass::Head, catalog.base_page().path.clone())
                } else {
                    let idx = rng.index(small.len());
                    (RequestClass::Static, small[idx].path.clone())
                }
            }
            2 => {
                let large = catalog.large_objects();
                if large.is_empty() {
                    (RequestClass::Head, catalog.base_page().path.clone())
                } else {
                    let idx = rng.index(large.len());
                    (RequestClass::Static, large[idx].path.clone())
                }
            }
            _ => {
                let queries = catalog.small_queries();
                if queries.is_empty() {
                    (RequestClass::Head, catalog.base_page().path.clone())
                } else {
                    let idx = rng.index(queries.len());
                    (RequestClass::Dynamic, queries[idx].path.clone())
                }
            }
        };
        ServerRequest {
            id,
            arrival,
            class,
            path,
            client_downlink: bg.client_downlink,
            client_rtt: bg.client_rtt,
            client_addr: 0x8000_0000 | (id % 4093) as u32,
            background: true,
        }
    }

    fn reference_generate(
        bg: &BackgroundTraffic,
        catalog: &ContentCatalog,
        start: SimTime,
        end: SimTime,
        id_base: u64,
        rng: &mut SimRng,
    ) -> Vec<ServerRequest> {
        let mut requests = Vec::new();
        if bg.rate_per_sec <= 0.0 || end <= start {
            return requests;
        }
        let mean_gap = 1.0 / bg.rate_per_sec;
        let mut t = start;
        let mut id = id_base;
        loop {
            let gap = SimDuration::from_secs_f64(rng.exponential(mean_gap));
            let gap = gap.max(SimDuration::from_micros(1));
            t += gap;
            if t >= end {
                break;
            }
            requests.push(reference_sample_request(bg, catalog, t, id, rng));
            id += 1;
        }
        requests
    }

    #[test]
    fn adapter_is_bit_identical_to_the_reference_generator() {
        let catalogs = [
            ContentCatalog::typical_site(1),
            ContentCatalog::lab_validation(),
            // A site with no small statics, no large objects and no
            // queries: exercises every HEAD fallback.
            ContentCatalog::new(
                crate::content::ObjectSpec::static_object(
                    "/only.html",
                    crate::content::ObjectKind::Text,
                    2048,
                ),
                vec![],
            ),
        ];
        let mixes = [
            BackgroundMix::default(),
            MixWeights::downloads(),
            // Degenerate all-zero mix: the HEAD-only path, no
            // weighted-choice draw.
            MixWeights {
                head: 0.0,
                static_small: 0.0,
                static_large: 0.0,
                dynamic: 0.0,
            },
        ];
        for (catalog_index, catalog) in catalogs.iter().enumerate() {
            for (mix_index, mix) in mixes.iter().enumerate() {
                for (seed, rate, window_secs, id_base) in [
                    (11u64, 0.15, 200u64, 0u64),
                    (12, 4.2, 120, 1_000_000_000),
                    (13, 20.3, 60, 77),
                    (14, 120.0, 30, 5),
                ] {
                    let bg = BackgroundTraffic {
                        rate_per_sec: rate,
                        mix: *mix,
                        ..BackgroundTraffic::idle()
                    };
                    let start = SimTime::ZERO + SimDuration::from_secs(seed);
                    let end = start + SimDuration::from_secs(window_secs);
                    let mut rng_new = SimRng::seed_from(seed * 1000 + rate as u64);
                    let mut rng_ref = rng_new.clone();
                    let new = bg.generate(catalog, start, end, id_base, &mut rng_new);
                    let reference =
                        reference_generate(&bg, catalog, start, end, id_base, &mut rng_ref);
                    assert_eq!(
                        new, reference,
                        "adapter diverged (catalog {catalog_index}, mix {mix_index}, \
                         seed {seed}, rate {rate})"
                    );
                    // The caller's RNG must also end in the same state.
                    assert_eq!(
                        rng_new.next_u64(),
                        rng_ref.next_u64(),
                        "RNG state diverged (catalog {catalog_index}, mix {mix_index}, \
                         seed {seed}, rate {rate})"
                    );
                }
            }
        }
    }

    #[test]
    fn workload_spec_round_trips_the_background_parameters() {
        let bg = BackgroundTraffic::at_rate(6.5);
        let spec = bg.workload_spec();
        assert_eq!(spec.sources.len(), 1);
        assert!((spec.mean_request_rate() - 6.5).abs() < 1e-12);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn session_workloads_share_addresses_within_a_session() {
        let catalog = ContentCatalog::typical_site(2);
        let spec = WorkloadSpec::sessions(
            ArrivalProcess::Poisson { rate_per_sec: 0.3 },
            SessionModel::browsing(),
            ClientSpec::default(),
        );
        let master = SimRng::seed_from(21);
        let requests: Vec<ServerRequest> = WorkloadStream::new(
            &spec,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(600),
            0,
            &master,
            CatalogSampler::background(&catalog),
        )
        .collect();
        assert!(requests.len() > 100, "got {}", requests.len());
        // Fewer distinct addresses than requests: sessions reuse theirs.
        let mut addrs: Vec<u32> = requests.iter().map(|r| r.client_addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert!(addrs.len() * 2 < requests.len());
        // Every path resolves (the catalog has all classes).
        assert!(requests.iter().all(|r| catalog.lookup(&r.path).is_some()));
        assert!(requests.iter().all(|r| r.background));
    }

    #[test]
    fn kind_fallbacks_survive_a_minimal_catalog() {
        // A base-page-only site: every session kind falls back to the base
        // page instead of panicking.
        let catalog = ContentCatalog::new(
            crate::content::ObjectSpec::static_object(
                "/home.html",
                crate::content::ObjectKind::Text,
                1024,
            ),
            vec![],
        );
        let spec = WorkloadSpec::empty().with_source(SourceSpec {
            label: "sessions".to_string(),
            client: ClientSpec::default(),
            kind: SourceKind::Open {
                arrivals: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
                requests: RequestModel::Sessions(SessionModel::browsing()),
            },
        });
        let master = SimRng::seed_from(31);
        let requests: Vec<ServerRequest> = WorkloadStream::new(
            &spec,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(120),
            0,
            &master,
            CatalogSampler::background(&catalog),
        )
        .collect();
        assert!(!requests.is_empty());
        assert!(requests.iter().all(|r| r.path == "/home.html"));
    }
}
