//! The event-driven server simulation.
//!
//! [`ServerEngine::run`] takes a batch of timed request arrivals (MFC
//! requests plus any background traffic), pushes each request through the
//! server's sub-systems — worker admission, request parsing on the CPU,
//! static content from cache or disk, dynamic content through the
//! configured handler and the database, and finally the response transfer
//! over the shared access link — and reports when every response reached
//! its client together with a resource-utilization snapshot.
//!
//! The per-request pipeline is:
//!
//! ```text
//!   arrival ──► worker admission ──► parse (CPU) ──┬─► HEAD: respond
//!        (listen queue / refuse)                   ├─► static: cache? ──► disk ──► transfer
//!                                                  └─► dynamic: handler ──► DB ──► transfer
//!   transfer: shared access link (max–min fair) + client downlink + TCP window
//! ```
//!
//! Everything that can make a response slower under load — processor
//! sharing on the CPU, serialization at the disk, handler and connection
//! pools, memory overcommit, link sharing — emerges from this pipeline; the
//! MFC layer above only ever sees the resulting response times.

use std::collections::VecDeque;

use mfc_simcore::{EventHandle, EventQueue, SimDuration, SimTime, TimeWeighted};
use mfc_simnet::{Bandwidth, FlowId};
use mfc_topology::{BuiltTopology, TopologySpec};

use crate::cache::CacheState;
use crate::config::{DynamicHandler, ServerConfig};
use crate::content::ContentCatalog;
use crate::control::ServerControl;
use crate::request::{ArrivalRecord, RequestClass, RequestOutcome, RequestStatus, ServerRequest};
use crate::resource::{FifoResource, MemoryTracker, PsResource, SlotPool};
use crate::telemetry::UtilizationReport;

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-request outcomes, in the same order as the submitted requests.
    pub outcomes: Vec<RequestOutcome>,
    /// Server resource usage over the run window.
    pub utilization: UtilizationReport,
    /// The server's access log for the run.
    pub arrival_log: Vec<ArrivalRecord>,
}

/// A configured simulated server ready to process request batches.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{SimDuration, SimTime};
/// use mfc_webserver::{CacheState, ContentCatalog, RequestClass, ServerConfig, ServerEngine,
///                     ServerRequest};
///
/// let engine = ServerEngine::new(ServerConfig::lab_apache(), ContentCatalog::lab_validation());
/// let mut cache = CacheState::new();
/// let req = ServerRequest {
///     id: 1,
///     arrival: SimTime::ZERO,
///     class: RequestClass::Head,
///     path: "/index.html".to_string(),
///     client_downlink: 1e7,
///     client_rtt: SimDuration::from_millis(40),
///     client_addr: 1,
///     background: false,
/// };
/// let result = engine.run(vec![req], &mut cache);
/// assert!(result.outcomes[0].is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ServerEngine {
    config: ServerConfig,
    catalog: ContentCatalog,
    topology: TopologySpec,
}

impl ServerEngine {
    /// Creates an engine for a server with the given configuration and
    /// hosted content, reached directly over its access link (no shared
    /// wide-area bottlenecks).
    pub fn new(config: ServerConfig, catalog: ContentCatalog) -> Self {
        ServerEngine {
            config,
            catalog,
            topology: TopologySpec::direct(),
        }
    }

    /// Places the given shared-bottleneck WAN topology between the clients
    /// and this server's access link: response transfers are routed over
    /// each client's vantage-group transit link (plus optional backbone and
    /// cross traffic) and the access link, all sharing max–min fairly.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.set_topology(topology);
        self
    }

    /// In-place form of [`ServerEngine::with_topology`].
    pub fn set_topology(&mut self, topology: TopologySpec) {
        topology.validate().expect("invalid topology spec");
        self.topology = topology;
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The hosted content.
    pub fn catalog(&self) -> &ContentCatalog {
        &self.catalog
    }

    /// The WAN topology in front of the server.
    pub fn topology(&self) -> &TopologySpec {
        &self.topology
    }

    /// Processes a batch of requests to completion.
    ///
    /// `cache` carries object/query cache warmth across runs (epochs).
    /// Outcomes are returned in the order the requests were supplied.
    pub fn run(&self, requests: Vec<ServerRequest>, cache: &mut CacheState) -> RunResult {
        let mut session = self.session(std::mem::replace(cache, CacheState::new()));
        for request in requests {
            session.push_request(request);
        }
        let (result, warmed) = session.finish();
        *cache = warmed;
        result
    }

    /// Processes a lazily generated, time-ordered request stream to
    /// completion without materializing it first: each request is pushed as
    /// the session's virtual clock reaches its arrival, so the pending
    /// event set stays bounded by the in-flight load instead of the total
    /// request count.  This is how a workload stream of millions of
    /// sessions runs through the engine.
    ///
    /// Requests must arrive in non-decreasing arrival order (a
    /// [`mfc_workload::WorkloadStream`] is by construction).  Outcomes come
    /// back in the order the stream produced them.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the stream is not time-ordered.
    pub fn run_streamed<I>(&self, requests: I, cache: &mut CacheState) -> RunResult
    where
        I: IntoIterator<Item = ServerRequest>,
    {
        let mut session = self.session(std::mem::replace(cache, CacheState::new()));
        let mut last_arrival: Option<SimTime> = None;
        for request in requests {
            debug_assert!(
                last_arrival.is_none_or(|t| request.arrival >= t),
                "streamed requests must be time-ordered"
            );
            last_arrival = Some(request.arrival);
            // Retire everything the server finished before this arrival,
            // then admit it.
            session.run_until(request.arrival);
            session.push_request(request);
        }
        let (result, warmed) = session.finish();
        *cache = warmed;
        result
    }

    /// Processes a batch of requests with a [`ServerControl`] loop attached:
    /// the control sees every arrival (and may shed or throttle it) and a
    /// telemetry tick at its configured interval, through which it can
    /// reshape the server's link and CPU capacity mid-run.
    ///
    /// Replica-count actions are ignored — a single engine cannot scale
    /// out; use [`crate::ServerCluster::run_controlled`] for that.
    pub fn run_controlled(
        &self,
        requests: Vec<ServerRequest>,
        cache: &mut CacheState,
        control: &mut dyn ServerControl,
    ) -> RunResult {
        let mut caches = vec![std::mem::replace(cache, CacheState::new())];
        let mut active = 1;
        let result = crate::cluster::drive_controlled(
            self,
            &mut caches,
            &mut active,
            crate::cluster::BalancePolicy::RoundRobin,
            /*allow_scaling=*/ false,
            requests,
            control,
        );
        *cache = caches.swap_remove(0);
        result
    }

    /// Opens a tick-driven session against this server.  The session owns
    /// the cache state for its duration; [`EngineSession::finish`] hands it
    /// back warmed.
    pub fn session(&self, cache: CacheState) -> EngineSession<'_> {
        EngineSession::new(&self.config, &self.catalog, &self.topology, cache)
    }
}

/// Phase a request is currently in; used to route resource-completion
/// events back to the right next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting in the listen queue for a worker.
    AwaitWorker,
    /// Parsing / basic HTTP processing on the CPU.
    Parse,
    /// Fork-per-request handler start-up on the CPU.
    Fork,
    /// Waiting for a persistent-pool handler slot.
    AwaitHandler,
    /// Waiting for a database connection slot.
    AwaitDb,
    /// Executing the database query on the CPU.
    Db,
    /// Response bytes in flight on the access link.
    Transfer,
    /// Finished (outcome recorded).
    Done,
}

#[derive(Debug, Clone)]
struct InFlight {
    req: ServerRequest,
    phase: Phase,
    body_bytes: u64,
    /// Memory charged for a fork-per-request handler, released at the end.
    fork_memory: u64,
    /// Whether this request occupies a persistent-pool handler slot.
    holds_handler: bool,
    /// Whether this request occupies a database connection slot.
    holds_db: bool,
    /// Database CPU work (seconds) computed when the query was classified,
    /// consumed when a connection slot is obtained.
    pending_db_work: f64,
    /// Extra latency added to the response completion for TCP slow start.
    slow_start: SimDuration,
    outcome: Option<RequestOutcome>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    CpuCheck,
    NetCheck,
    DiskDone(usize),
}

/// A tick-driven, incrementally-fed run of one server — the mid-run
/// mutation seam the dynamics layer drives.
///
/// Unlike the fire-and-forget [`ServerEngine::run`], a session accepts
/// request arrivals while it is running ([`EngineSession::push_request`]),
/// advances virtual time in bounded steps ([`EngineSession::run_until`]),
/// exposes instantaneous telemetry between steps, and lets a control loop
/// mutate link and CPU capacity without disturbing in-flight work.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{SimDuration, SimTime};
/// use mfc_webserver::{CacheState, ContentCatalog, RequestClass, ServerConfig, ServerEngine,
///                     ServerRequest};
///
/// let engine = ServerEngine::new(ServerConfig::lab_apache(), ContentCatalog::lab_validation());
/// let mut session = engine.session(CacheState::new());
/// session.push_request(ServerRequest {
///     id: 1,
///     arrival: SimTime::ZERO,
///     class: RequestClass::Head,
///     path: "/index.html".to_string(),
///     client_downlink: 1e7,
///     client_rtt: SimDuration::from_millis(40),
///     client_addr: 1,
///     background: false,
/// });
/// // At t=0 the request has been admitted and is parsing on the CPU.
/// session.run_until(SimTime::ZERO);
/// assert_eq!(session.in_flight(), 1);
/// assert_eq!(session.busy_workers(), 1);
/// let (result, _cache) = session.finish();
/// assert!(result.outcomes[0].is_ok());
/// ```
pub struct EngineSession<'a> {
    config: &'a ServerConfig,
    catalog: &'a ContentCatalog,
    cache: CacheState,
    queue: EventQueue<Event>,
    requests: Vec<InFlight>,
    workers: SlotPool,
    listen_queue: VecDeque<usize>,
    handler_pool: SlotPool,
    db_pool: SlotPool,
    cpu: PsResource,
    disk: FifoResource,
    memory: MemoryTracker,
    /// The WAN graph responses cross: the access link at the root, plus
    /// any shared transit/backbone links (and persistent cross traffic)
    /// from the engine's topology.
    net: BuiltTopology,
    topology: &'a TopologySpec,
    cpu_event: Option<EventHandle>,
    net_event: Option<EventHandle>,
    now: SimTime,
    start: SimTime,
    end: SimTime,
    /// Whether the gauges have been anchored at the run's start time (the
    /// earliest arrival pushed before the first step).
    started: bool,
    busy_workers: TimeWeighted,
    memory_series: TimeWeighted,
    arrival_log: Vec<ArrivalRecord>,
    refused: u64,
    completed: u64,
    /// Requests whose outcome has been recorded (any status).
    settled: u64,
}

/// Flow ids at or above this value belong to persistent cross-traffic
/// flows injected from the topology spec; they never complete, so they can
/// never collide with a request's submission index.
const CROSS_FLOW_BASE: u64 = 1 << 62;

impl<'a> EngineSession<'a> {
    fn new(
        config: &'a ServerConfig,
        catalog: &'a ContentCatalog,
        topology: &'a TopologySpec,
        cache: CacheState,
    ) -> Self {
        let handler_capacity = match config.dynamic_handler {
            DynamicHandler::ForkPerRequest { .. } => u32::MAX,
            DynamicHandler::PersistentPool { pool_size, .. } => pool_size,
        };
        let mut memory = MemoryTracker::new(config.hardware.ram_bytes, config.swap_penalty);
        memory.allocate(config.baseline_memory);
        if let DynamicHandler::PersistentPool { pool_memory, .. } = config.dynamic_handler {
            memory.allocate(pool_memory);
        }
        let cpu_capacity = f64::from(config.hardware.cpu_cores) * config.hardware.cpu_speed;
        let mut net = topology.build(config.access_link);
        // Persistent cross traffic occupies its transit links from the
        // start of time; the flows never complete and never surface as
        // request completions.
        let mut cross_seq = CROSS_FLOW_BASE;
        for &(route, count, rate) in &net.cross {
            for _ in 0..count {
                net.graph
                    .start_flow(FlowId(cross_seq), route, f64::INFINITY, rate, SimTime::ZERO);
                cross_seq += 1;
            }
        }
        EngineSession {
            config,
            catalog,
            cache,
            queue: EventQueue::new(),
            requests: Vec::new(),
            workers: SlotPool::new(config.workers.max_workers),
            listen_queue: VecDeque::new(),
            handler_pool: SlotPool::new(handler_capacity),
            db_pool: SlotPool::new(config.database.max_concurrent_queries),
            cpu: PsResource::new(cpu_capacity, config.hardware.cpu_speed.max(f64::EPSILON)),
            disk: FifoResource::new(),
            memory,
            net,
            topology,
            cpu_event: None,
            net_event: None,
            now: SimTime::ZERO,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            started: false,
            busy_workers: TimeWeighted::new(SimTime::ZERO, 0.0),
            memory_series: TimeWeighted::new(SimTime::ZERO, 0.0),
            arrival_log: Vec::new(),
            refused: 0,
            completed: 0,
            settled: 0,
        }
    }

    /// Submits a request to the session.  Outcomes are reported in push
    /// order by [`EngineSession::finish`].  Arrivals pushed after stepping
    /// has begun must not lie in the session's past.
    pub fn push_request(&mut self, request: ServerRequest) {
        if !self.started {
            self.start = if self.requests.is_empty() {
                request.arrival
            } else {
                self.start.min(request.arrival)
            };
            self.now = self.start;
            self.end = self.start;
        }
        let idx = self.requests.len();
        self.queue.schedule(request.arrival, Event::Arrival(idx));
        self.requests.push(InFlight {
            req: request,
            phase: Phase::AwaitWorker,
            body_bytes: 0,
            fork_memory: 0,
            holds_handler: false,
            holds_db: false,
            pending_db_work: 0.0,
            slow_start: SimDuration::ZERO,
            outcome: None,
        });
    }

    /// Anchors the time-weighted gauges at the run's start.  A no-op until
    /// the first request is pushed, and after the first step.
    fn ensure_started(&mut self) {
        if self.started || self.requests.is_empty() {
            return;
        }
        self.started = true;
        self.busy_workers = TimeWeighted::new(self.start, 0.0);
        self.memory_series = TimeWeighted::new(self.start, self.memory.used() as f64);
    }

    /// Processes every event at or before `limit` and advances the session
    /// clock to `limit`, so telemetry reads are instantaneous at that time.
    pub fn run_until(&mut self, limit: SimTime) {
        self.ensure_started();
        while let Some(time) = self.queue.peek_time() {
            if time > limit {
                break;
            }
            let (time, event) = self.queue.pop().expect("peeked event exists");
            self.now = self.now.max(time);
            self.dispatch(event);
            self.reschedule_cpu();
            self.reschedule_net();
        }
        if self.started {
            self.now = self.now.max(limit);
        }
    }

    /// The time of the next pending event, if any work remains.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Requests admitted to the session whose outcome is not yet recorded.
    pub fn in_flight(&self) -> u64 {
        self.requests.len() as u64 - self.settled
    }

    /// Requests pushed to this session so far (the local submission index
    /// the next [`EngineSession::push_request`] will get).
    pub fn pushed(&self) -> usize {
        self.requests.len()
    }

    /// Busy worker slots right now.
    pub fn busy_workers(&self) -> u32 {
        self.workers.busy()
    }

    /// Connections waiting in the listen queue right now.
    pub fn queued(&self) -> usize {
        self.listen_queue.len()
    }

    /// Instantaneous CPU utilization in 0–1.
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu.utilization()
    }

    /// Instantaneous access-link utilization in 0–1.
    pub fn link_utilization(&self) -> f64 {
        let access = self.net.access;
        (self.net.graph.link_utilization_bytes_per_sec(access)
            / self.net.graph.link_capacity(access))
        .clamp(0.0, 1.0)
    }

    /// Resident memory in bytes right now.
    pub fn memory_used(&self) -> u64 {
        self.memory.used()
    }

    /// Requests completed successfully so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests refused by listen-queue overflow so far.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Changes the outbound access-link capacity mid-run.  In-flight
    /// transfers keep their remaining bytes and are re-shared immediately.
    /// Transit links from the topology are untouched — they are WAN
    /// infrastructure, not the server's.
    pub fn set_access_link(&mut self, capacity: Bandwidth, now: SimTime) {
        let access = self.net.access;
        self.net
            .graph
            .set_link_capacity(access, capacity.max(1.0), now.max(self.now));
        self.reschedule_net();
    }

    /// Scales total CPU capacity to `factor` × the configured hardware.
    pub fn scale_cpu(&mut self, factor: f64, now: SimTime) {
        let nominal = f64::from(self.config.hardware.cpu_cores) * self.config.hardware.cpu_speed;
        self.cpu
            .set_capacity((nominal * factor).max(f64::EPSILON), now.max(self.now));
        self.reschedule_cpu();
    }

    /// Runs the session to completion and returns the merged result plus
    /// the warmed cache state.
    pub fn finish(mut self) -> (RunResult, CacheState) {
        self.drain();
        self.into_result()
    }

    fn drain(&mut self) {
        self.ensure_started();
        while let Some((time, event)) = self.queue.pop() {
            self.now = self.now.max(time);
            self.dispatch(event);
            self.reschedule_cpu();
            self.reschedule_net();
        }
        self.end = self.end.max(self.now);
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Arrival(idx) => self.on_arrival(idx),
            Event::CpuCheck => self.on_cpu_check(),
            Event::NetCheck => self.on_net_check(),
            Event::DiskDone(idx) => self.on_disk_done(idx),
        }
    }

    fn on_arrival(&mut self, idx: usize) {
        let (id, background, class, path) = {
            let inflight = &self.requests[idx];
            (
                inflight.req.id,
                inflight.req.background,
                inflight.req.class,
                inflight.req.path.clone(),
            )
        };
        self.arrival_log.push(ArrivalRecord {
            id,
            arrival: self.now,
            background,
        });
        // Unknown paths are rejected before consuming a worker; HEAD
        // requests are always served against the base page.
        if class != RequestClass::Head && self.catalog.lookup(&path).is_none() {
            self.complete(idx, RequestStatus::NotFound, self.now, 0);
            return;
        }
        if self.workers.try_acquire(idx as u64) {
            self.admit(idx);
        } else if self.listen_queue.len() < self.config.workers.listen_queue as usize {
            self.requests[idx].phase = Phase::AwaitWorker;
            self.listen_queue.push_back(idx);
        } else {
            self.refused += 1;
            self.complete(idx, RequestStatus::Refused, self.now, 0);
        }
    }

    /// A worker slot has been assigned to request `idx`: charge its memory
    /// and start parsing.
    fn admit(&mut self, idx: usize) {
        self.memory.allocate(self.config.workers.memory_per_worker);
        self.sample_gauges();
        self.requests[idx].phase = Phase::Parse;
        // HEAD requests (and GETs of the base page) still require the
        // server to render the base page, so they carry its generation
        // cost in addition to the per-request protocol overhead.
        let base_page_cost = if self.requests[idx].req.class == RequestClass::Head
            || self.requests[idx].req.path == self.catalog.base_page().path
        {
            self.config.workers.base_page_cpu
        } else {
            0.0
        };
        let work = (self.config.workers.per_request_cpu + base_page_cost) * self.memory.slowdown();
        self.cpu.add_task(idx as u64, work, self.now);
    }

    fn on_cpu_check(&mut self) {
        while let Some((time, id)) = self.cpu.peek_completion() {
            if time > self.now {
                break;
            }
            self.cpu.remove_task(id, self.now);
            let idx = id as usize;
            match self.requests[idx].phase {
                Phase::Parse => self.after_parse(idx),
                Phase::Fork => self.enter_db_stage(idx),
                Phase::Db => self.after_db(idx),
                other => unreachable!("unexpected CPU completion in phase {other:?}"),
            }
        }
    }

    fn after_parse(&mut self, idx: usize) {
        let class = self.requests[idx].req.class;
        match class {
            RequestClass::Head => {
                // Headers only: the response fits in one segment; treat the
                // send as instantaneous at server side and account only for
                // the propagation back to the client.
                let rtt = self.requests[idx].req.client_rtt;
                let completion = self.now + rtt.mul_f64(0.5);
                self.release_worker(idx);
                self.complete(idx, RequestStatus::Ok, completion, 0);
            }
            RequestClass::Static => {
                let (path, size) = {
                    let object = self
                        .catalog
                        .lookup(&self.requests[idx].req.path)
                        .expect("static path verified at arrival");
                    (object.path.clone(), object.size_bytes)
                };
                self.requests[idx].body_bytes = size;
                if self.cache.object_lookup(&path, &self.config.object_cache) {
                    self.start_transfer(idx);
                } else {
                    let service_secs = self.config.hardware.disk_seek.as_secs_f64()
                        + size as f64 / self.config.hardware.disk_bandwidth;
                    let service = SimDuration::from_secs_f64(service_secs * self.memory.slowdown());
                    let delay = self.disk.enqueue(idx as u64, self.now, service);
                    self.queue.schedule(self.now + delay, Event::DiskDone(idx));
                }
            }
            RequestClass::Dynamic => {
                let (size, rows, cacheable, path) = {
                    let object = self
                        .catalog
                        .lookup(&self.requests[idx].req.path)
                        .expect("dynamic path verified at arrival");
                    (
                        object.size_bytes,
                        object.db_rows,
                        object.cacheable,
                        object.path.clone(),
                    )
                };
                self.requests[idx].body_bytes = size;
                // Pre-compute the database work so the query-cache decision
                // is made at classification time (the hit/miss counters then
                // reflect what the back end actually did).
                let db = &self.config.database;
                let work = if self.cache.query_lookup(&path, cacheable, db) {
                    db.cache_hit_cpu
                } else {
                    self.cache.query_insert(&path, cacheable, db);
                    db.base_query_cpu + rows as f64 / 1_000.0 * db.cpu_per_1k_rows
                };
                self.requests[idx].pending_db_work = work;
                match self.config.dynamic_handler {
                    DynamicHandler::ForkPerRequest {
                        memory_per_process,
                        fork_cpu,
                    } => {
                        self.requests[idx].fork_memory = memory_per_process;
                        self.memory.allocate(memory_per_process);
                        self.sample_gauges();
                        self.requests[idx].phase = Phase::Fork;
                        let work = fork_cpu * self.memory.slowdown();
                        self.cpu.add_task(idx as u64, work, self.now);
                    }
                    DynamicHandler::PersistentPool { .. } => {
                        if self.handler_pool.try_acquire(idx as u64) {
                            self.requests[idx].holds_handler = true;
                            self.enter_db_stage(idx);
                        } else {
                            self.requests[idx].phase = Phase::AwaitHandler;
                            self.handler_pool.enqueue(idx as u64);
                        }
                    }
                }
            }
        }
    }

    /// The request has a handler (forked or pooled) and now needs a
    /// database connection.
    fn enter_db_stage(&mut self, idx: usize) {
        if self.db_pool.try_acquire(idx as u64) {
            self.requests[idx].holds_db = true;
            self.start_db_work(idx);
        } else {
            self.requests[idx].phase = Phase::AwaitDb;
            self.db_pool.enqueue(idx as u64);
        }
    }

    fn start_db_work(&mut self, idx: usize) {
        self.requests[idx].phase = Phase::Db;
        let work = self.requests[idx].pending_db_work * self.memory.slowdown();
        self.cpu.add_task(idx as u64, work, self.now);
    }

    fn after_db(&mut self, idx: usize) {
        // Release the database connection and hand it to the next waiter.
        if self.requests[idx].holds_db {
            self.requests[idx].holds_db = false;
            if let Some(next) = self.db_pool.release_and_next() {
                let next_idx = next as usize;
                self.requests[next_idx].holds_db = true;
                self.start_db_work(next_idx);
            }
        }
        // A pooled handler is done once the content is generated; a forked
        // handler keeps its memory until the response is fully sent.
        if self.requests[idx].holds_handler {
            self.requests[idx].holds_handler = false;
            if let Some(next) = self.handler_pool.release_and_next() {
                let next_idx = next as usize;
                self.requests[next_idx].holds_handler = true;
                self.enter_db_stage(next_idx);
            }
        }
        self.start_transfer(idx);
    }

    fn on_disk_done(&mut self, idx: usize) {
        let (path, size) = {
            let inflight = &self.requests[idx];
            (inflight.req.path.clone(), inflight.body_bytes)
        };
        self.cache
            .object_insert(&path, size, &self.config.object_cache);
        self.start_transfer(idx);
    }

    fn start_transfer(&mut self, idx: usize) {
        let bytes = self.requests[idx].body_bytes;
        let rtt = self.requests[idx].req.client_rtt;
        if bytes == 0 {
            let completion = self.now + rtt.mul_f64(0.5);
            self.release_worker(idx);
            self.complete(idx, RequestStatus::Ok, completion, 0);
            return;
        }
        self.requests[idx].phase = Phase::Transfer;
        self.requests[idx].slow_start = self.config.tcp.slow_start_delay(bytes, rtt);
        let cap = self.requests[idx]
            .req
            .client_downlink
            .min(self.config.tcp.window_limited_rate(rtt));
        // The response crosses the client's vantage group's route: its
        // shared transit link(s) plus the access link.  The client's own
        // downlink and TCP window stay a private per-flow cap.  Background
        // requests come from unrelated clients all over the Internet, not
        // from behind the probe groups' transit links, so they take the
        // backbone + access route only.
        let route = if self.requests[idx].req.background {
            self.net.background_route
        } else {
            let group = self.topology.group_of(self.requests[idx].req.client_addr);
            self.net.group_routes[group]
        };
        self.net
            .graph
            .start_flow(FlowId(idx as u64), route, bytes as f64, cap, self.now);
    }

    fn on_net_check(&mut self) {
        while let Some((time, flow)) = self.net.graph.peek_completion() {
            if time > self.now {
                break;
            }
            self.net.graph.finish_flow(flow, self.now);
            debug_assert!(
                flow.0 < CROSS_FLOW_BASE,
                "a persistent cross-traffic flow can never complete"
            );
            let idx = flow.0 as usize;
            let inflight = &self.requests[idx];
            let completion = self.now + inflight.slow_start + inflight.req.client_rtt.mul_f64(0.5);
            let bytes = inflight.body_bytes;
            self.release_worker(idx);
            self.complete(idx, RequestStatus::Ok, completion, bytes);
        }
    }

    /// Frees the worker slot held by `idx` (and any fork-per-request
    /// memory), then admits the next queued connection if there is one.
    fn release_worker(&mut self, idx: usize) {
        self.memory.release(self.config.workers.memory_per_worker);
        let fork_memory = self.requests[idx].fork_memory;
        if fork_memory > 0 {
            self.memory.release(fork_memory);
            self.requests[idx].fork_memory = 0;
        }
        self.sample_gauges();
        match self.workers.release_and_next() {
            Some(_) => {
                // The released slot passes to the head of the listen queue.
                if let Some(next_idx) = self.listen_queue.pop_front() {
                    self.admit(next_idx);
                } else {
                    // The SlotPool's own queue is only used for handler and
                    // DB pools; worker admission uses `listen_queue`, so a
                    // Some here without a queued connection cannot happen.
                    unreachable!("worker handoff without a queued connection");
                }
            }
            None => {
                if let Some(next_idx) = self.listen_queue.pop_front() {
                    // A slot is free again; take it for the queued request.
                    let acquired = self.workers.try_acquire(next_idx as u64);
                    debug_assert!(acquired, "a just-released worker slot must be free");
                    self.admit(next_idx);
                }
            }
        }
    }

    fn complete(&mut self, idx: usize, status: RequestStatus, completion: SimTime, bytes: u64) {
        let inflight = &mut self.requests[idx];
        debug_assert!(inflight.outcome.is_none(), "request completed twice");
        inflight.phase = Phase::Done;
        inflight.outcome = Some(RequestOutcome {
            id: inflight.req.id,
            arrival: inflight.req.arrival,
            status,
            completion,
            body_bytes: bytes,
            background: inflight.req.background,
        });
        if status == RequestStatus::Ok {
            self.completed += 1;
        }
        self.settled += 1;
        self.end = self.end.max(completion).max(self.now);
    }

    fn sample_gauges(&mut self) {
        self.busy_workers
            .set(self.now, f64::from(self.workers.busy()));
        self.memory_series.set(self.now, self.memory.used() as f64);
    }

    // The reschedulers use the pure peeks: completion times are absolute
    // and stable between resource mutations, so there is no need to advance
    // the fluid models on every event just to read the next deadline.

    fn reschedule_cpu(&mut self) {
        if let Some(handle) = self.cpu_event.take() {
            self.queue.cancel(handle);
        }
        if let Some((time, _)) = self.cpu.peek_completion() {
            let time = time.max(self.now);
            self.cpu_event = Some(self.queue.schedule(time, Event::CpuCheck));
        }
    }

    fn reschedule_net(&mut self) {
        if let Some(handle) = self.net_event.take() {
            self.queue.cancel(handle);
        }
        if let Some((time, _)) = self.net.graph.peek_completion() {
            let time = time.max(self.now);
            self.net_event = Some(self.queue.schedule(time, Event::NetCheck));
        }
    }

    fn into_result(mut self) -> (RunResult, CacheState) {
        let window = self.end.saturating_since(self.start);
        let cpu_capacity =
            f64::from(self.config.hardware.cpu_cores) * self.config.hardware.cpu_speed;
        let cpu_utilization = if window.as_secs_f64() > 0.0 {
            (self.cpu.work_done() / (cpu_capacity * window.as_secs_f64())).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let utilization = UtilizationReport {
            window,
            cpu_utilization,
            peak_memory_bytes: self.memory.peak(),
            mean_memory_bytes: self.memory_series.average_until(self.end),
            network_bytes_sent: self.net.graph.link_bytes_transferred(self.net.access) as u64,
            disk_operations: self.disk.operations(),
            mean_busy_workers: self.busy_workers.average_until(self.end),
            peak_busy_workers: self.workers.peak_busy(),
            refused_requests: self.refused,
            completed_requests: self.completed,
            shed_requests: 0,
            throttled_requests: 0,
            link_capacity: self.net.graph.link_capacity(self.net.access),
        };
        let mut outcomes = Vec::with_capacity(self.requests.len());
        for inflight in &mut self.requests {
            let outcome = inflight.outcome.take().unwrap_or(RequestOutcome {
                id: inflight.req.id,
                arrival: inflight.req.arrival,
                status: RequestStatus::Refused,
                completion: inflight.req.arrival,
                body_bytes: 0,
                background: inflight.req.background,
            });
            outcomes.push(outcome);
        }
        self.arrival_log.sort_by_key(|r| (r.arrival, r.id));
        (
            RunResult {
                outcomes,
                utilization,
                arrival_log: self.arrival_log,
            },
            self.cache,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatabaseConfig, HardwareSpec, ObjectCacheConfig, WorkerConfig};
    use mfc_simnet::mbps;

    fn head_request(id: u64, at_ms: u64) -> ServerRequest {
        ServerRequest {
            id,
            arrival: SimTime::ZERO + SimDuration::from_millis(at_ms),
            class: RequestClass::Head,
            path: "/index.html".to_string(),
            client_downlink: 1e7,
            client_rtt: SimDuration::from_millis(40),
            client_addr: id as u32,
            background: false,
        }
    }

    fn static_request(id: u64, at_ms: u64, path: &str) -> ServerRequest {
        ServerRequest {
            id,
            arrival: SimTime::ZERO + SimDuration::from_millis(at_ms),
            class: RequestClass::Static,
            path: path.to_string(),
            client_downlink: 1e8,
            client_rtt: SimDuration::from_millis(40),
            client_addr: id as u32,
            background: false,
        }
    }

    fn query_request(id: u64, at_ms: u64, path: &str) -> ServerRequest {
        ServerRequest {
            id,
            arrival: SimTime::ZERO + SimDuration::from_millis(at_ms),
            class: RequestClass::Dynamic,
            path: path.to_string(),
            client_downlink: 1e8,
            client_rtt: SimDuration::from_millis(40),
            client_addr: id as u32,
            background: false,
        }
    }

    fn lab_engine() -> ServerEngine {
        ServerEngine::new(ServerConfig::lab_apache(), ContentCatalog::lab_validation())
    }

    #[test]
    fn head_request_completes_quickly() {
        let engine = lab_engine();
        let mut cache = CacheState::new();
        let result = engine.run(vec![head_request(1, 0)], &mut cache);
        let outcome = &result.outcomes[0];
        assert!(outcome.is_ok());
        assert_eq!(outcome.body_bytes, 0);
        // Parse cost + half an RTT: well under 50 ms.
        assert!(outcome.latency() < SimDuration::from_millis(50));
    }

    #[test]
    fn unknown_path_is_not_found() {
        let engine = lab_engine();
        let mut cache = CacheState::new();
        let result = engine.run(vec![static_request(1, 0, "/no/such/file")], &mut cache);
        assert_eq!(result.outcomes[0].status, RequestStatus::NotFound);
    }

    #[test]
    fn static_request_cold_then_warm_cache() {
        let engine = lab_engine();
        let mut cache = CacheState::new();
        let cold = engine.run(
            vec![static_request(1, 0, "/objects/large_100k.bin")],
            &mut cache,
        );
        let warm = engine.run(
            vec![static_request(2, 0, "/objects/large_100k.bin")],
            &mut cache,
        );
        assert!(cold.outcomes[0].is_ok());
        assert!(warm.outcomes[0].is_ok());
        // The warm run skips the disk.
        assert_eq!(cold.utilization.disk_operations, 1);
        assert_eq!(warm.utilization.disk_operations, 0);
        assert!(warm.outcomes[0].latency() <= cold.outcomes[0].latency());
    }

    #[test]
    fn concurrent_large_transfers_share_the_access_link() {
        let engine = lab_engine();
        // Warm the cache so the disk is out of the picture.
        let mut cache = CacheState::new();
        engine.run(
            vec![static_request(0, 0, "/objects/large_100k.bin")],
            &mut cache,
        );
        let single = engine.run(
            vec![static_request(1, 0, "/objects/large_100k.bin")],
            &mut cache,
        );
        let crowd: Vec<ServerRequest> = (0..30)
            .map(|i| static_request(100 + i, 0, "/objects/large_100k.bin"))
            .collect();
        let crowded = engine.run(crowd, &mut cache);
        let single_latency = single.outcomes[0].latency();
        let median_crowded = {
            let mut latencies: Vec<f64> = crowded
                .outcomes
                .iter()
                .map(|o| o.latency().as_millis_f64())
                .collect();
            latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
            latencies[latencies.len() / 2]
        };
        assert!(
            median_crowded > 3.0 * single_latency.as_millis_f64(),
            "30 concurrent 100KB transfers over 10 Mbit/s must contend: single={}ms crowd={}ms",
            single_latency.as_millis_f64(),
            median_crowded
        );
        // All bytes were accounted for on the link (allowing sub-byte fluid
        // rounding per flow).
        assert!(crowded.utilization.network_bytes_sent >= 30 * 100 * 1024 - 30);
    }

    #[test]
    fn query_cache_makes_repeated_queries_cheap() {
        let engine = lab_engine();
        let mut cache = CacheState::new();
        let first = engine.run(vec![query_request(1, 0, "/cgi/stats?table=t1")], &mut cache);
        let second = engine.run(vec![query_request(2, 0, "/cgi/stats?table=t1")], &mut cache);
        assert!(first.outcomes[0].is_ok());
        assert!(second.outcomes[0].is_ok());
        assert!(second.outcomes[0].latency() < first.outcomes[0].latency());
        assert_eq!(cache.query_stats().0, 1);
    }

    #[test]
    fn fork_per_request_grows_memory_with_crowd() {
        let engine = ServerEngine::new(
            ServerConfig {
                database: DatabaseConfig {
                    query_cache: false,
                    ..DatabaseConfig::default()
                },
                ..ServerConfig::lab_apache()
            },
            ContentCatalog::lab_validation(),
        );
        let mut cache = CacheState::new();
        let small: Vec<ServerRequest> = (0..5)
            .map(|i| query_request(i, 0, "/cgi/stats?table=t1"))
            .collect();
        let small_run = engine.run(small, &mut cache);
        let big: Vec<ServerRequest> = (0..50)
            .map(|i| query_request(i, 0, "/cgi/stats?table=t1"))
            .collect();
        let big_run = engine.run(big, &mut cache);
        assert!(
            big_run.utilization.peak_memory_bytes > small_run.utilization.peak_memory_bytes,
            "memory must grow with the number of concurrent forked handlers"
        );
    }

    #[test]
    fn mongrel_keeps_memory_flat() {
        let engine = ServerEngine::new(
            ServerConfig::lab_apache_mongrel(),
            ContentCatalog::lab_validation(),
        );
        let mut cache = CacheState::new();
        let small_run = engine.run(
            (0..5)
                .map(|i| query_request(i, 0, "/cgi/stats?table=t1"))
                .collect(),
            &mut cache,
        );
        let big_run = engine.run(
            (0..50)
                .map(|i| query_request(i, 0, "/cgi/stats?table=t1"))
                .collect(),
            &mut cache,
        );
        // Peak memory only differs by the worker slots, not by 45 handler
        // processes.
        let delta = big_run.utilization.peak_memory_bytes as i64
            - small_run.utilization.peak_memory_bytes as i64;
        assert!(
            delta < 50 * 8 * 1024 * 1024,
            "persistent pool must not fork per request (delta {delta})"
        );
    }

    #[test]
    fn listen_queue_overflow_refuses_connections() {
        let config = ServerConfig {
            workers: WorkerConfig {
                max_workers: 1,
                listen_queue: 2,
                ..WorkerConfig::default()
            },
            hardware: HardwareSpec {
                cpu_speed: 0.01,
                ..HardwareSpec::default()
            },
            ..ServerConfig::lab_apache()
        };
        let engine = ServerEngine::new(config, ContentCatalog::lab_validation());
        let mut cache = CacheState::new();
        let requests: Vec<ServerRequest> = (0..10).map(|i| head_request(i, 0)).collect();
        let result = engine.run(requests, &mut cache);
        let refused = result
            .outcomes
            .iter()
            .filter(|o| o.status == RequestStatus::Refused)
            .count();
        assert_eq!(refused, 7, "1 worker + 2 queue slots leaves 7 refused");
        assert_eq!(result.utilization.refused_requests, 7);
    }

    #[test]
    fn worker_limit_serializes_excess_requests() {
        let config = ServerConfig {
            workers: WorkerConfig {
                max_workers: 2,
                listen_queue: 100,
                per_request_cpu: 0.01,
                ..WorkerConfig::default()
            },
            access_link: mbps(1000.0),
            ..ServerConfig::lab_apache()
        };
        let engine = ServerEngine::new(config, ContentCatalog::lab_validation());
        let mut cache = CacheState::new();
        let result = engine.run((0..20).map(|i| head_request(i, 0)).collect(), &mut cache);
        let mut latencies: Vec<f64> = result
            .outcomes
            .iter()
            .map(|o| o.latency().as_millis_f64())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // With only two workers the last requests wait for many service
        // times; the spread between fastest and slowest must be large.
        assert!(latencies.last().unwrap() > &(latencies[0] * 5.0));
        assert_eq!(result.utilization.peak_busy_workers, 2);
    }

    #[test]
    fn arrival_log_matches_requests() {
        let engine = lab_engine();
        let mut cache = CacheState::new();
        let result = engine.run(
            vec![head_request(3, 5), head_request(1, 1), head_request(2, 3)],
            &mut cache,
        );
        let ids: Vec<u64> = result.arrival_log.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3], "arrival log is time-ordered");
    }

    #[test]
    fn outcomes_preserve_submission_order() {
        let engine = lab_engine();
        let mut cache = CacheState::new();
        let result = engine.run(
            vec![
                head_request(30, 5),
                head_request(10, 1),
                head_request(20, 3),
            ],
            &mut cache,
        );
        let ids: Vec<u64> = result.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![30, 10, 20]);
    }

    #[test]
    fn empty_run_is_harmless() {
        let engine = lab_engine();
        let mut cache = CacheState::new();
        let result = engine.run(Vec::new(), &mut cache);
        assert!(result.outcomes.is_empty());
        assert_eq!(result.utilization.completed_requests, 0);
    }

    #[test]
    fn background_flag_is_propagated() {
        let engine = lab_engine();
        let mut cache = CacheState::new();
        let mut req = head_request(9, 0);
        req.background = true;
        let result = engine.run(vec![req], &mut cache);
        assert!(result.outcomes[0].background);
        assert!(result.arrival_log[0].background);
    }

    #[test]
    fn thin_transit_link_slows_only_its_vantage_group() {
        use mfc_simnet::kbps;
        // A fat 100 Mbit/s access link, two vantage groups: group 0 behind
        // a 800 kbit/s shared transit link, group 1 behind a clean one.
        let config = ServerConfig {
            access_link: mbps(100.0),
            ..ServerConfig::lab_apache()
        };
        let topology = TopologySpec::star(&[kbps(800.0), mbps(100.0)]);
        let engine =
            ServerEngine::new(config, ContentCatalog::lab_validation()).with_topology(topology);
        let mut cache = CacheState::new();
        // Warm the object cache, then race five transfers per group.
        engine.run(
            vec![static_request(0, 0, "/objects/large_100k.bin")],
            &mut cache,
        );
        let crowd: Vec<ServerRequest> = (0..10)
            .map(|i| {
                let mut r = static_request(100 + i, 0, "/objects/large_100k.bin");
                r.client_addr = i as u32; // even → group 0, odd → group 1
                r
            })
            .collect();
        let result = engine.run(crowd, &mut cache);
        let latency_of = |addr_parity: u32| -> f64 {
            let mut values: Vec<f64> = result
                .outcomes
                .iter()
                .filter(|o| o.id >= 100 && (o.id - 100) % 2 == addr_parity as u64)
                .map(|o| o.latency().as_millis_f64())
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            values[values.len() / 2]
        };
        let pinned = latency_of(0);
        let clean = latency_of(1);
        assert!(
            pinned > 5.0 * clean,
            "the group behind the 100 kB/s transit must crawl while the \
             other group flies: pinned {pinned}ms vs clean {clean}ms"
        );
    }

    #[test]
    fn cross_traffic_consumes_transit_bandwidth() {
        // A 1 MB/s transit carrying 600 kB/s of cross traffic leaves only
        // 400 kB/s for the probe transfers.
        let config = ServerConfig {
            access_link: mbps(100.0),
            ..ServerConfig::lab_apache()
        };
        let clean = ServerEngine::new(config.clone(), ContentCatalog::lab_validation())
            .with_topology(TopologySpec::star(&[mbps(8.0)]));
        let congested = ServerEngine::new(config, ContentCatalog::lab_validation())
            .with_topology(TopologySpec::star(&[mbps(8.0)]).with_cross_traffic(0, 3, 200_000.0));
        let run = |engine: &ServerEngine| {
            let mut cache = CacheState::new();
            engine.run(
                vec![static_request(0, 0, "/objects/large_100k.bin")],
                &mut cache,
            );
            let result = engine.run(
                vec![static_request(1, 0, "/objects/large_100k.bin")],
                &mut cache,
            );
            result.outcomes[0].latency()
        };
        let clean_latency = run(&clean);
        let congested_latency = run(&congested);
        // 100 KB at 1 MB/s vs at the 400 kB/s the cross traffic leaves:
        // the transfer alone slows by ~150 ms.
        assert!(
            congested_latency > clean_latency + SimDuration::from_millis(100),
            "cross traffic must visibly squeeze the transfer: \
             {clean_latency} vs {congested_latency}"
        );
    }

    #[test]
    fn object_cache_disabled_hits_disk_every_time() {
        let config = ServerConfig {
            object_cache: ObjectCacheConfig {
                enabled: false,
                capacity_bytes: 0,
            },
            ..ServerConfig::lab_apache()
        };
        let engine = ServerEngine::new(config, ContentCatalog::lab_validation());
        let mut cache = CacheState::new();
        for i in 0..3 {
            engine.run(
                vec![static_request(i, 0, "/objects/large_100k.bin")],
                &mut cache,
            );
        }
        assert_eq!(cache.object_stats(), (0, 3));
    }
}
