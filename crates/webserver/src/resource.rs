//! Individual server resources: processor-sharing CPU, FIFO disk, memory.
//!
//! The MFC paper distinguishes two ways an extra request can slow a server
//! down (§3.3): it can consume a *proportional share* of a resource (CPU
//! cycles, link bandwidth) or it can *wait in line* behind earlier requests
//! for a serialized resource (a single disk, a connection pool).  The types
//! here model both kinds so the engine can exhibit either behaviour
//! depending on the workload class.

use mfc_simcore::{SimDuration, SimTime};
use mfc_simnet::{FlowId, FluidLink};

/// A processor-sharing resource (CPU, database executor) built on the same
/// virtual-time max–min fluid allocation as the network link.
///
/// Capacity is expressed in *work units per second*; each task has a total
/// amount of work and an optional per-task rate cap (a single task cannot
/// use more than one core).  Task ids map one-to-one onto [`FlowId`]s, so
/// there is no side table to search on the completion hot path.
///
/// # Examples
///
/// ```
/// use mfc_simcore::SimTime;
/// use mfc_webserver::resource::PsResource;
///
/// // One core: two 100ms tasks started together finish after 200ms.
/// let mut cpu = PsResource::new(1.0, 1.0);
/// cpu.add_task(1, 0.1, SimTime::ZERO);
/// cpu.add_task(2, 0.1, SimTime::ZERO);
/// let (t, id) = cpu.next_completion(SimTime::ZERO).unwrap();
/// assert_eq!(id, 1);
/// assert!((t.as_secs_f64() - 0.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PsResource {
    link: FluidLink,
    per_task_cap: f64,
}

impl PsResource {
    /// Creates a resource with `capacity` work-units/second and a per-task
    /// rate ceiling of `per_task_cap` work-units/second.
    pub fn new(capacity: f64, per_task_cap: f64) -> Self {
        PsResource {
            link: FluidLink::new(capacity.max(f64::EPSILON)),
            per_task_cap: per_task_cap.max(f64::EPSILON),
        }
    }

    /// Adds a task identified by `id` requiring `work` work units.
    ///
    /// # Panics
    ///
    /// Panics if a task with the same id is already active.
    pub fn add_task(&mut self, id: u64, work: f64, now: SimTime) {
        self.link
            .start_flow(FlowId(id), work.max(0.0), self.per_task_cap, now);
    }

    /// Returns the time and task id of the next task to finish, if any task
    /// is active.  Pure: does not advance the internal clock.
    pub fn peek_completion(&self) -> Option<(SimTime, u64)> {
        self.link
            .peek_completion()
            .map(|(time, flow)| (time, flow.0))
    }

    /// [`Self::peek_completion`] after advancing the clock to `now`.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        self.link
            .next_completion(now)
            .map(|(time, flow)| (time, flow.0))
    }

    /// Removes a task (after completion or abandonment); returns the work
    /// it had left.
    pub fn remove_task(&mut self, id: u64, now: SimTime) -> Option<f64> {
        self.link.finish_flow(FlowId(id), now)
    }

    /// Advances the resource's internal clock.
    pub fn advance(&mut self, now: SimTime) {
        self.link.advance(now);
    }

    /// The configured capacity in work-units/second.
    pub fn capacity(&self) -> f64 {
        self.link.capacity()
    }

    /// Changes the total capacity mid-run (a CPU frequency/quota schedule).
    /// In-flight tasks keep their remaining work; shares are re-balanced.
    pub fn set_capacity(&mut self, capacity: f64, now: SimTime) {
        self.link.set_capacity(capacity.max(f64::EPSILON), now);
    }

    /// Number of active tasks.
    pub fn active(&self) -> usize {
        self.link.active_flows()
    }

    /// Current aggregate service rate divided by capacity (0–1 utilization).
    pub fn utilization(&self) -> f64 {
        (self.link.utilization_bytes_per_sec() / self.link.capacity()).clamp(0.0, 1.0)
    }

    /// Total work completed since construction.
    pub fn work_done(&self) -> f64 {
        self.link.bytes_transferred()
    }
}

/// A strictly serialized FIFO resource — the disk.
///
/// Each operation has a fixed service time computed when it is enqueued; the
/// disk serves exactly one operation at a time in arrival order.
///
/// # Examples
///
/// ```
/// use mfc_simcore::{SimTime, SimDuration};
/// use mfc_webserver::resource::FifoResource;
///
/// let mut disk = FifoResource::new();
/// let d1 = disk.enqueue(1, SimTime::ZERO, SimDuration::from_millis(10));
/// let d2 = disk.enqueue(2, SimTime::ZERO, SimDuration::from_millis(10));
/// assert_eq!(d1.as_millis_f64(), 10.0);
/// assert_eq!(d2.as_millis_f64(), 20.0, "the second op waits for the first");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    /// Time at which the device becomes idle.
    busy_until: SimTime,
    ops: u64,
    busy_time: SimDuration,
}

impl FifoResource {
    /// Creates an idle device.
    pub fn new() -> Self {
        FifoResource::default()
    }

    /// Enqueues operation `_id` arriving at `now` with the given service
    /// time and returns the *total* delay (queueing + service) until it
    /// completes.
    pub fn enqueue(&mut self, _id: u64, now: SimTime, service: SimDuration) -> SimDuration {
        let start = self.busy_until.max(now);
        let finish = start + service;
        self.busy_until = finish;
        self.ops += 1;
        self.busy_time += service;
        finish - now
    }

    /// Number of operations served.
    pub fn operations(&self) -> u64 {
        self.ops
    }

    /// Total device busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Time at which the device next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

/// Tracks resident memory and converts overcommit into a slowdown factor.
///
/// The paper's FastCGI experiment (Figure 6) shows memory climbing with the
/// crowd size until the machine starts thrashing and response times explode.
/// We reproduce the effect by charging every forked handler its resident
/// size and multiplying subsequent CPU/disk work by [`MemoryTracker::slowdown`]
/// once demand exceeds physical RAM.
///
/// # Examples
///
/// ```
/// use mfc_webserver::resource::MemoryTracker;
///
/// let mut mem = MemoryTracker::new(1_000, 8.0);
/// mem.allocate(500);
/// assert_eq!(mem.slowdown(), 1.0, "within RAM there is no penalty");
/// mem.allocate(1_000);
/// assert!(mem.slowdown() > 1.0, "overcommit triggers thrashing");
/// mem.release(1_000);
/// assert_eq!(mem.slowdown(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    ram: u64,
    used: u64,
    peak: u64,
    penalty: f64,
}

impl MemoryTracker {
    /// Creates a tracker for a machine with `ram` bytes of physical memory
    /// and the given swap penalty (extra slowdown per 100% overcommit).
    pub fn new(ram: u64, penalty: f64) -> Self {
        MemoryTracker {
            ram: ram.max(1),
            used: 0,
            peak: 0,
            penalty: penalty.max(0.0),
        }
    }

    /// Charges `bytes` of resident memory.
    pub fn allocate(&mut self, bytes: u64) {
        self.used += bytes;
        self.peak = self.peak.max(self.used);
    }

    /// Releases `bytes` of resident memory (saturating at zero).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Currently resident bytes.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Peak resident bytes seen so far.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Physical RAM size.
    pub fn ram(&self) -> u64 {
        self.ram
    }

    /// Multiplier for CPU/disk work while memory demand exceeds RAM:
    /// `1 + penalty × overcommit_fraction`, where the overcommit fraction is
    /// `(used − ram) / ram` clamped at zero.
    pub fn slowdown(&self) -> f64 {
        if self.used <= self.ram {
            1.0
        } else {
            let over = (self.used - self.ram) as f64 / self.ram as f64;
            1.0 + self.penalty * over
        }
    }
}

/// A bounded pool of identical slots (worker threads, handler processes,
/// database connections) with a FIFO wait queue of request ids.
///
/// # Examples
///
/// ```
/// use mfc_webserver::resource::SlotPool;
///
/// let mut pool = SlotPool::new(2);
/// assert!(pool.try_acquire(10));
/// assert!(pool.try_acquire(11));
/// assert!(!pool.try_acquire(12), "third request must wait");
/// pool.enqueue(12);
/// assert_eq!(pool.release_and_next(), Some(12));
/// assert_eq!(pool.release_and_next(), None);
/// ```
#[derive(Debug, Clone)]
pub struct SlotPool {
    capacity: u32,
    busy: u32,
    waiting: std::collections::VecDeque<u64>,
    peak_busy: u32,
}

impl SlotPool {
    /// Creates a pool with `capacity` slots.
    pub fn new(capacity: u32) -> Self {
        SlotPool {
            capacity,
            busy: 0,
            waiting: std::collections::VecDeque::new(),
            peak_busy: 0,
        }
    }

    /// Tries to occupy a slot for `_id`; returns `false` if the pool is
    /// full (the caller should then [`SlotPool::enqueue`] the id).
    pub fn try_acquire(&mut self, _id: u64) -> bool {
        if self.busy < self.capacity {
            self.busy += 1;
            self.peak_busy = self.peak_busy.max(self.busy);
            true
        } else {
            false
        }
    }

    /// Adds `id` to the wait queue.
    pub fn enqueue(&mut self, id: u64) {
        self.waiting.push_back(id);
    }

    /// Releases one slot.  If a request is waiting, the slot is immediately
    /// handed to it and its id is returned; otherwise the slot becomes free.
    pub fn release_and_next(&mut self) -> Option<u64> {
        if let Some(next) = self.waiting.pop_front() {
            // The slot passes directly to the next waiter; `busy` stays.
            self.peak_busy = self.peak_busy.max(self.busy);
            Some(next)
        } else {
            self.busy = self.busy.saturating_sub(1);
            None
        }
    }

    /// Number of occupied slots.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Number of requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Largest number of simultaneously occupied slots seen.
    pub fn peak_busy(&self) -> u32 {
        self.peak_busy
    }

    /// Total capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn ps_resource_single_task_runs_at_core_speed() {
        let mut cpu = PsResource::new(2.0, 1.0);
        cpu.add_task(1, 0.5, t(0.0));
        // Only one task: limited by the per-task cap (one core), not by the
        // two-core capacity.
        let (done, id) = cpu.next_completion(t(0.0)).unwrap();
        assert_eq!(id, 1);
        assert!((done.as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ps_resource_shares_among_tasks() {
        let mut cpu = PsResource::new(1.0, 1.0);
        for id in 0..4 {
            cpu.add_task(id, 0.1, t(0.0));
        }
        let (done, _) = cpu.next_completion(t(0.0)).unwrap();
        // Four tasks on one core: everything takes 4x as long.
        assert!((done.as_secs_f64() - 0.4).abs() < 1e-9);
        assert_eq!(cpu.active(), 4);
        assert!((cpu.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ps_resource_remove_returns_remaining_work() {
        let mut cpu = PsResource::new(1.0, 1.0);
        cpu.add_task(1, 1.0, t(0.0));
        cpu.advance(t(0.25));
        let left = cpu.remove_task(1, t(0.25)).unwrap();
        assert!((left - 0.75).abs() < 1e-9);
        assert_eq!(cpu.active(), 0);
        assert!(cpu.next_completion(t(0.3)).is_none());
        assert!(cpu.remove_task(1, t(0.3)).is_none());
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn ps_resource_duplicate_task_panics() {
        let mut cpu = PsResource::new(1.0, 1.0);
        cpu.add_task(1, 0.1, t(0.0));
        cpu.add_task(1, 0.1, t(0.0));
    }

    #[test]
    fn fifo_serializes_operations() {
        let mut disk = FifoResource::new();
        let d1 = disk.enqueue(1, t(0.0), SimDuration::from_millis(20));
        let d2 = disk.enqueue(2, t(0.0), SimDuration::from_millis(30));
        let d3 = disk.enqueue(3, t(0.1), SimDuration::from_millis(10));
        assert_eq!(d1, SimDuration::from_millis(20));
        assert_eq!(d2, SimDuration::from_millis(50));
        // The third op arrives at 100ms, the disk frees at 50ms, so no wait.
        assert_eq!(d3, SimDuration::from_millis(10));
        assert_eq!(disk.operations(), 3);
        assert_eq!(disk.busy_time(), SimDuration::from_millis(60));
    }

    #[test]
    fn fifo_idle_gap_does_not_accumulate() {
        let mut disk = FifoResource::new();
        disk.enqueue(1, t(0.0), SimDuration::from_millis(10));
        let d = disk.enqueue(2, t(10.0), SimDuration::from_millis(10));
        assert_eq!(d, SimDuration::from_millis(10));
    }

    #[test]
    fn memory_tracker_peak_and_release() {
        let mut mem = MemoryTracker::new(1_000, 4.0);
        mem.allocate(600);
        mem.allocate(600);
        assert_eq!(mem.used(), 1_200);
        assert_eq!(mem.peak(), 1_200);
        assert!((mem.slowdown() - 1.8).abs() < 1e-9);
        mem.release(600);
        assert_eq!(mem.used(), 600);
        assert_eq!(mem.peak(), 1_200, "peak is sticky");
        assert_eq!(mem.slowdown(), 1.0);
        mem.release(10_000);
        assert_eq!(mem.used(), 0, "release saturates at zero");
    }

    #[test]
    fn slot_pool_fifo_handoff() {
        let mut pool = SlotPool::new(1);
        assert!(pool.try_acquire(1));
        assert!(!pool.try_acquire(2));
        assert!(!pool.try_acquire(3));
        pool.enqueue(2);
        pool.enqueue(3);
        assert_eq!(pool.queued(), 2);
        assert_eq!(pool.release_and_next(), Some(2));
        assert_eq!(pool.release_and_next(), Some(3));
        assert_eq!(pool.release_and_next(), None);
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.peak_busy(), 1);
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn slot_pool_zero_capacity_never_admits() {
        let mut pool = SlotPool::new(0);
        assert!(!pool.try_acquire(1));
    }
}
