//! Configuration of a simulated server's hardware and software stack.
//!
//! Each knob corresponds to a provisioning decision the paper's MFC
//! inferences are meant to inform: access-link bandwidth, worker/thread
//! limits, CPU and memory capacity, the dynamic-content handler
//! architecture (FastCGI fork-per-request vs. a persistent handler pool,
//! §3.2) and database/query-cache behaviour.  Presets reproduce the specific
//! configurations that appear in the paper's evaluation: the lab Apache box,
//! the well-provisioned commercial QTNP/QTP systems, the three university
//! servers and the rank-class populations of §5.

use mfc_simcore::SimDuration;
use mfc_simnet::{mbps, Bandwidth, TcpModel};
use serde::{Deserialize, Serialize};

/// Physical machine characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Number of CPU cores.
    pub cpu_cores: u32,
    /// Relative single-core speed; 1.0 is the paper's 3 GHz Pentium 4 lab
    /// machine, smaller is slower.
    pub cpu_speed: f64,
    /// Installed RAM in bytes.
    pub ram_bytes: u64,
    /// Sequential disk read bandwidth in bytes per second.
    pub disk_bandwidth: Bandwidth,
    /// Per-disk-operation seek/rotation overhead.
    pub disk_seek: SimDuration,
}

impl Default for HardwareSpec {
    fn default() -> Self {
        // The paper's lab target: 3 GHz Pentium-4, 1 GB RAM, a single
        // commodity disk.
        HardwareSpec {
            cpu_cores: 1,
            cpu_speed: 1.0,
            ram_bytes: 1024 * 1024 * 1024,
            disk_bandwidth: 60.0 * 1024.0 * 1024.0,
            disk_seek: SimDuration::from_millis(8),
        }
    }
}

impl HardwareSpec {
    /// A multi-core, RAM-rich machine of the kind found in a commercial
    /// data centre circa 2007.
    pub fn datacenter_class() -> Self {
        HardwareSpec {
            cpu_cores: 8,
            cpu_speed: 1.2,
            ram_bytes: 16 * 1024 * 1024 * 1024,
            disk_bandwidth: 200.0 * 1024.0 * 1024.0,
            disk_seek: SimDuration::from_millis(4),
        }
    }

    /// A low-end shared-hosting style machine.
    pub fn low_end() -> Self {
        HardwareSpec {
            cpu_cores: 1,
            cpu_speed: 0.5,
            ram_bytes: 512 * 1024 * 1024,
            disk_bandwidth: 30.0 * 1024.0 * 1024.0,
            disk_seek: SimDuration::from_millis(10),
        }
    }
}

/// Worker-pool (thread/process) configuration of the HTTP front end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerConfig {
    /// Maximum simultaneously served requests (Apache `MaxClients`-style
    /// limit).  Requests beyond this wait in the listen queue.
    pub max_workers: u32,
    /// Maximum queued connections waiting for a worker; beyond this,
    /// connections are refused/dropped.
    pub listen_queue: u32,
    /// Resident memory cost per busy worker.
    pub memory_per_worker: u64,
    /// CPU work (in seconds on a speed-1.0 core) to accept and parse one
    /// request and assemble response headers.
    pub per_request_cpu: f64,
    /// Additional CPU work (seconds on a speed-1.0 core) to *generate* the
    /// base page, charged to requests for it (including HEAD requests —
    /// the server still renders the page to produce its headers).  Sites
    /// whose front page is assembled dynamically can be surprisingly
    /// expensive here, which is exactly the "surprising" Base-stage result
    /// the QTNP operators saw in §4.1.
    pub base_page_cpu: f64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            max_workers: 256,
            listen_queue: 511,
            memory_per_worker: 4 * 1024 * 1024,
            per_request_cpu: 0.000_4,
            base_page_cpu: 0.000_6,
        }
    }
}

/// How dynamic (query) content is executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DynamicHandler {
    /// FastCGI-style fork-per-request execution: every in-flight query holds
    /// a full process image in memory (paper §3.2 footnote 1), so memory
    /// grows linearly with the crowd and the machine eventually starts
    /// swapping.
    ForkPerRequest {
        /// Resident memory of each forked handler process.
        memory_per_process: u64,
        /// CPU seconds (speed-1.0 core) consumed by the fork + interpreter
        /// start-up.
        fork_cpu: f64,
    },
    /// A persistent pool of handler processes (the paper's Mongrel
    /// configuration): bounded concurrency, no per-request memory growth.
    PersistentPool {
        /// Number of handler processes; queries beyond this queue.
        pool_size: u32,
        /// Resident memory of the whole pool (charged once).
        pool_memory: u64,
    },
}

impl Default for DynamicHandler {
    fn default() -> Self {
        DynamicHandler::PersistentPool {
            pool_size: 32,
            pool_memory: 256 * 1024 * 1024,
        }
    }
}

impl DynamicHandler {
    /// The FastCGI configuration used in the §3.2 lab experiment, where each
    /// forked process inherits a large parent image.
    pub fn fastcgi_lab() -> Self {
        DynamicHandler::ForkPerRequest {
            memory_per_process: 20 * 1024 * 1024,
            fork_cpu: 0.004,
        }
    }

    /// The Mongrel configuration used in the §3.2 lab experiment.
    pub fn mongrel_lab() -> Self {
        DynamicHandler::PersistentPool {
            pool_size: 64,
            pool_memory: 128 * 1024 * 1024,
        }
    }
}

/// Back-end database behaviour for dynamic queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseConfig {
    /// Whether a query cache is in front of the database.
    pub query_cache: bool,
    /// CPU seconds (speed-1.0 core) of fixed cost per query (parsing,
    /// optimisation, connection handling).
    pub base_query_cpu: f64,
    /// CPU seconds per 1 000 rows scanned.
    pub cpu_per_1k_rows: f64,
    /// Maximum simultaneously executing queries (connection pool size);
    /// excess queries wait.
    pub max_concurrent_queries: u32,
    /// Cost of serving a query-cache hit, in CPU seconds.
    pub cache_hit_cpu: f64,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            query_cache: true,
            base_query_cpu: 0.002,
            cpu_per_1k_rows: 0.000_6,
            max_concurrent_queries: 64,
            cache_hit_cpu: 0.000_5,
        }
    }
}

/// In-memory caching of static objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectCacheConfig {
    /// Whether static responses are cached in memory after the first read.
    pub enabled: bool,
    /// Total bytes of memory the object cache may consume.
    pub capacity_bytes: u64,
}

impl Default for ObjectCacheConfig {
    fn default() -> Self {
        ObjectCacheConfig {
            enabled: true,
            capacity_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Complete configuration of one simulated server instance.
///
/// # Examples
///
/// ```
/// use mfc_webserver::ServerConfig;
///
/// let lab = ServerConfig::lab_apache();
/// assert_eq!(lab.hardware.cpu_cores, 1);
/// assert!(lab.access_link > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Physical machine.
    pub hardware: HardwareSpec,
    /// Outbound access-link capacity in bytes per second.
    pub access_link: Bandwidth,
    /// HTTP front-end worker pool.
    pub workers: WorkerConfig,
    /// Dynamic-content execution model.
    pub dynamic_handler: DynamicHandler,
    /// Back-end database.
    pub database: DatabaseConfig,
    /// Static-object cache.
    pub object_cache: ObjectCacheConfig,
    /// TCP behaviour of the server's stack.
    pub tcp: TcpModel,
    /// Memory the OS and base services consume before any request arrives.
    pub baseline_memory: u64,
    /// Multiplier applied to CPU and disk work for every byte of memory
    /// demand beyond physical RAM, expressed per 100% overcommit.  A value
    /// of 8 means that running at twice the physical RAM makes every
    /// operation 9× slower.
    pub swap_penalty: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            hardware: HardwareSpec::default(),
            access_link: mbps(100.0),
            workers: WorkerConfig::default(),
            dynamic_handler: DynamicHandler::default(),
            database: DatabaseConfig::default(),
            object_cache: ObjectCacheConfig::default(),
            tcp: TcpModel::default(),
            baseline_memory: 200 * 1024 * 1024,
            swap_penalty: 8.0,
        }
    }
}

impl ServerConfig {
    /// The §3.2 controlled-lab target: Apache 2.2 with the worker MPM on a
    /// 3 GHz Pentium 4 with 1 GB of RAM, behind a modest (10 Mbit/s
    /// effective) access link so that 50 concurrent 100 KB transfers
    /// visibly contend for bandwidth, with a MySQL back end whose query
    /// cache is 16 MB.
    pub fn lab_apache() -> Self {
        ServerConfig {
            hardware: HardwareSpec::default(),
            access_link: mbps(10.0),
            workers: WorkerConfig {
                max_workers: 150,
                listen_queue: 511,
                ..WorkerConfig::default()
            },
            dynamic_handler: DynamicHandler::fastcgi_lab(),
            database: DatabaseConfig::default(),
            object_cache: ObjectCacheConfig::default(),
            tcp: TcpModel::default(),
            baseline_memory: 250 * 1024 * 1024,
            swap_penalty: 8.0,
        }
    }

    /// The same lab target but with the Mongrel persistent handler instead
    /// of FastCGI (the paper's contrast case where response time stays flat
    /// up to 50 clients).
    pub fn lab_apache_mongrel() -> Self {
        ServerConfig {
            dynamic_handler: DynamicHandler::mongrel_lab(),
            ..ServerConfig::lab_apache()
        }
    }

    /// The §3.1 validation server: a lightweight HTTP server on a fast LAN
    /// machine with an uncontended gigabit link, used only for
    /// synchronization and synthetic response-model experiments.
    pub fn validation_server() -> Self {
        ServerConfig {
            hardware: HardwareSpec {
                cpu_cores: 2,
                cpu_speed: 1.1,
                ..HardwareSpec::default()
            },
            access_link: mbps(1000.0),
            workers: WorkerConfig {
                max_workers: 1024,
                listen_queue: 1024,
                ..WorkerConfig::default()
            },
            dynamic_handler: DynamicHandler::mongrel_lab(),
            ..ServerConfig::default()
        }
    }

    /// A well-provisioned commercial front end of the QTNP/QTP kind: ample
    /// bandwidth, many workers, a datacenter-class machine and a cached
    /// database.
    pub fn commercial_frontend() -> Self {
        ServerConfig {
            hardware: HardwareSpec::datacenter_class(),
            access_link: mbps(1000.0),
            workers: WorkerConfig {
                max_workers: 512,
                listen_queue: 2048,
                memory_per_worker: 8 * 1024 * 1024,
                per_request_cpu: 0.000_3,
                base_page_cpu: 0.000_5,
            },
            dynamic_handler: DynamicHandler::PersistentPool {
                pool_size: 128,
                pool_memory: 2 * 1024 * 1024 * 1024,
            },
            database: DatabaseConfig {
                query_cache: true,
                max_concurrent_queries: 256,
                ..DatabaseConfig::default()
            },
            object_cache: ObjectCacheConfig {
                enabled: true,
                capacity_bytes: 4 * 1024 * 1024 * 1024,
            },
            tcp: TcpModel::well_tuned(),
            baseline_memory: 1024 * 1024 * 1024,
            swap_penalty: 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_self_consistent() {
        let cfg = ServerConfig::default();
        assert!(cfg.hardware.ram_bytes > cfg.baseline_memory);
        assert!(cfg.access_link > 0.0);
        assert!(cfg.workers.max_workers > 0);
        assert!(cfg.database.max_concurrent_queries > 0);
    }

    #[test]
    fn lab_apache_matches_paper_setup() {
        let cfg = ServerConfig::lab_apache();
        assert_eq!(cfg.hardware.cpu_cores, 1);
        assert_eq!(cfg.hardware.ram_bytes, 1024 * 1024 * 1024);
        assert!(matches!(
            cfg.dynamic_handler,
            DynamicHandler::ForkPerRequest { .. }
        ));
        let mongrel = ServerConfig::lab_apache_mongrel();
        assert!(matches!(
            mongrel.dynamic_handler,
            DynamicHandler::PersistentPool { .. }
        ));
    }

    #[test]
    fn commercial_frontend_is_better_provisioned_than_lab() {
        let lab = ServerConfig::lab_apache();
        let com = ServerConfig::commercial_frontend();
        assert!(com.access_link > lab.access_link);
        assert!(com.hardware.ram_bytes > lab.hardware.ram_bytes);
        assert!(com.workers.max_workers > lab.workers.max_workers);
    }

    #[test]
    fn handler_presets_differ() {
        assert_ne!(DynamicHandler::fastcgi_lab(), DynamicHandler::mongrel_lab());
    }

    #[test]
    fn hardware_presets_are_ordered() {
        let low = HardwareSpec::low_end();
        let def = HardwareSpec::default();
        let dc = HardwareSpec::datacenter_class();
        assert!(low.cpu_speed < def.cpu_speed);
        assert!(dc.ram_bytes > def.ram_bytes);
        assert!(dc.cpu_cores > def.cpu_cores);
    }
}
