//! Web-server resource model for the MFC reproduction.
//!
//! The paper profiles real server deployments (an Apache lab server, a top-50
//! commercial site, university departmental servers, hundreds of ranked
//! sites).  This crate replaces all of them with an event-driven resource
//! model whose knobs correspond to the sub-systems the MFC technique is
//! designed to tell apart:
//!
//! * the **access link** (shared outbound bandwidth — the Large Object
//!   stage's target),
//! * **basic HTTP request processing** (worker pool + per-request CPU — the
//!   Base stage's target),
//! * the **back-end data processing sub-system** (database cost, query
//!   cache, dynamic-content handler — the Small Query stage's target),
//! * plus the cross-cutting resources the paper discusses qualitatively:
//!   memory (FastCGI fork-per-request blow-up, Figure 6), the disk, listen
//!   queues / thread limits (the Univ-2 artifact), server-side object
//!   caches, load-balanced clusters (the QTP data centre) and background
//!   traffic from regular users.
//!
//! The crate deliberately knows nothing about the MFC algorithm; it answers
//! one question: *given a set of timed request arrivals, when does each
//! response finish and what did the server's resources look like while it
//! was happening?*  (`mfc-core` turns those answers into bottleneck
//! inferences.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod cache;
pub mod cluster;
pub mod config;
pub mod content;
pub mod control;
pub mod engine;
pub mod request;
pub mod resource;
pub mod synthetic;
pub mod telemetry;

pub use background::{BackgroundMix, BackgroundTraffic, CatalogSampler};
pub use cache::CacheState;
pub use cluster::{BalancePolicy, ServerCluster};
pub use config::{
    DatabaseConfig, DynamicHandler, HardwareSpec, ObjectCacheConfig, ServerConfig, WorkerConfig,
};
pub use content::{ContentCatalog, ObjectKind, ObjectSpec};
pub use control::{AdmissionVerdict, ControlAction, NullControl, ServerControl, TickSample};
pub use engine::{EngineSession, ServerEngine};
pub use request::{ArrivalRecord, RequestClass, RequestOutcome, RequestStatus, ServerRequest};
pub use synthetic::{ResponseModel, SyntheticServer};
pub use telemetry::UtilizationReport;

pub use mfc_topology::{TopologySpec, TransitSpec};
pub use mfc_workload::{WorkloadSpec, WorkloadStream};
