//! Load-balanced server clusters.
//!
//! The production QTP system the authors tested routes all requests for one
//! IP address to "a specific data center which houses 16 multiprocessor
//! servers in a load-balanced configuration" (§4.1).  The MFC saw no
//! response-time impact even with 375 simultaneous requests because the
//! load spread across those replicas.  [`ServerCluster`] reproduces that
//! arrangement: a front-end balancer distributes arrivals over `n`
//! identical [`ServerEngine`]s, each with its own caches, and merges the
//! results.

use mfc_simcore::SimDuration;

use crate::cache::CacheState;
use crate::config::ServerConfig;
use crate::content::ContentCatalog;
use crate::engine::{RunResult, ServerEngine};
use crate::request::ServerRequest;
use crate::telemetry::UtilizationReport;

/// How the balancer assigns requests to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancePolicy {
    /// Strict rotation over the replicas in arrival order.
    RoundRobin,
    /// Assignment by a stable hash of the request id (models flow-hash /
    /// source-hash balancers; keeps a client's retries on one replica).
    HashById,
}

/// A load-balanced group of identical servers.
///
/// # Examples
///
/// ```
/// use mfc_webserver::{ContentCatalog, ServerCluster, ServerConfig};
///
/// let cluster = ServerCluster::new(
///     ServerConfig::commercial_frontend(),
///     ContentCatalog::typical_site(3),
///     16,
/// );
/// assert_eq!(cluster.replicas(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ServerCluster {
    engine: ServerEngine,
    replicas: usize,
    policy: BalancePolicy,
    caches: Vec<CacheState>,
}

impl ServerCluster {
    /// Creates a cluster of `replicas` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(config: ServerConfig, catalog: ContentCatalog, replicas: usize) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        ServerCluster {
            engine: ServerEngine::new(config, catalog),
            replicas,
            policy: BalancePolicy::RoundRobin,
            caches: vec![CacheState::new(); replicas],
        }
    }

    /// Selects the balancing policy (round robin by default).
    pub fn with_policy(mut self, policy: BalancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of replicas behind the balancer.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The per-replica cache states (useful for inspecting warmth).
    pub fn caches(&self) -> &[CacheState] {
        &self.caches
    }

    /// Processes one batch of requests, spreading them over the replicas,
    /// and returns the merged result.
    ///
    /// Outcomes are returned in the order requests were submitted, exactly
    /// like [`ServerEngine::run`].  The utilization report aggregates the
    /// replicas: CPU utilization and worker occupancy are averaged, byte and
    /// operation counters are summed, and peak memory is the maximum of any
    /// single replica (that is the machine that would start swapping first).
    pub fn run(&mut self, requests: Vec<ServerRequest>) -> RunResult {
        let replica_count = self.replicas;
        let mut per_replica: Vec<Vec<ServerRequest>> = vec![Vec::new(); replica_count];
        let mut placement: Vec<(usize, usize)> = Vec::with_capacity(requests.len());
        for (submit_idx, req) in requests.into_iter().enumerate() {
            let replica = match self.policy {
                BalancePolicy::RoundRobin => submit_idx % replica_count,
                BalancePolicy::HashById => (req.id as usize) % replica_count,
            };
            placement.push((replica, per_replica[replica].len()));
            per_replica[replica].push(req);
        }

        let mut replica_results: Vec<RunResult> = Vec::with_capacity(replica_count);
        for (replica, batch) in per_replica.into_iter().enumerate() {
            let result = self.engine.run(batch, &mut self.caches[replica]);
            replica_results.push(result);
        }

        // Re-assemble outcomes in submission order.
        let mut outcomes = Vec::with_capacity(placement.len());
        for &(replica, local_idx) in &placement {
            outcomes.push(replica_results[replica].outcomes[local_idx].clone());
        }

        let mut arrival_log = Vec::new();
        for result in &replica_results {
            arrival_log.extend(result.arrival_log.iter().cloned());
        }
        arrival_log.sort_by_key(|r| (r.arrival, r.id));

        let window = replica_results
            .iter()
            .map(|r| r.utilization.window)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let n = replica_results.len() as f64;
        let utilization = UtilizationReport {
            window,
            cpu_utilization: replica_results
                .iter()
                .map(|r| r.utilization.cpu_utilization)
                .sum::<f64>()
                / n,
            peak_memory_bytes: replica_results
                .iter()
                .map(|r| r.utilization.peak_memory_bytes)
                .max()
                .unwrap_or(0),
            mean_memory_bytes: replica_results
                .iter()
                .map(|r| r.utilization.mean_memory_bytes)
                .sum::<f64>()
                / n,
            network_bytes_sent: replica_results
                .iter()
                .map(|r| r.utilization.network_bytes_sent)
                .sum(),
            disk_operations: replica_results
                .iter()
                .map(|r| r.utilization.disk_operations)
                .sum(),
            mean_busy_workers: replica_results
                .iter()
                .map(|r| r.utilization.mean_busy_workers)
                .sum::<f64>()
                / n,
            peak_busy_workers: replica_results
                .iter()
                .map(|r| r.utilization.peak_busy_workers)
                .max()
                .unwrap_or(0),
            refused_requests: replica_results
                .iter()
                .map(|r| r.utilization.refused_requests)
                .sum(),
            completed_requests: replica_results
                .iter()
                .map(|r| r.utilization.completed_requests)
                .sum(),
        };

        RunResult {
            outcomes,
            utilization,
            arrival_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestClass, RequestStatus};
    use mfc_simcore::SimTime;

    fn head(id: u64) -> ServerRequest {
        ServerRequest {
            id,
            arrival: SimTime::ZERO,
            class: RequestClass::Head,
            path: "/index.html".to_string(),
            client_downlink: 1e7,
            client_rtt: SimDuration::from_millis(40),
            background: false,
        }
    }

    fn query(id: u64, path: &str) -> ServerRequest {
        ServerRequest {
            id,
            arrival: SimTime::ZERO,
            class: RequestClass::Dynamic,
            path: path.to_string(),
            client_downlink: 1e7,
            client_rtt: SimDuration::from_millis(40),
            background: false,
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = ServerCluster::new(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
            0,
        );
    }

    #[test]
    fn outcomes_keep_submission_order() {
        let mut cluster = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            4,
        );
        let requests: Vec<ServerRequest> = (0..20).map(head).collect();
        let result = cluster.run(requests);
        let ids: Vec<u64> = result.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
        assert!(result
            .outcomes
            .iter()
            .all(|o| o.status == RequestStatus::Ok));
    }

    #[test]
    fn cluster_absorbs_load_better_than_single_server() {
        let config = ServerConfig::lab_apache();
        let catalog = ContentCatalog::lab_validation();
        let requests: Vec<ServerRequest> =
            (0..64).map(|i| query(i, "/cgi/stats?table=t1")).collect();

        let mut single = ServerCluster::new(config.clone(), catalog.clone(), 1);
        let single_result = single.run(requests.clone());
        let mut cluster = ServerCluster::new(config, catalog, 16);
        let cluster_result = cluster.run(requests);

        let worst_single = single_result
            .outcomes
            .iter()
            .map(|o| o.latency())
            .max()
            .unwrap();
        let worst_cluster = cluster_result
            .outcomes
            .iter()
            .map(|o| o.latency())
            .max()
            .unwrap();
        assert!(
            worst_cluster < worst_single,
            "16 replicas must beat 1: {worst_cluster} vs {worst_single}"
        );
    }

    #[test]
    fn arrival_log_covers_all_requests() {
        let mut cluster = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            3,
        );
        let result = cluster.run((0..9).map(head).collect());
        assert_eq!(result.arrival_log.len(), 9);
    }

    #[test]
    fn hash_policy_is_deterministic_per_id() {
        let mut a = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            4,
        )
        .with_policy(BalancePolicy::HashById);
        let mut b = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            4,
        )
        .with_policy(BalancePolicy::HashById);
        let ra = a.run((0..16).map(head).collect());
        let rb = b.run((0..16).map(head).collect());
        let la: Vec<_> = ra.outcomes.iter().map(|o| o.completion).collect();
        let lb: Vec<_> = rb.outcomes.iter().map(|o| o.completion).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn utilization_counters_are_aggregated() {
        let mut cluster = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            2,
        );
        let result = cluster.run((0..10).map(head).collect());
        assert_eq!(result.utilization.completed_requests, 10);
        assert_eq!(result.utilization.refused_requests, 0);
    }
}
