//! Load-balanced server clusters.
//!
//! The production QTP system the authors tested routes all requests for one
//! IP address to "a specific data center which houses 16 multiprocessor
//! servers in a load-balanced configuration" (§4.1).  The MFC saw no
//! response-time impact even with 375 simultaneous requests because the
//! load spread across those replicas.  [`ServerCluster`] reproduces that
//! arrangement: a front-end balancer distributes arrivals over `n`
//! identical [`ServerEngine`]s, each with its own caches, and merges the
//! results.

use mfc_simcore::{SimDuration, SimTime, TimeWeighted};
use mfc_simnet::Bandwidth;

use crate::cache::CacheState;
use crate::config::ServerConfig;
use crate::content::ContentCatalog;
use crate::control::{AdmissionVerdict, ControlAction, NullControl, ServerControl, TickSample};
use crate::engine::{EngineSession, RunResult, ServerEngine};
use crate::request::{ArrivalRecord, RequestOutcome, RequestStatus, ServerRequest};
use crate::telemetry::UtilizationReport;

/// How the balancer assigns requests to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancePolicy {
    /// Strict rotation over the replicas in arrival order.
    RoundRobin,
    /// Assignment by a stable hash of the request id (models flow-hash /
    /// source-hash balancers; keeps a client's retries on one replica).
    HashById,
    /// Each request goes to the replica with the fewest requests currently
    /// in flight (a least-connections balancer).  This is what lets an
    /// autoscaler's freshly provisioned replicas actually absorb load: a
    /// new replica starts with zero outstanding requests and immediately
    /// attracts the incoming tail of the crowd, where round robin would
    /// keep handing it only its 1/n share.
    LeastOutstanding,
}

/// A load-balanced group of identical servers.
///
/// # Examples
///
/// ```
/// use mfc_webserver::{ContentCatalog, ServerCluster, ServerConfig};
///
/// let cluster = ServerCluster::new(
///     ServerConfig::commercial_frontend(),
///     ContentCatalog::typical_site(3),
///     16,
/// );
/// assert_eq!(cluster.replicas(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ServerCluster {
    engine: ServerEngine,
    replicas: usize,
    /// Replicas currently routable in controlled runs; persists across
    /// runs so an autoscaler's provisioning decisions outlive one epoch.
    active: usize,
    policy: BalancePolicy,
    caches: Vec<CacheState>,
}

impl ServerCluster {
    /// Creates a cluster of `replicas` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(config: ServerConfig, catalog: ContentCatalog, replicas: usize) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        ServerCluster {
            engine: ServerEngine::new(config, catalog),
            replicas,
            active: replicas,
            policy: BalancePolicy::RoundRobin,
            caches: vec![CacheState::new(); replicas],
        }
    }

    /// Selects the balancing policy (round robin by default).
    pub fn with_policy(mut self, policy: BalancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Places a shared-bottleneck WAN topology in front of every serving
    /// replica; see [`ServerEngine::with_topology`].  Transit links are
    /// instantiated per serving replica, so for a fixed-size cluster the
    /// caller should pass an aggregate-preserving per-replica share
    /// (`TopologySpec::share_across(replicas)`, as `SimBackend` does); a
    /// replica count that changes mid-run would silently multiply the
    /// shared capacity and is rejected upstream.
    pub fn with_topology(mut self, topology: mfc_topology::TopologySpec) -> Self {
        self.engine.set_topology(topology);
        self
    }

    /// Number of replicas the cluster was configured with.  The plain
    /// [`ServerCluster::run`] always spreads over all of them.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Replicas currently routable in [`ServerCluster::run_controlled`]
    /// (changed by `ControlAction::SetReplicas`; starts at the configured
    /// count).
    pub fn active_replicas(&self) -> usize {
        self.active
    }

    /// The per-replica cache states (useful for inspecting warmth).
    pub fn caches(&self) -> &[CacheState] {
        &self.caches
    }

    /// Processes one batch of requests under a [`ServerControl`] loop.
    ///
    /// Requests are swept in arrival order, interleaved deterministically
    /// with the control's telemetry ticks; each arrival is offered to the
    /// control (which may shed it with a 503 or clamp its transfer rate)
    /// and then routed over the currently *active* replicas.  `SetReplicas`
    /// actions take effect immediately for subsequent arrivals: scale-up
    /// replicas start cold, scale-down replicas finish their in-flight
    /// work but stop receiving traffic.  The active count persists to the
    /// next run.
    pub fn run_controlled(
        &mut self,
        requests: Vec<ServerRequest>,
        control: &mut dyn ServerControl,
    ) -> RunResult {
        drive_controlled(
            &self.engine,
            &mut self.caches,
            &mut self.active,
            self.policy,
            /*allow_scaling=*/ true,
            requests,
            control,
        )
    }

    /// [`ServerCluster::run_controlled`] over a lazily generated,
    /// time-ordered request stream: requests are consumed one at a time as
    /// the sweep's virtual clock reaches them, so a workload stream of
    /// millions of sessions drives the cluster without ever materializing
    /// the request list.  Outcomes are returned in stream (arrival) order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the stream is not time-ordered.
    pub fn run_controlled_streamed<I>(
        &mut self,
        requests: I,
        control: &mut dyn ServerControl,
    ) -> RunResult
    where
        I: IntoIterator<Item = ServerRequest>,
    {
        drive_controlled_stream(
            &self.engine,
            &mut self.caches,
            &mut self.active,
            self.policy,
            /*allow_scaling=*/ true,
            requests.into_iter(),
            control,
        )
    }

    /// Processes one batch of requests, spreading them over the replicas,
    /// and returns the merged result.
    ///
    /// Outcomes are returned in the order requests were submitted, exactly
    /// like [`ServerEngine::run`].  The utilization report aggregates the
    /// replicas: CPU utilization and worker occupancy are averaged, byte and
    /// operation counters are summed, and peak memory is the maximum of any
    /// single replica (that is the machine that would start swapping first).
    pub fn run(&mut self, requests: Vec<ServerRequest>) -> RunResult {
        if self.policy == BalancePolicy::LeastOutstanding {
            // Least-connections routing needs the replicas' live in-flight
            // counts, so it always runs through the time-ordered sweep.
            let mut active = self.replicas;
            return drive_controlled(
                &self.engine,
                &mut self.caches,
                &mut active,
                self.policy,
                /*allow_scaling=*/ false,
                requests,
                &mut NullControl,
            );
        }
        let replica_count = self.replicas;
        let mut per_replica: Vec<Vec<ServerRequest>> = vec![Vec::new(); replica_count];
        let mut placement: Vec<(usize, usize)> = Vec::with_capacity(requests.len());
        for (submit_idx, req) in requests.into_iter().enumerate() {
            let replica = match self.policy {
                BalancePolicy::RoundRobin => submit_idx % replica_count,
                BalancePolicy::HashById => (req.id as usize) % replica_count,
                BalancePolicy::LeastOutstanding => unreachable!("handled above"),
            };
            placement.push((replica, per_replica[replica].len()));
            per_replica[replica].push(req);
        }

        let mut replica_results: Vec<RunResult> = Vec::with_capacity(replica_count);
        for (replica, batch) in per_replica.into_iter().enumerate() {
            let result = self.engine.run(batch, &mut self.caches[replica]);
            replica_results.push(result);
        }

        // Re-assemble outcomes in submission order.
        let mut outcomes = Vec::with_capacity(placement.len());
        for &(replica, local_idx) in &placement {
            outcomes.push(replica_results[replica].outcomes[local_idx].clone());
        }

        let mut arrival_log = Vec::new();
        for result in &replica_results {
            arrival_log.extend(result.arrival_log.iter().cloned());
        }
        arrival_log.sort_by_key(|r| (r.arrival, r.id));

        let window = replica_results
            .iter()
            .map(|r| r.utilization.window)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let n = replica_results.len() as f64;
        let utilization = UtilizationReport {
            window,
            cpu_utilization: replica_results
                .iter()
                .map(|r| r.utilization.cpu_utilization)
                .sum::<f64>()
                / n,
            peak_memory_bytes: replica_results
                .iter()
                .map(|r| r.utilization.peak_memory_bytes)
                .max()
                .unwrap_or(0),
            mean_memory_bytes: replica_results
                .iter()
                .map(|r| r.utilization.mean_memory_bytes)
                .sum::<f64>()
                / n,
            network_bytes_sent: replica_results
                .iter()
                .map(|r| r.utilization.network_bytes_sent)
                .sum(),
            disk_operations: replica_results
                .iter()
                .map(|r| r.utilization.disk_operations)
                .sum(),
            mean_busy_workers: replica_results
                .iter()
                .map(|r| r.utilization.mean_busy_workers)
                .sum::<f64>()
                / n,
            peak_busy_workers: replica_results
                .iter()
                .map(|r| r.utilization.peak_busy_workers)
                .max()
                .unwrap_or(0),
            refused_requests: replica_results
                .iter()
                .map(|r| r.utilization.refused_requests)
                .sum(),
            completed_requests: replica_results
                .iter()
                .map(|r| r.utilization.completed_requests)
                .sum(),
            shed_requests: 0,
            throttled_requests: 0,
            link_capacity: replica_results
                .iter()
                .map(|r| r.utilization.link_capacity)
                .sum(),
        };

        RunResult {
            outcomes,
            utilization,
            arrival_log,
        }
    }
}

/// Where one submitted request ended up in a controlled run.
enum Placement {
    /// Routed to `(replica, local submission index)`.
    Routed(usize, usize),
    /// Shed at the front door; the 503 outcome is recorded directly.
    Shed(RequestOutcome),
}

/// Mutable state of one controlled sweep: the per-replica sessions, the
/// capacity overrides, and the front-door counters.  Methods scope the
/// borrows between the sessions, the cache pool and the overrides.
struct DriveState<'e, 'c> {
    engine: &'e ServerEngine,
    caches: &'c mut Vec<CacheState>,
    sessions: Vec<EngineSession<'e>>,
    /// Replicas currently routable.
    active: usize,
    allow_scaling: bool,
    /// Capacity overrides installed by ControlActions; applied to existing
    /// sessions immediately and to later-created replicas at birth.
    link_override: Option<Bandwidth>,
    cpu_override: Option<f64>,
    arrivals: u64,
    shed_count: u64,
    throttled_count: u64,
    /// Aggregate outbound capacity (active replicas × per-replica link)
    /// over time, so the reported `link_capacity` reflects mid-run
    /// scale-ups and capacity steps instead of only the end-of-run state.
    capacity_series: TimeWeighted,
    /// Latest virtual time the sweep advanced to.
    last_time: SimTime,
}

impl<'e, 'c> DriveState<'e, 'c> {
    fn new(
        engine: &'e ServerEngine,
        caches: &'c mut Vec<CacheState>,
        active: usize,
        allow_scaling: bool,
        t0: SimTime,
    ) -> Self {
        let initial_capacity = active.max(1) as f64 * engine.config().access_link;
        DriveState {
            engine,
            caches,
            sessions: Vec::new(),
            active: active.max(1),
            allow_scaling,
            link_override: None,
            cpu_override: None,
            arrivals: 0,
            shed_count: 0,
            throttled_count: 0,
            capacity_series: TimeWeighted::new(t0, initial_capacity),
            last_time: t0,
        }
    }

    fn aggregate_capacity(&self) -> f64 {
        self.active as f64
            * self
                .link_override
                .unwrap_or(self.engine.config().access_link)
    }

    /// Creates replica sessions up to and including `replica`, borrowing
    /// their cache state from the pool (and growing the pool as needed).
    fn ensure_session(&mut self, replica: usize) {
        while self.sessions.len() <= replica {
            let idx = self.sessions.len();
            if self.caches.len() <= idx {
                self.caches.push(CacheState::new());
            }
            let cache = std::mem::replace(&mut self.caches[idx], CacheState::new());
            let mut session = self.engine.session(cache);
            if let Some(bw) = self.link_override {
                session.set_access_link(bw, SimTime::ZERO);
            }
            if let Some(factor) = self.cpu_override {
                session.scale_cpu(factor, SimTime::ZERO);
            }
            self.sessions.push(session);
        }
    }

    fn advance_all(&mut self, now: SimTime) {
        for session in self.sessions.iter_mut() {
            session.run_until(now);
        }
        self.last_time = self.last_time.max(now);
    }

    fn sample(&self, now: SimTime) -> TickSample {
        let mut sample = TickSample::idle(now, self.active);
        sample.arrivals = self.arrivals;
        sample.shed = self.shed_count;
        // Load counters aggregate every session, including replicas retired
        // by a scale-down that are still draining in-flight work; the
        // utilization means, however, describe the *routable* fleet — a
        // still-booting replica counts as idle (it exists but has no
        // session yet) and a retired one no longer dilutes the average.
        let routable = self.active.min(self.sessions.len());
        for (replica, session) in self.sessions.iter().enumerate() {
            sample.in_flight += session.in_flight();
            sample.busy_workers += u64::from(session.busy_workers());
            sample.queued += session.queued() as u64;
            sample.memory_used += session.memory_used();
            sample.completed += session.completed();
            sample.refused += session.refused();
            if replica < routable {
                sample.cpu_utilization += session.cpu_utilization();
                sample.link_utilization += session.link_utilization();
            }
        }
        sample.cpu_utilization /= self.active as f64;
        sample.link_utilization /= self.active as f64;
        sample
    }

    fn apply(&mut self, action: ControlAction, now: SimTime) {
        match action {
            ControlAction::SetReplicas(n) => {
                if self.allow_scaling {
                    self.active = n.max(1);
                    self.capacity_series.set(now, self.aggregate_capacity());
                }
            }
            ControlAction::SetAccessLink(bw) => {
                self.link_override = Some(bw);
                for session in self.sessions.iter_mut() {
                    session.set_access_link(bw, now);
                }
                self.capacity_series.set(now, self.aggregate_capacity());
            }
            ControlAction::ScaleCpu(factor) => {
                self.cpu_override = Some(factor);
                for session in self.sessions.iter_mut() {
                    session.scale_cpu(factor, now);
                }
            }
        }
    }

    /// Advances to `now`, hands the control loop a fresh telemetry sample
    /// and applies whatever it decided.
    fn do_tick(&mut self, now: SimTime, control: &mut dyn ServerControl) {
        self.advance_all(now);
        let sample = self.sample(now);
        let mut actions = Vec::new();
        control.on_tick(now, &sample, &mut actions);
        for action in actions {
            self.apply(action, now);
        }
    }

    fn route(&self, policy: BalancePolicy, rr_counter: &mut usize, req: &ServerRequest) -> usize {
        match policy {
            BalancePolicy::RoundRobin => {
                let r = *rr_counter % self.active;
                *rr_counter += 1;
                r
            }
            BalancePolicy::HashById => (req.id as usize) % self.active,
            BalancePolicy::LeastOutstanding => (0..self.active)
                .min_by_key(|&r| self.sessions.get(r).map(|s| s.in_flight()).unwrap_or(0))
                .expect("at least one active replica"),
        }
    }

    /// Time-weighted mean aggregate capacity over the sweep (the value an
    /// `atop`-style monitor would have averaged).
    fn mean_link_capacity(&self) -> f64 {
        self.capacity_series.average_until(self.last_time)
    }
}

/// The time-ordered sweep shared by [`ServerCluster::run_controlled`] and
/// [`ServerEngine::run_controlled`]: requests are fed to per-replica
/// [`EngineSession`]s in arrival order, with the control loop's telemetry
/// ticks interleaved deterministically between arrivals and during the
/// drain.
pub(crate) fn drive_controlled(
    engine: &ServerEngine,
    caches: &mut Vec<CacheState>,
    active: &mut usize,
    policy: BalancePolicy,
    allow_scaling: bool,
    requests: Vec<ServerRequest>,
    control: &mut dyn ServerControl,
) -> RunResult {
    let total = requests.len();
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|&i| (requests[i].arrival, i));
    let mut slots: Vec<Option<ServerRequest>> = requests.into_iter().map(Some).collect();
    let sorted = order
        .iter()
        .map(|&i| slots[i].take().expect("each request consumed once"));
    let mut result = drive_controlled_stream(
        engine,
        caches,
        active,
        policy,
        allow_scaling,
        sorted,
        control,
    );
    // The streamed core reports outcomes in fed (arrival) order; put them
    // back in submission order.
    let mut outcomes: Vec<Option<RequestOutcome>> = (0..total).map(|_| None).collect();
    for (fed_index, outcome) in result.outcomes.drain(..).enumerate() {
        outcomes[order[fed_index]] = Some(outcome);
    }
    result.outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("every request was placed or shed"))
        .collect();
    result
}

/// The iterator-driven core of the controlled sweep: requests are consumed
/// lazily in arrival order (a workload stream never has to materialize),
/// and outcomes are reported in the order they were fed.
pub(crate) fn drive_controlled_stream(
    engine: &ServerEngine,
    caches: &mut Vec<CacheState>,
    active: &mut usize,
    policy: BalancePolicy,
    allow_scaling: bool,
    requests: impl Iterator<Item = ServerRequest>,
    control: &mut dyn ServerControl,
) -> RunResult {
    let mut requests = requests.peekable();
    let mut placement: Vec<Placement> = Vec::new();
    let mut rr_counter = 0usize;
    let mut shed_log: Vec<ArrivalRecord> = Vec::new();

    let tick = control.tick_interval();
    let t0 = requests.peek().map(|r| r.arrival).unwrap_or(SimTime::ZERO);
    let mut next_tick = tick.map(|d| t0 + d);
    let mut drive = DriveState::new(engine, caches, *active, allow_scaling, t0);

    // Arrival sweep.
    let mut last_arrival = t0;
    for req in requests {
        let arrival = req.arrival;
        debug_assert!(
            arrival >= last_arrival,
            "controlled stream must be fed in arrival order"
        );
        last_arrival = arrival;
        while let (Some(d), Some(at)) = (tick, next_tick) {
            if at > arrival {
                break;
            }
            drive.do_tick(at, control);
            next_tick = Some(at + d);
        }
        drive.advance_all(arrival);
        drive.arrivals += 1;
        match control.on_arrival(arrival, &req) {
            AdmissionVerdict::Shed => {
                shed_log.push(ArrivalRecord {
                    id: req.id,
                    arrival,
                    background: req.background,
                });
                placement.push(Placement::Shed(RequestOutcome {
                    id: req.id,
                    arrival,
                    status: RequestStatus::Shed,
                    completion: arrival,
                    body_bytes: 0,
                    background: req.background,
                }));
                drive.shed_count += 1;
            }
            verdict => {
                let mut req = req;
                if let AdmissionVerdict::Throttle(rate) = verdict {
                    req.client_downlink = req.client_downlink.min(rate.max(1.0));
                    drive.throttled_count += 1;
                }
                let replica = drive.route(policy, &mut rr_counter, &req);
                drive.ensure_session(replica);
                placement.push(Placement::Routed(replica, drive.sessions[replica].pushed()));
                drive.sessions[replica].push_request(req);
            }
        }
    }

    // Drain, keeping ticks firing while work remains.
    loop {
        let next_event = drive
            .sessions
            .iter_mut()
            .filter_map(|s| s.next_event_time())
            .min();
        let Some(next_event) = next_event else { break };
        match (tick, next_tick) {
            (Some(d), Some(at)) if at <= next_event => {
                drive.do_tick(at, control);
                next_tick = Some(at + d);
            }
            _ => drive.advance_all(next_event),
        }
    }

    *active = drive.active;
    let link_capacity = drive.mean_link_capacity();
    let DriveState {
        caches,
        sessions,
        shed_count,
        throttled_count,
        ..
    } = drive;

    // Collect per-replica results, handing caches back for the next run.
    let mut replica_results: Vec<RunResult> = Vec::with_capacity(sessions.len());
    for (idx, session) in sessions.into_iter().enumerate() {
        let (result, cache) = session.finish();
        caches[idx] = cache;
        replica_results.push(result);
    }

    let mut outcomes = Vec::with_capacity(placement.len());
    for slot in placement {
        match slot {
            Placement::Routed(replica, local) => {
                outcomes.push(replica_results[replica].outcomes[local].clone());
            }
            Placement::Shed(outcome) => outcomes.push(outcome),
        }
    }

    let mut arrival_log = shed_log;
    for result in &replica_results {
        arrival_log.extend(result.arrival_log.iter().cloned());
    }
    arrival_log.sort_by_key(|r| (r.arrival, r.id));
    let n = replica_results.len() as f64;
    let utilization = if replica_results.is_empty() {
        UtilizationReport {
            window: SimDuration::ZERO,
            cpu_utilization: 0.0,
            peak_memory_bytes: 0,
            mean_memory_bytes: 0.0,
            network_bytes_sent: 0,
            disk_operations: 0,
            mean_busy_workers: 0.0,
            peak_busy_workers: 0,
            refused_requests: 0,
            completed_requests: 0,
            shed_requests: shed_count,
            throttled_requests: throttled_count,
            link_capacity,
        }
    } else {
        UtilizationReport {
            window: replica_results
                .iter()
                .map(|r| r.utilization.window)
                .max()
                .unwrap_or(SimDuration::ZERO),
            cpu_utilization: replica_results
                .iter()
                .map(|r| r.utilization.cpu_utilization)
                .sum::<f64>()
                / n,
            peak_memory_bytes: replica_results
                .iter()
                .map(|r| r.utilization.peak_memory_bytes)
                .max()
                .unwrap_or(0),
            mean_memory_bytes: replica_results
                .iter()
                .map(|r| r.utilization.mean_memory_bytes)
                .sum::<f64>()
                / n,
            network_bytes_sent: replica_results
                .iter()
                .map(|r| r.utilization.network_bytes_sent)
                .sum(),
            disk_operations: replica_results
                .iter()
                .map(|r| r.utilization.disk_operations)
                .sum(),
            mean_busy_workers: replica_results
                .iter()
                .map(|r| r.utilization.mean_busy_workers)
                .sum::<f64>()
                / n,
            peak_busy_workers: replica_results
                .iter()
                .map(|r| r.utilization.peak_busy_workers)
                .max()
                .unwrap_or(0),
            refused_requests: replica_results
                .iter()
                .map(|r| r.utilization.refused_requests)
                .sum(),
            completed_requests: replica_results
                .iter()
                .map(|r| r.utilization.completed_requests)
                .sum(),
            shed_requests: shed_count,
            throttled_requests: throttled_count,
            link_capacity,
        }
    };

    RunResult {
        outcomes,
        utilization,
        arrival_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatabaseConfig, WorkerConfig};
    use crate::request::RequestClass;
    use mfc_simcore::SimTime;

    fn head(id: u64) -> ServerRequest {
        ServerRequest {
            id,
            arrival: SimTime::ZERO,
            class: RequestClass::Head,
            path: "/index.html".to_string(),
            client_downlink: 1e7,
            client_rtt: SimDuration::from_millis(40),
            client_addr: id as u32,
            background: false,
        }
    }

    fn query(id: u64, path: &str) -> ServerRequest {
        ServerRequest {
            id,
            arrival: SimTime::ZERO,
            class: RequestClass::Dynamic,
            path: path.to_string(),
            client_downlink: 1e7,
            client_rtt: SimDuration::from_millis(40),
            client_addr: id as u32,
            background: false,
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = ServerCluster::new(
            ServerConfig::lab_apache(),
            ContentCatalog::lab_validation(),
            0,
        );
    }

    #[test]
    fn outcomes_keep_submission_order() {
        let mut cluster = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            4,
        );
        let requests: Vec<ServerRequest> = (0..20).map(head).collect();
        let result = cluster.run(requests);
        let ids: Vec<u64> = result.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
        assert!(result
            .outcomes
            .iter()
            .all(|o| o.status == RequestStatus::Ok));
    }

    #[test]
    fn cluster_absorbs_load_better_than_single_server() {
        let config = ServerConfig::lab_apache();
        let catalog = ContentCatalog::lab_validation();
        let requests: Vec<ServerRequest> =
            (0..64).map(|i| query(i, "/cgi/stats?table=t1")).collect();

        let mut single = ServerCluster::new(config.clone(), catalog.clone(), 1);
        let single_result = single.run(requests.clone());
        let mut cluster = ServerCluster::new(config, catalog, 16);
        let cluster_result = cluster.run(requests);

        let worst_single = single_result
            .outcomes
            .iter()
            .map(|o| o.latency())
            .max()
            .unwrap();
        let worst_cluster = cluster_result
            .outcomes
            .iter()
            .map(|o| o.latency())
            .max()
            .unwrap();
        assert!(
            worst_cluster < worst_single,
            "16 replicas must beat 1: {worst_cluster} vs {worst_single}"
        );
    }

    #[test]
    fn arrival_log_covers_all_requests() {
        let mut cluster = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            3,
        );
        let result = cluster.run((0..9).map(head).collect());
        assert_eq!(result.arrival_log.len(), 9);
    }

    #[test]
    fn hash_policy_is_deterministic_per_id() {
        let mut a = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            4,
        )
        .with_policy(BalancePolicy::HashById);
        let mut b = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            4,
        )
        .with_policy(BalancePolicy::HashById);
        let ra = a.run((0..16).map(head).collect());
        let rb = b.run((0..16).map(head).collect());
        let la: Vec<_> = ra.outcomes.iter().map(|o| o.completion).collect();
        let lb: Vec<_> = rb.outcomes.iter().map(|o| o.completion).collect();
        assert_eq!(la, lb);
    }

    /// A slow dynamic query parked on one replica plus a trickle of HEADs
    /// spaced so each settles before the next arrives: under round robin
    /// every second HEAD lands behind the query and shares the CPU with it;
    /// least-outstanding sees the busy replica's outstanding count and
    /// steers every HEAD to the idle one.
    fn skewed_workload() -> Vec<ServerRequest> {
        let mut requests = vec![ServerRequest {
            id: 0,
            arrival: SimTime::ZERO,
            class: RequestClass::Dynamic,
            path: "/cgi/stats?table=t1".to_string(),
            client_downlink: 1e7,
            client_rtt: SimDuration::from_millis(40),
            client_addr: 0,
            background: false,
        }];
        for id in 1..=6u64 {
            let mut r = head(id);
            r.arrival = SimTime::ZERO + SimDuration::from_millis(25 * id);
            requests.push(r);
        }
        requests
    }

    /// Lab server with an expensive base page and a very slow back end, so
    /// CPU sharing against the parked query visibly inflates HEAD parses.
    fn skewed_config() -> ServerConfig {
        ServerConfig {
            workers: WorkerConfig {
                per_request_cpu: 0.002,
                base_page_cpu: 0.008,
                ..WorkerConfig::default()
            },
            database: DatabaseConfig {
                query_cache: false,
                base_query_cpu: 0.5,
                ..DatabaseConfig::default()
            },
            ..ServerConfig::lab_apache()
        }
    }

    #[test]
    fn least_outstanding_avoids_the_busy_replica() {
        let catalog = ContentCatalog::lab_validation();
        let run_with = |policy: BalancePolicy| {
            let mut cluster =
                ServerCluster::new(skewed_config(), catalog.clone(), 2).with_policy(policy);
            cluster.run(skewed_workload())
        };
        let rr = run_with(BalancePolicy::RoundRobin);
        let lo = run_with(BalancePolicy::LeastOutstanding);

        // Pin the routing against round robin: RR deals HEADs 2, 4, 6 onto
        // the replica stuck with the 500 ms query, where processor sharing
        // doubles their 10 ms parse; LO parses every HEAD at full speed.
        let worst = |result: &RunResult| {
            result.outcomes[1..]
                .iter()
                .map(|o| o.latency())
                .max()
                .unwrap()
        };
        assert!(
            worst(&rr) >= worst(&lo) + SimDuration::from_millis(5),
            "round robin must queue HEADs behind the busy replica: rr {} vs lo {}",
            worst(&rr),
            worst(&lo)
        );
        // Everything still completes under both policies.
        assert!(rr.outcomes.iter().all(|o| o.is_ok()));
        assert!(lo.outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(lo.outcomes.len(), 7);
        // Outcomes stay in submission order through the sweep path.
        let ids: Vec<u64> = lo.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn least_outstanding_is_deterministic() {
        let config = ServerConfig::lab_apache();
        let catalog = ContentCatalog::lab_validation();
        let run_once = || {
            let mut cluster = ServerCluster::new(config.clone(), catalog.clone(), 3)
                .with_policy(BalancePolicy::LeastOutstanding);
            let result = cluster.run(skewed_workload());
            result
                .outcomes
                .iter()
                .map(|o| o.completion)
                .collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn controlled_run_with_null_control_matches_plain_run_shape() {
        let requests: Vec<ServerRequest> = (0..12).map(head).collect();
        let mut plain = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            3,
        );
        let plain_result = plain.run(requests.clone());
        let mut controlled = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            3,
        );
        let controlled_result =
            controlled.run_controlled(requests, &mut crate::control::NullControl);
        assert_eq!(
            plain_result.outcomes.len(),
            controlled_result.outcomes.len()
        );
        assert_eq!(controlled_result.utilization.completed_requests, 12);
        assert_eq!(controlled_result.utilization.shed_requests, 0);
        // Round-robin over simultaneous arrivals routes identically in both
        // paths, so the outcomes agree exactly.
        for (a, b) in plain_result
            .outcomes
            .iter()
            .zip(controlled_result.outcomes.iter())
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn set_replicas_action_persists_across_runs() {
        use crate::control::{AdmissionVerdict, ControlAction, ServerControl, TickSample};

        /// Scales to a fixed target at the first tick.
        struct ScaleTo(usize);
        impl ServerControl for ScaleTo {
            fn tick_interval(&self) -> Option<SimDuration> {
                Some(SimDuration::from_millis(10))
            }
            fn on_arrival(&mut self, _: SimTime, _: &ServerRequest) -> AdmissionVerdict {
                AdmissionVerdict::Accept
            }
            fn on_tick(&mut self, _: SimTime, _: &TickSample, actions: &mut Vec<ControlAction>) {
                actions.push(ControlAction::SetReplicas(self.0));
            }
        }

        let mut cluster = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            2,
        );
        assert_eq!(cluster.active_replicas(), 2);
        let mut requests: Vec<ServerRequest> = (0..40).map(head).collect();
        // Spread arrivals so ticks interleave.
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = SimTime::ZERO + SimDuration::from_millis(i as u64 * 5);
        }
        let result = cluster.run_controlled(requests, &mut ScaleTo(5));
        assert!(result.outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(cluster.active_replicas(), 5);
        // The caches grew to cover the provisioned replicas.
        assert!(cluster.caches().len() >= 5);
    }

    #[test]
    fn utilization_counters_are_aggregated() {
        let mut cluster = ServerCluster::new(
            ServerConfig::commercial_frontend(),
            ContentCatalog::typical_site(1),
            2,
        );
        let result = cluster.run((0..10).map(head).collect());
        assert_eq!(result.utilization.completed_requests, 10);
        assert_eq!(result.utilization.refused_requests, 0);
    }
}
