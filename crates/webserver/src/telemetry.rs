//! Server-side resource telemetry.
//!
//! The lab validation in §3.2 of the paper pairs the client-observed
//! response times with `atop` measurements of "the CPU, resident memory,
//! disk access, and network usage" on the server.  Figures 5 and 6 plot
//! those series against the crowd size.  [`UtilizationReport`] is the
//! simulated equivalent: one snapshot of server resource usage over an
//! observation window (typically one MFC epoch).

use mfc_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Aggregated resource usage over one observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Length of the observation window.
    pub window: SimDuration,
    /// Mean CPU utilization over the window, in the range 0–1 (1 = all
    /// cores busy the whole window).
    pub cpu_utilization: f64,
    /// Peak resident memory over the window, in bytes.
    pub peak_memory_bytes: u64,
    /// Mean resident memory over the window, in bytes.
    pub mean_memory_bytes: f64,
    /// Bytes sent on the access link during the window.
    pub network_bytes_sent: u64,
    /// Number of disk operations issued during the window.
    pub disk_operations: u64,
    /// Mean number of busy worker slots.
    pub mean_busy_workers: f64,
    /// Peak number of busy worker slots.
    pub peak_busy_workers: u32,
    /// Requests that were refused because the listen queue overflowed.
    pub refused_requests: u64,
    /// Requests completed during the window.
    pub completed_requests: u64,
    /// Requests deliberately shed (503) by an admission-control or
    /// rate-limiting defense before reaching a worker.
    pub shed_requests: u64,
    /// Requests whose response transfer was bandwidth-clamped by a
    /// per-client rate-limiting defense.
    pub throttled_requests: u64,
    /// Aggregate outbound link capacity over the window in bytes/second
    /// (summed over active replicas).  Under a control loop this is the
    /// time-weighted mean, so mid-run scale-ups and capacity steps are
    /// reflected proportionally; in plain runs the capacity never changes,
    /// so it is simply the configured value.  The instrumented analogue of
    /// the operator telling the MFC authors what their access link was
    /// provisioned at.
    pub link_capacity: f64,
}

impl UtilizationReport {
    /// Mean outbound network throughput over the window in bytes/second.
    pub fn network_throughput(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.network_bytes_sent as f64 / secs
        }
    }

    /// Peak memory in megabytes — the unit Figure 6 uses.
    pub fn peak_memory_mb(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Network bytes sent in kilobytes — the unit Figure 5 uses.
    pub fn network_kb_sent(&self) -> f64 {
        self.network_bytes_sent as f64 / 1024.0
    }

    /// CPU utilization as a percentage (0–100), the unit Figure 6 uses.
    pub fn cpu_percent(&self) -> f64 {
        self.cpu_utilization * 100.0
    }

    /// Mean outbound link utilization over the window in the range 0–1,
    /// or `None` when the link capacity is unknown (zero).
    pub fn link_utilization(&self) -> Option<f64> {
        if self.link_capacity > 0.0 {
            Some((self.network_throughput() / self.link_capacity).clamp(0.0, 1.0))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> UtilizationReport {
        UtilizationReport {
            window: SimDuration::from_secs(10),
            cpu_utilization: 0.35,
            peak_memory_bytes: 512 * 1024 * 1024,
            mean_memory_bytes: 400.0 * 1024.0 * 1024.0,
            network_bytes_sent: 5 * 1024 * 1024,
            disk_operations: 12,
            mean_busy_workers: 7.5,
            peak_busy_workers: 20,
            refused_requests: 1,
            completed_requests: 55,
            shed_requests: 0,
            throttled_requests: 0,
            link_capacity: 1_048_576.0,
        }
    }

    #[test]
    fn derived_units() {
        let r = report();
        assert!((r.network_throughput() - 524_288.0).abs() < 1.0);
        assert!((r.peak_memory_mb() - 512.0).abs() < 1e-9);
        assert!((r.network_kb_sent() - 5_120.0).abs() < 1e-9);
        assert!((r.cpu_percent() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_throughput_is_zero() {
        let r = UtilizationReport {
            window: SimDuration::ZERO,
            ..report()
        };
        assert_eq!(r.network_throughput(), 0.0);
    }

    #[test]
    fn link_utilization_needs_a_known_capacity() {
        let r = report();
        // 524288 B/s over a 1 MiB/s link: 50%.
        assert!((r.link_utilization().unwrap() - 0.5).abs() < 1e-9);
        let unknown = UtilizationReport {
            link_capacity: 0.0,
            ..report()
        };
        assert_eq!(unknown.link_utilization(), None);
    }
}
