//! In-tree stand-in for the `serde` crate.
//!
//! The workspace builds with no network access, so instead of real serde a
//! small facade provides the two traits and the derive macros under the
//! same names.  The data model is a single JSON-like [`Value`] tree rather
//! than serde's visitor architecture: `Serialize` maps a value *into* the
//! tree, `Deserialize` maps a borrowed tree *back*.  `serde_json` (also
//! vendored) renders and parses the tree as JSON text.
//!
//! Only what this workspace needs is implemented: the primitive types,
//! `String`, `Option`, `Vec`, slices, arrays, tuples and map types with
//! string-like keys.  Object key order is *insertion order*, which keeps
//! serialized experiment artifacts byte-stable across runs — something the
//! deterministic-replay tests rely on.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree: the facade's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (serialized without a sign).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.  Non-finite values render as `null`.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

/// Looks up `name` in an object's pairs, yielding `Null` for a missing
/// field (so `Option` fields deserialize as `None`).
pub fn get_field<'a>(pairs: &'a [(String, Value)], name: &str) -> &'a Value {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Deserialization error: a message plus the field path it surfaced at.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: &str) -> Error {
        Error {
            message: message.to_string(),
        }
    }

    /// Wraps the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Error {
        Error {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Maps a value into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from a borrowed [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts a tree back into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    _ => return Err(Error::custom("expected unsigned integer")),
                };
                <$ty>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 {
                    Value::UInt(wide as u64)
                } else {
                    Value::Int(wide)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Int(i) => *i,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$ty>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // `Null` is rejected: it is what `get_field` yields for a *missing*
        // field, and masking that as NaN would silently swallow schema
        // drift.  (Non-finite floats render as `null`, so they do not
        // round-trip through a required `f64` — they fail loudly instead,
        // matching real serde_json.)
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if arr.len() != 2 {
            return Err(Error::custom("expected two-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if arr.len() != 3 {
            return Err(Error::custom("expected three-element array"));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so map serialization is deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for HashSet<String> {
    fn to_value(&self) -> Value {
        // Sort so set serialization is deterministic.
        let mut items: Vec<&String> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(|s| s.to_value()).collect())
    }
}

impl Deserialize for HashSet<String> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(String::from_value)
            .collect()
    }
}

impl Serialize for BTreeSet<String> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|s| s.to_value()).collect())
    }
}

impl Deserialize for BTreeSet<String> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(String::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let pairs = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(get_field(&pairs, "a"), &Value::UInt(1));
        assert_eq!(get_field(&pairs, "b"), &Value::Null);
    }

    #[test]
    fn missing_required_float_field_errors_instead_of_nan() {
        assert!(f64::from_value(&Value::Null).is_err());
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn signed_values_pick_compact_representation() {
        assert_eq!(5i64.to_value(), Value::UInt(5));
        assert_eq!((-5i64).to_value(), Value::Int(-5));
    }
}
